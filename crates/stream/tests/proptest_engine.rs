//! Property tests for the micro-batch engine: multi-entry evaluation
//! must compose the same way the reference interpreter does, no matter
//! how tuples are split across batches and entry points.

use proptest::prelude::*;
use sonata_packet::{Packet, PacketBuilder, TcpFlags};
use sonata_query::catalog::{self, Thresholds};
use sonata_query::interpret::run_query;
use sonata_query::Tuple;
use sonata_stream::{execute_window, run_entries, WindowBatch};

fn arb_packet() -> impl Strategy<Value = Packet> {
    (
        0u32..12,
        0u32..12,
        prop_oneof![Just(TcpFlags::SYN), Just(TcpFlags::ACK)],
    )
        .prop_map(|(s, d, flags)| {
            PacketBuilder::tcp_raw(0x0a000000 + s, 999, 0x14000000 + d, 80)
                .flags(flags)
                .build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn entry_zero_equals_reference(pkts in proptest::collection::vec(arb_packet(), 0..100), th in 0u64..4) {
        let q = catalog::newly_opened_tcp_conns(&Thresholds {
            new_tcp: th,
            ..Thresholds::default()
        });
        let mut batch = WindowBatch::new();
        batch.push_left(0, pkts.iter().map(Tuple::from_packet));
        let engine = execute_window(&q, &batch).unwrap();
        let reference = run_query(&q, &pkts).unwrap();
        prop_assert_eq!(engine.output, reference);
        prop_assert_eq!(engine.tuples_in, pkts.len());
        prop_assert_eq!(engine.branch_outputs.len(), 1);
    }

    #[test]
    fn tuples_split_across_pushes_are_order_insensitive(
        pkts in proptest::collection::vec(arb_packet(), 0..100),
        cut in 0usize..100,
    ) {
        let q = catalog::newly_opened_tcp_conns(&Thresholds {
            new_tcp: 1,
            ..Thresholds::default()
        });
        let cut = cut.min(pkts.len());
        let mut together = WindowBatch::new();
        together.push_left(0, pkts.iter().map(Tuple::from_packet));
        let mut split = WindowBatch::new();
        // Same entry point, pushed in two slices in reverse order.
        split.push_left(0, pkts[cut..].iter().map(Tuple::from_packet));
        split.push_left(0, pkts[..cut].iter().map(Tuple::from_packet));
        let a = execute_window(&q, &together).unwrap();
        let b = execute_window(&q, &split).unwrap();
        prop_assert_eq!(a.output, b.output);
    }

    #[test]
    fn join_branch_split_matches_reference(
        pkts in proptest::collection::vec(arb_packet(), 0..100),
        th in 0u64..3,
    ) {
        // Feed the SYN-flood join query entirely from entry 0 on both
        // branches: must reproduce the reference interpreter.
        let q = catalog::tcp_syn_flood(&Thresholds {
            syn_flood: th,
            ..Thresholds::default()
        });
        let mut batch = WindowBatch::new();
        batch.push_left(0, pkts.iter().map(Tuple::from_packet));
        batch.push_right(0, pkts.iter().map(Tuple::from_packet));
        let engine = execute_window(&q, &batch).unwrap();
        let reference = run_query(&q, &pkts).unwrap();
        prop_assert_eq!(engine.output, reference);
        prop_assert_eq!(engine.branch_outputs.len(), 2);
    }

    #[test]
    fn run_entries_prefix_composition(
        pkts in proptest::collection::vec(arb_packet(), 0..80),
        entry in 0usize..4,
    ) {
        // Running ops[..k] then injecting the intermediate tuples at
        // entry k equals running everything from entry 0.
        let q = catalog::newly_opened_tcp_conns(&Thresholds {
            new_tcp: 0,
            ..Thresholds::default()
        });
        let ops = &q.pipeline.ops;
        let entry = entry.min(ops.len());
        let start: Vec<Tuple> = pkts.iter().map(Tuple::from_packet).collect();
        // Stage 1: the prefix.
        let mut prefix_entries = std::collections::BTreeMap::new();
        prefix_entries.insert(0usize, start.clone());
        let (_, mid) = run_entries(&ops[..entry], &prefix_entries).unwrap();
        // Stage 2: inject at `entry`.
        let mut tail_entries = std::collections::BTreeMap::new();
        tail_entries.insert(entry, mid);
        let (_, via_split) = run_entries(ops, &tail_entries).unwrap();
        // Direct run.
        let mut direct_entries = std::collections::BTreeMap::new();
        direct_entries.insert(0usize, start);
        let (_, direct) = run_entries(ops, &direct_entries).unwrap();
        let mut a = via_split;
        let mut b = direct;
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }
}
