//! Key-based partitioning of window batches across engine shards.
//!
//! The sharded runtime executes one query's window on N workers, each
//! holding a full engine replica, and unions their [`JobResult`]s.
//! That is only correct when every group a stateful operator builds
//! (a `reduce` key, a `distinct` tuple, a join key) lands entirely on
//! one shard. [`partition_spec`] performs that analysis statically per
//! query; [`split_batch`] routes each tuple of a [`WindowBatch`] to
//! its shard; [`merge_results`] recombines the shard results into the
//! exact [`JobResult`] the single-threaded engine would produce.
//!
//! # The column-chain analysis
//!
//! Tuples may enter a pipeline at *any* operator index (per-packet
//! reports, window dumps, collision shunts — Section 3.1.3 of the
//! paper), so a partition key must be locatable at **every** entry
//! index. The analysis follows one column from the packet schema
//! through the pipeline:
//!
//! * `filter` keeps the schema: the chain survives unchanged;
//! * `map` keeps the chain only through a copy (`name = col`) or a
//!   mask (`name = mask(col, ..)`); masks are recorded, because a
//!   tuple entering *before* the mask must be routed by its *masked*
//!   value — partitioning by a coarsening of a group key still keeps
//!   each finer group shard-local;
//! * `reduce` keeps the chain iff the chain column is one of its
//!   grouping keys — which is exactly the shard-locality requirement;
//! * `distinct` groups whole tuples, which always contain the chain
//!   column, so it survives.
//!
//! For join queries both branches must chain to the join key (the
//! left side via the query's `left_keys` expression), so matching
//! rows co-locate; post-join stateful operators must then group by a
//! column that still carries the key. Queries the analysis cannot
//! prove shardable fall back to a single shard — parallelism is lost,
//! correctness is not.

use crate::engine::JobResult;
use crate::window::WindowBatch;
use sonata_packet::Value;
use sonata_query::expr::Expr;
use sonata_query::{ColName, Operator, Pipeline, Query, Schema, Tuple};
use std::collections::BTreeSet;

/// Where a branch's partition key sits at one entry index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyAt {
    /// Column index in the schema at this entry index.
    pub col: usize,
    /// Mask levels still applied downstream of this index, in
    /// application order: the shard key is the *final* masked value.
    pub masks: Vec<u8>,
}

/// Per-entry-index key locations for one branch (length `ops + 1`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BranchKeys {
    at: Vec<KeyAt>,
}

impl BranchKeys {
    /// The shard key of `tuple` entering at operator index `entry`,
    /// or `None` when the entry index or tuple arity is out of range
    /// (the caller falls back to a single shard and lets the engine
    /// report the underlying error).
    pub fn key_of(&self, entry: usize, tuple: &Tuple) -> Option<Value> {
        let at = self.at.get(entry)?;
        let mut v = tuple.values().get(at.col)?.clone();
        for &level in &at.masks {
            v = v.mask_to_level(level);
        }
        Some(v)
    }

    /// The shard owning `tuple` at `entry`, avoiding the key clone on
    /// the (common) unmasked path.
    fn shard_of(&self, entry: usize, tuple: &Tuple, shards: usize) -> Option<usize> {
        let at = self.at.get(entry)?;
        let v = tuple.values().get(at.col)?;
        let h = if at.masks.is_empty() {
            hash_value(v)
        } else {
            let mut m = v.clone();
            for &level in &at.masks {
                m = m.mask_to_level(level);
            }
            hash_value(&m)
        };
        Some((h % shards as u64) as usize)
    }
}

/// How a query's window batches distribute over shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionSpec {
    /// No shardable key: route everything to shard 0 (correct, serial).
    Single,
    /// Stateless join-free query: any tuple may go anywhere; hash the
    /// whole tuple for an even spread.
    AnyTuple,
    /// Key-partitioned: per-branch chains locating the shard key at
    /// every entry index.
    Keyed {
        /// Chain for the main (left) pipeline.
        left: BranchKeys,
        /// Chain for the join's right pipeline, when the query joins.
        right: Option<BranchKeys>,
    },
}

impl PartitionSpec {
    /// Whether batches actually spread over more than one shard.
    pub fn is_parallel(&self) -> bool {
        !matches!(self, PartitionSpec::Single)
    }
}

/// Peel `name = mask(..mask(col, a).., b)` down to the column and the
/// mask levels in application (innermost-first) order.
fn peel(e: &Expr) -> Option<(&ColName, Vec<u8>)> {
    match e {
        Expr::Col(c) => Some((c, Vec::new())),
        Expr::Mask(inner, level) => {
            let (c, mut masks) = peel(inner)?;
            masks.push(*level);
            Some((c, masks))
        }
        _ => None,
    }
}

/// Follow `start` through `ops` from the packet schema. Returns the
/// per-index key locations and the chain's final column name, or
/// `None` when the chain dies or a stateful operator's groups would
/// not be shard-local under this key.
fn chain(ops: &[Operator], start: &str) -> Option<(BranchKeys, ColName)> {
    let mut schema = Schema::packet();
    let mut cur: ColName = ColName::from(start);
    // (entry index, column index at that index) plus mask events.
    let mut cols: Vec<usize> = Vec::with_capacity(ops.len() + 1);
    let mut mask_events: Vec<Vec<u8>> = Vec::with_capacity(ops.len());
    for op in ops {
        cols.push(schema.index_of(&cur)?);
        let mut masks_here = Vec::new();
        match op {
            Operator::Filter(_) => {}
            Operator::Map { exprs } => {
                // Prefer an unmasked copy; accept a masked one.
                let mut found: Option<(&ColName, Vec<u8>)> = None;
                for (name, e) in exprs {
                    if let Some((c, masks)) = peel(e) {
                        if c == &cur && (found.is_none() || masks.is_empty()) {
                            let plain = masks.is_empty();
                            found = Some((name, masks));
                            if plain {
                                break;
                            }
                        }
                    }
                }
                let (name, masks) = found?;
                masks_here = masks;
                cur = name.clone();
            }
            Operator::Reduce { keys, .. } => {
                if !keys.contains(&cur) {
                    return None; // groups would straddle shards
                }
            }
            Operator::Distinct => {}
        }
        mask_events.push(masks_here);
        schema = op.output_schema(&schema).ok()?;
    }
    cols.push(schema.index_of(&cur)?);
    // Suffix-accumulate: the key for entry index i is the tuple's
    // column value with every mask applied at index >= i.
    let mut pending: Vec<u8> = Vec::new();
    let mut at: Vec<KeyAt> = vec![
        KeyAt {
            col: cols[ops.len()],
            masks: Vec::new(),
        };
        ops.len() + 1
    ];
    for i in (0..ops.len()).rev() {
        let mut masks = mask_events[i].clone();
        masks.extend(pending.iter().copied());
        pending = masks.clone();
        at[i] = KeyAt {
            col: cols[i],
            masks,
        };
    }
    Some((BranchKeys { at }, cur))
}

/// Find a packet-schema column whose chain through `ops` survives and
/// (when `end` is given) finishes under that name.
fn chain_to(ops: &[Operator], end: Option<&str>) -> Option<BranchKeys> {
    for col in Schema::packet().columns() {
        if let Some((keys, final_name)) = chain(ops, col) {
            match end {
                Some(want) if final_name.as_ref() != want => continue,
                _ => return Some(keys),
            }
        }
    }
    None
}

/// Whether every stateful operator of the post-join pipeline groups by
/// a column that still carries the join key (starting from `carriers`,
/// the joined-schema columns whose value determines the key).
fn post_shardable(post: &Pipeline, mut carriers: BTreeSet<ColName>) -> bool {
    for op in &post.ops {
        match op {
            Operator::Filter(_) => {}
            Operator::Map { exprs } => {
                // Only an exact copy keeps a carrier: a masked or
                // computed column no longer determines the key.
                carriers = exprs
                    .iter()
                    .filter_map(|(name, e)| match e {
                        Expr::Col(c) if carriers.contains(c) => Some(name.clone()),
                        _ => None,
                    })
                    .collect();
            }
            Operator::Reduce { keys, .. } => {
                carriers = keys
                    .iter()
                    .filter(|k| carriers.contains(*k))
                    .cloned()
                    .collect();
                if carriers.is_empty() {
                    return false;
                }
            }
            Operator::Distinct => {
                // Identical tuples agree on every column; they only
                // provably co-locate when some column carries the key.
                if carriers.is_empty() {
                    return false;
                }
            }
        }
    }
    true
}

/// Statically analyze how `query`'s batches may be partitioned.
pub fn partition_spec(query: &Query) -> PartitionSpec {
    match &query.join {
        None => {
            if !query.pipeline.has_stateful() {
                return PartitionSpec::AnyTuple;
            }
            match chain_to(&query.pipeline.ops, None) {
                Some(left) => PartitionSpec::Keyed { left, right: None },
                None => PartitionSpec::Single,
            }
        }
        Some(join) => {
            if join.keys.len() != 1 || join.left_keys.len() != 1 {
                return PartitionSpec::Single;
            }
            let key = join.keys[0].as_ref();
            // Right branch must chain to the join key column.
            let Some(right) = chain_to(&join.right.ops, Some(key)) else {
                return PartitionSpec::Single;
            };
            // Left branch must chain to the base column of the left
            // key expression; its masks apply after the chain's.
            let Some((base, extra_masks)) = peel(&join.left_keys[0]) else {
                return PartitionSpec::Single;
            };
            let Some(mut left) = chain_to(&query.pipeline.ops, Some(base.as_ref())) else {
                return PartitionSpec::Single;
            };
            for at in &mut left.at {
                at.masks.extend(extra_masks.iter().copied());
            }
            // Post-join stateful operators must group by a carrier of
            // the key: the left base column always qualifies; the
            // right key column does when the join appends it.
            let mut carriers: BTreeSet<ColName> = BTreeSet::new();
            carriers.insert(base.clone());
            let left_schema = query
                .pipeline
                .output_schema(&Schema::packet())
                .unwrap_or_else(|_| Schema::packet());
            if !left_schema.contains(key) {
                carriers.insert(join.keys[0].clone());
            }
            if !post_shardable(&join.post, carriers) {
                return PartitionSpec::Single;
            }
            PartitionSpec::Keyed {
                left,
                right: Some(right),
            }
        }
    }
}

fn fnv1a(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x100000001b3);
    }
}

/// Deterministic hash of a value, stable across runs and platforms.
pub fn hash_value(v: &Value) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    match v {
        Value::U64(x) => {
            fnv1a(&mut h, &[1]);
            fnv1a(&mut h, &x.to_le_bytes());
        }
        Value::Text(s) => {
            fnv1a(&mut h, &[2]);
            fnv1a(&mut h, s.as_bytes());
        }
        Value::Bytes(b) => {
            fnv1a(&mut h, &[3]);
            fnv1a(&mut h, b);
        }
    }
    h
}

fn hash_tuple(t: &Tuple) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for v in t.values() {
        fnv1a(&mut h, &hash_value(v).to_le_bytes());
    }
    h
}

/// The malformed-batch fallback: shard 0 takes everything, so the
/// engine itself reports the underlying error exactly as the
/// single-threaded path would.
fn fallback_to_zero(batch: &WindowBatch, index: usize) -> WindowBatch {
    if index == 0 {
        batch.clone()
    } else {
        WindowBatch::new()
    }
}

/// The slice of `batch` owned by shard `index` of `shards`.
///
/// Every worker runs this over the *shared* batch concurrently: the
/// hash scan covers all tuples (routing is index-independent, so all
/// workers agree on ownership and on fallbacks), but each worker only
/// clones the tuples it keeps — the serial fraction of a sharded
/// submit is just the dispatch and merge.
pub fn shard_filter(
    spec: &PartitionSpec,
    batch: &WindowBatch,
    shards: usize,
    index: usize,
) -> WindowBatch {
    if shards <= 1 {
        return batch.clone();
    }
    match spec {
        PartitionSpec::Single => fallback_to_zero(batch, index),
        PartitionSpec::AnyTuple => {
            if !batch.right.is_empty() {
                // Join-free query with right-branch tuples: the engine
                // rejects this; let shard 0 reproduce the error.
                return fallback_to_zero(batch, index);
            }
            let mut out = WindowBatch::new();
            for (&entry, tuples) in &batch.left {
                let mine: Vec<Tuple> = tuples
                    .iter()
                    .filter(|t| (hash_tuple(t) % shards as u64) as usize == index)
                    .cloned()
                    .collect();
                if !mine.is_empty() {
                    out.push_left(entry, mine);
                }
            }
            out
        }
        PartitionSpec::Keyed { left, right } => {
            if right.is_none() && !batch.right.is_empty() {
                return fallback_to_zero(batch, index);
            }
            let mut out = WindowBatch::new();
            for (&entry, tuples) in &batch.left {
                let mut mine = Vec::new();
                for t in tuples {
                    match left.shard_of(entry, t, shards) {
                        Some(s) if s == index => mine.push(t.clone()),
                        Some(_) => {}
                        None => return fallback_to_zero(batch, index),
                    }
                }
                if !mine.is_empty() {
                    out.push_left(entry, mine);
                }
            }
            if let Some(right_keys) = right {
                for (&entry, tuples) in &batch.right {
                    let mut mine = Vec::new();
                    for t in tuples {
                        match right_keys.shard_of(entry, t, shards) {
                            Some(s) if s == index => mine.push(t.clone()),
                            Some(_) => {}
                            None => return fallback_to_zero(batch, index),
                        }
                    }
                    if !mine.is_empty() {
                        out.push_right(entry, mine);
                    }
                }
            }
            out
        }
    }
}

/// Route every tuple of `batch` to its shard. The returned vector has
/// exactly `shards` entries. Defined through [`shard_filter`] so the
/// full split and the per-worker filters cannot diverge.
pub fn split_batch(spec: &PartitionSpec, batch: &WindowBatch, shards: usize) -> Vec<WindowBatch> {
    if shards <= 1 {
        return vec![batch.clone()];
    }
    (0..shards)
        .map(|i| shard_filter(spec, batch, shards, i))
        .collect()
}

/// Union shard results into the canonical [`JobResult`]: outputs and
/// branch outputs are merged and re-sorted (shard-local groups are
/// disjoint, so the union is exact), tuple counts are summed.
pub fn merge_results(results: Vec<JobResult>) -> JobResult {
    let mut iter = results.into_iter();
    let Some(mut merged) = iter.next() else {
        return JobResult {
            output: Vec::new(),
            tuples_in: 0,
            branch_outputs: Vec::new(),
        };
    };
    for r in iter {
        merged.output.extend(r.output);
        merged.tuples_in += r.tuples_in;
        for (i, (schema, tuples)) in r.branch_outputs.into_iter().enumerate() {
            match merged.branch_outputs.get_mut(i) {
                Some((_, acc)) => acc.extend(tuples),
                None => merged.branch_outputs.push((schema, tuples)),
            }
        }
    }
    merged.output.sort();
    for (_, tuples) in &mut merged.branch_outputs {
        tuples.sort();
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::execute_window;
    use sonata_query::catalog::{self, Thresholds};

    fn low() -> Thresholds {
        Thresholds {
            new_tcp: 1,
            ssh_brute: 1,
            superspreader: 1,
            port_scan: 1,
            ddos: 1,
            syn_flood: 1,
            incomplete_flows: 1,
            slowloris_bytes: 1,
            slowloris_cpkb: 0,
            dns_tunneling: 1,
            zorro_pkts: 1,
            zorro_payloads: 0,
            dns_reflection: 1,
            malicious_domains: 1,
            window_ms: 3_000,
        }
    }

    #[test]
    fn every_catalog_query_is_shardable() {
        for q in catalog::all(&low()) {
            let spec = partition_spec(&q);
            assert!(
                spec.is_parallel(),
                "{} fell back to a single shard: {spec:?}",
                q.name
            );
        }
        assert!(partition_spec(&catalog::malicious_domains(&low())).is_parallel());
    }

    #[test]
    fn chain_tracks_masks_for_earlier_entries() {
        use sonata_query::expr::{col, field, lit};
        use sonata_query::Query;
        // A refined-style query masking its key to a /8 prefix.
        let q = Query::builder("masked", 99)
            .map([
                (
                    "dIP",
                    Expr::Mask(Box::new(field(sonata_packet::Field::Ipv4Dst)), 8),
                ),
                ("count", lit(1)),
            ])
            .reduce(&["dIP"], sonata_query::Agg::Sum, "count")
            .filter(col("count").gt(lit(0)))
            .build()
            .unwrap();
        let PartitionSpec::Keyed { left, right: None } = partition_spec(&q) else {
            panic!("masked query should shard");
        };
        // A raw packet entering at index 0 is routed by its masked dIP.
        let packet_dip = Schema::packet().index_of("ipv4.dIP").unwrap();
        let mut values = vec![Value::U64(0); Schema::packet().len()];
        values[packet_dip] = Value::U64(0x0a0b0c0d);
        let t = Tuple::new(values);
        assert_eq!(left.key_of(0, &t), Some(Value::U64(0x0a000000)));
        // A tuple entering after the map already carries the mask.
        let t2 = Tuple::new(vec![Value::U64(0x0a000000), Value::U64(1)]);
        assert_eq!(left.key_of(1, &t2), Some(Value::U64(0x0a000000)));
    }

    #[test]
    fn split_covers_batch_and_merge_matches_serial() {
        let q = catalog::newly_opened_tcp_conns(&low());
        let spec = partition_spec(&q);
        let mut batch = WindowBatch::new();
        // Dump-style entries at the reduce with many distinct keys.
        batch.push_left(
            2,
            (0..64u64).map(|k| Tuple::new(vec![Value::U64(k % 16), Value::U64(1)])),
        );
        let shards = split_batch(&spec, &batch, 4);
        assert_eq!(shards.len(), 4);
        let total: usize = shards.iter().map(WindowBatch::tuple_count).sum();
        assert_eq!(total, batch.tuple_count());
        assert!(shards.iter().filter(|s| !s.is_empty()).count() > 1);
        let serial = execute_window(&q, &batch).unwrap();
        let merged = merge_results(
            shards
                .iter()
                .filter(|s| !s.is_empty())
                .map(|s| execute_window(&q, s).unwrap())
                .collect(),
        );
        assert_eq!(merged.output, serial.output);
        assert_eq!(merged.tuples_in, serial.tuples_in);
        assert_eq!(merged.branch_outputs, serial.branch_outputs);
    }

    #[test]
    fn malformed_batches_degrade_to_single_shard() {
        let q = catalog::newly_opened_tcp_conns(&low());
        let spec = partition_spec(&q);
        // Entry index past the pipeline end.
        let mut batch = WindowBatch::new();
        batch.push_left(99, vec![Tuple::new(vec![Value::U64(1)])]);
        let shards = split_batch(&spec, &batch, 4);
        assert_eq!(shards[0].tuple_count(), 1);
        assert!(shards[1..].iter().all(WindowBatch::is_empty));
        // Tuple too short for the key column.
        let mut batch = WindowBatch::new();
        batch.push_left(2, vec![Tuple::new(vec![])]);
        let shards = split_batch(&spec, &batch, 4);
        assert_eq!(shards[0].tuple_count(), 1);
    }

    #[test]
    fn non_identity_aggregation_falls_back_to_single() {
        use sonata_query::expr::{col, field, lit};
        use sonata_query::Query;
        // The reduce groups on a column the packet schema cannot
        // chain to (a computed sum), so sharding must refuse.
        let q = Query::builder("computed_key", 98)
            .map([
                (
                    "k",
                    field(sonata_packet::Field::Ipv4Dst).add(field(sonata_packet::Field::Ipv4Src)),
                ),
                ("count", lit(1)),
            ])
            .reduce(&["k"], sonata_query::Agg::Sum, "count")
            .filter(col("count").gt(lit(0)))
            .build()
            .unwrap();
        assert_eq!(partition_spec(&q), PartitionSpec::Single);
        let mut batch = WindowBatch::new();
        batch.push_left(1, vec![Tuple::new(vec![Value::U64(7), Value::U64(1)])]);
        let shards = split_batch(&partition_spec(&q), &batch, 8);
        assert_eq!(shards[0].tuple_count(), 1);
        assert!(shards[1..].iter().all(WindowBatch::is_empty));
    }

    #[test]
    fn stateless_query_spreads_by_tuple_hash() {
        use sonata_query::expr::{field, lit};
        use sonata_query::Query;
        let q = Query::builder("stateless", 97)
            .filter(field(sonata_packet::Field::Ipv4Proto).eq(lit(6)))
            .build()
            .unwrap();
        assert_eq!(partition_spec(&q), PartitionSpec::AnyTuple);
        let mut batch = WindowBatch::new();
        let packet_len = Schema::packet().len();
        batch.push_left(
            0,
            (0..64u64).map(|i| {
                let mut values = vec![Value::U64(0); packet_len];
                values[0] = Value::U64(i);
                Tuple::new(values)
            }),
        );
        let shards = split_batch(&partition_spec(&q), &batch, 4);
        let total: usize = shards.iter().map(WindowBatch::tuple_count).sum();
        assert_eq!(total, 64);
        assert!(shards.iter().filter(|s| !s.is_empty()).count() > 1);
    }
}
