//! Cross-switch partial-aggregate merge for a multi-switch fabric.
//!
//! In a fabric, N switches each process a disjoint partition of the
//! traffic, so a collector shard receives N *partial* window batches
//! per query: each switch's register dump holds only its partition's
//! share of every key's aggregate, and per-packet tuple reports arrive
//! once per packet from whichever switch saw it. The merge here is the
//! batch-level union that makes the downstream engine see exactly what
//! a single switch over the unsplit trace would have sent:
//!
//! * **Reduce / distinct state** enters the engine *at* the stateful
//!   operator (entry-op semantics from the shunt path), so a union of
//!   per-switch entries is re-aggregated by the engine itself — the
//!   fold is content-based and order-insensitive, making the union
//!   sound regardless of switch arrival order.
//! * **Per-packet reports** are disjoint across switches (each packet
//!   lives on exactly one switch), so union equals the baseline
//!   multiset.
//! * **Dedup** across retransmissions happens upstream, per switch,
//!   keyed on `(switch_id, task, seq)` — by the time batches reach
//!   this merge every tuple is unique, and the only duplication left
//!   to guard against is a whole switch contributing twice (a replayed
//!   partial after a rejoin), which [`merge_window_batches`] drops by
//!   switch id.
//!
//! The merge is **commutative** and **associative** (the union is
//! keyed and the engine canonicalizes outputs), and **idempotent** per
//! switch (duplicate switch ids contribute once); `proptest_fabric_merge`
//! holds those properties under arbitrary orderings and partitions.
//!
//! **Approximate register layouts** (`sonata-sketch`) change what a
//! dump entry's value *means* — a count-min estimate over the
//! switch's partition instead of an exact partial — but not the
//! merge: the engine's re-aggregation sums per-switch estimates, and
//! since each switch's estimate never undercounts its partition and
//! overshoots it by at most `ε·massᵢ`, the fabric-wide sum never
//! undercounts the union and overshoots by at most `ε·Σmassᵢ` — the
//! same `ε` against the *folded* mass, which is exactly the bound
//! the collector reports (`WindowReport::error_bounds` folds
//! per-switch `SketchBound`s as max-ε/summed-mass). Bloom-admitted
//! `distinct` state still merges as admitted-key sets: a key first
//! touched on two switches enters twice and the engine's entry-op
//! dedup folds it, while a per-switch false positive only *suppresses*
//! an entry, so the merged distinct count stays an undercount — the
//! per-layout alert directions survive the merge unchanged
//! (`tests/differential_sketch.rs` pins both on 2×1 and 2×2 fabrics).

use crate::window::WindowBatch;
use sonata_query::QueryId;
use std::collections::BTreeMap;

/// One switch's contribution to a window: its id plus the per-query
/// batches its reports replayed into.
pub type SwitchPartial = (u16, Vec<(QueryId, WindowBatch)>);

/// Union per-switch window batches into the fabric-wide batch set,
/// ordered by job id (matching the single-switch emitter's output
/// order). Partials are processed in ascending switch-id order — so
/// the result is independent of arrival order — and a switch id that
/// appears more than once contributes only its first (lowest-index)
/// partial, making a replayed contribution a no-op.
pub fn merge_window_batches(mut partials: Vec<SwitchPartial>) -> Vec<(QueryId, WindowBatch)> {
    partials.sort_by_key(|(switch, _)| *switch);
    partials.dedup_by_key(|(switch, _)| *switch);
    let mut merged: BTreeMap<QueryId, WindowBatch> = BTreeMap::new();
    for (_, batches) in partials {
        for (job, batch) in batches {
            let into = merged.entry(job).or_default();
            for (op, tuples) in batch.left {
                into.left.entry(op).or_default().extend(tuples);
            }
            for (op, tuples) in batch.right {
                into.right.entry(op).or_default().extend(tuples);
            }
        }
    }
    merged.into_iter().collect()
}

/// Sort every entry vector in place, producing the canonical form of
/// a batch: two batches holding the same tuple multisets compare equal
/// after canonicalization regardless of how the tuples were
/// interleaved. The engine's aggregation is order-insensitive, so
/// canonicalization never changes what a batch computes — it exists so
/// tests can assert batch-level equality directly.
pub fn canonicalize_batch(batch: &mut WindowBatch) {
    for tuples in batch.left.values_mut().chain(batch.right.values_mut()) {
        tuples.sort();
    }
}

/// [`canonicalize_batch`] over a per-query batch set.
pub fn canonicalize_batches(batches: &mut [(QueryId, WindowBatch)]) {
    for (_, batch) in batches.iter_mut() {
        canonicalize_batch(batch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sonata_packet::Value;
    use sonata_query::Tuple;

    fn batch(op: usize, keys: &[(u64, u64)]) -> WindowBatch {
        let mut b = WindowBatch::new();
        b.push_left(
            op,
            keys.iter()
                .map(|&(k, c)| Tuple::new(vec![Value::U64(k), Value::U64(c)])),
        );
        b
    }

    #[test]
    fn union_is_switch_order_invariant() {
        let a: SwitchPartial = (0, vec![(QueryId(1), batch(2, &[(1, 3), (2, 1)]))]);
        let b: SwitchPartial = (1, vec![(QueryId(1), batch(2, &[(1, 2), (9, 5)]))]);
        let mut fwd = merge_window_batches(vec![a.clone(), b.clone()]);
        let mut rev = merge_window_batches(vec![b, a]);
        canonicalize_batches(&mut fwd);
        canonicalize_batches(&mut rev);
        assert_eq!(fwd, rev);
        assert_eq!(fwd[0].1.tuple_count(), 4);
    }

    #[test]
    fn duplicate_switch_contributions_are_dropped() {
        let a: SwitchPartial = (3, vec![(QueryId(1), batch(2, &[(1, 3)]))]);
        let once = merge_window_batches(vec![a.clone()]);
        let twice = merge_window_batches(vec![a.clone(), a]);
        assert_eq!(once, twice);
    }

    #[test]
    fn jobs_union_across_disjoint_switch_query_sets() {
        let a: SwitchPartial = (0, vec![(QueryId(2), batch(1, &[(7, 1)]))]);
        let b: SwitchPartial = (1, vec![(QueryId(1), batch(2, &[(8, 2)]))]);
        let merged = merge_window_batches(vec![a, b]);
        assert_eq!(
            merged.iter().map(|(j, _)| *j).collect::<Vec<_>>(),
            vec![QueryId(1), QueryId(2)]
        );
    }
}
