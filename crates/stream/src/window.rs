//! Window batches — the unit of work the emitter hands the engine —
//! and the Spark-style plan codegen used for the Table 3 LoC column.

use sonata_query::{Operator, Pipeline, Query, Tuple};
use std::collections::BTreeMap;

/// All tuples for one query and one window, keyed by the operator
/// index at which they enter each branch.
///
/// Entry indices come from the data-plane compiler:
/// * per-packet reports and window dumps enter at `sp_resume_op`;
/// * collision shunts enter at `shunt_entry_op` (the stateful op);
/// * an unpartitioned branch (All-SP) enters everything at 0.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WindowBatch {
    /// Left/main branch entries: op index → tuples.
    pub left: BTreeMap<usize, Vec<Tuple>>,
    /// Right branch entries (join queries only).
    pub right: BTreeMap<usize, Vec<Tuple>>,
}

impl WindowBatch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add tuples entering the left branch at `op`.
    pub fn push_left(&mut self, op: usize, tuples: impl IntoIterator<Item = Tuple>) {
        self.left.entry(op).or_default().extend(tuples);
    }

    /// Add tuples entering the right branch at `op`.
    pub fn push_right(&mut self, op: usize, tuples: impl IntoIterator<Item = Tuple>) {
        self.right.entry(op).or_default().extend(tuples);
    }

    /// Bulk hand-off into the left branch: moves the whole vector in
    /// when the entry is empty — the batched-ingest common case is one
    /// hand-off per entry per window, so the emitter's accumulated
    /// buffer becomes the batch storage with no per-tuple copy.
    pub fn append_left(&mut self, op: usize, mut tuples: Vec<Tuple>) {
        use std::collections::btree_map::Entry;
        match self.left.entry(op) {
            Entry::Vacant(e) => {
                e.insert(tuples);
            }
            Entry::Occupied(mut e) => e.get_mut().append(&mut tuples),
        }
    }

    /// Bulk hand-off into the right branch; see [`Self::append_left`].
    pub fn append_right(&mut self, op: usize, mut tuples: Vec<Tuple>) {
        use std::collections::btree_map::Entry;
        match self.right.entry(op) {
            Entry::Vacant(e) => {
                e.insert(tuples);
            }
            Entry::Occupied(mut e) => e.get_mut().append(&mut tuples),
        }
    }

    /// Total tuples in the batch (the stream processor's intake, the
    /// paper's `N`).
    pub fn tuple_count(&self) -> usize {
        self.left
            .values()
            .chain(self.right.values())
            .map(Vec::len)
            .sum()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.tuple_count() == 0
    }
}

/// Render a query's residual dataflow as a Spark-Streaming-style plan
/// (Scala-ish), used for the "Spark LoC" column of Table 3. The
/// rendering covers the *whole* query, as the paper's comparison is
/// against writing the task directly on the stream processor.
pub fn codegen_stream_plan(query: &Query) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "// {} — generated Spark Streaming plan\n",
        query.name
    ));
    out.push_str(&format!(
        "val win = Seconds({})\n",
        (query.window_ms as f64 / 1000.0).max(1.0) as u64
    ));
    out.push_str("val left = packets.window(win)\n");
    render_pipeline(&mut out, "left", &query.pipeline);
    if let Some(join) = &query.join {
        out.push_str("val right = packets.window(win)\n");
        render_pipeline(&mut out, "right", &join.right);
        let keys = join
            .keys
            .iter()
            .map(|k| k.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!("val joined = left.join(right, on = ({keys}))\n"));
        render_pipeline(&mut out, "joined", &join.post);
        out.push_str("joined.foreachRDD(report)\n");
    } else {
        out.push_str("left.foreachRDD(report)\n");
    }
    out
}

fn render_pipeline(out: &mut String, var: &str, p: &Pipeline) {
    for op in &p.ops {
        match op {
            Operator::Filter(pred) => {
                out.push_str(&format!("  .filter(t => {pred})\n"));
            }
            Operator::Map { exprs } => {
                let body = exprs
                    .iter()
                    .map(|(n, e)| format!("{n} = {e}"))
                    .collect::<Vec<_>>()
                    .join(", ");
                out.push_str(&format!("  .map(t => ({body}))\n"));
            }
            Operator::Reduce {
                keys, agg, value, ..
            } => {
                let k = keys
                    .iter()
                    .map(|x| x.to_string())
                    .collect::<Vec<_>>()
                    .join(", ");
                out.push_str(&format!("  .map(t => (({k}), t.{value}))\n"));
                out.push_str(&format!("  .reduceByKey({agg})\n"));
            }
            Operator::Distinct => {
                out.push_str("  .transform(_.distinct())\n");
            }
        }
    }
    let _ = var;
}

/// Non-empty line count of the generated stream plan.
pub fn stream_loc(query: &Query) -> usize {
    codegen_stream_plan(query)
        .lines()
        .filter(|l| !l.trim().is_empty())
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sonata_packet::Value;
    use sonata_query::catalog::{self, Thresholds};

    #[test]
    fn batch_counts_tuples() {
        let mut b = WindowBatch::new();
        assert!(b.is_empty());
        b.push_left(0, vec![Tuple::new(vec![Value::U64(1)])]);
        b.push_left(
            2,
            vec![
                Tuple::new(vec![Value::U64(2)]),
                Tuple::new(vec![Value::U64(3)]),
            ],
        );
        b.push_right(1, vec![Tuple::new(vec![Value::U64(4)])]);
        assert_eq!(b.tuple_count(), 4);
        assert!(!b.is_empty());
        // Entries at the same op accumulate.
        b.push_left(0, vec![Tuple::new(vec![Value::U64(5)])]);
        assert_eq!(b.left[&0].len(), 2);
    }

    #[test]
    fn append_moves_or_extends() {
        let mut b = WindowBatch::new();
        // Vacant entry: the vector moves in whole.
        b.append_left(3, vec![Tuple::new(vec![Value::U64(1)])]);
        assert_eq!(b.left[&3].len(), 1);
        // Occupied entry: appended after the existing tuples.
        b.append_left(
            3,
            vec![
                Tuple::new(vec![Value::U64(2)]),
                Tuple::new(vec![Value::U64(3)]),
            ],
        );
        assert_eq!(b.left[&3].len(), 3);
        assert_eq!(b.left[&3][0].get(0), &Value::U64(1));
        b.append_right(0, vec![Tuple::new(vec![Value::U64(9)])]);
        assert_eq!(b.tuple_count(), 4);
    }

    #[test]
    fn stream_plan_for_every_catalog_query() {
        for q in catalog::all(&Thresholds::default()) {
            let plan = codegen_stream_plan(&q);
            assert!(plan.contains(&q.name));
            let loc = stream_loc(&q);
            // Paper's Table 3 Spark column spans 4–15 lines.
            assert!((3..=25).contains(&loc), "{}: {loc} lines", q.name);
            if q.join.is_some() {
                assert!(plan.contains(".join("), "{}", q.name);
            }
        }
    }
}
