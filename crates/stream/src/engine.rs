//! The micro-batch execution engine.
//!
//! [`execute_window`] evaluates one query over one window's
//! [`WindowBatch`]; [`MicroBatchEngine`] manages a set of queries and
//! accumulates the tuple-intake counters the experiments report.

use crate::window::WindowBatch;
use sonata_query::bound::{BoundError, BoundPipeline};
use sonata_query::expr::BoundExpr;
use sonata_query::interpret::{run_operator, InterpretError};
use sonata_query::query::joined_schema;
use sonata_query::{Query, QueryId, Schema, Tuple};
use std::collections::{BTreeMap, HashMap};

/// Errors from window execution.
#[derive(Debug)]
pub enum StreamError {
    /// The underlying interpreter failed (authoring bug).
    Interpret(InterpretError),
    /// A batch entry index is past the end of the branch pipeline.
    BadEntry {
        /// The offending op index.
        op: usize,
        /// Ops in the branch.
        len: usize,
    },
    /// A batch addressed the right branch of a join-free query.
    NoRightBranch,
    /// The engine has no job with this id.
    UnknownQuery(QueryId),
    /// A worker thread panicked while executing the window; the
    /// sharded runtime contains the panic and reports it as an error
    /// instead of hanging or poisoning the pool.
    Panic(String),
}

impl From<InterpretError> for StreamError {
    fn from(e: InterpretError) -> Self {
        StreamError::Interpret(e)
    }
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::Interpret(e) => write!(f, "{e}"),
            StreamError::BadEntry { op, len } => {
                write!(f, "batch entry at op {op} but pipeline has {len} ops")
            }
            StreamError::NoRightBranch => {
                write!(f, "batch has right-branch tuples but query has no join")
            }
            StreamError::UnknownQuery(q) => write!(f, "no job registered for {q}"),
            StreamError::Panic(msg) => write!(f, "stream worker panicked: {msg}"),
        }
    }
}

impl std::error::Error for StreamError {}

/// The result of one query-window evaluation.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// The query's final output tuples for the window, sorted.
    pub output: Vec<Tuple>,
    /// Tuples that entered the engine for this window (the paper's per
    /// window `N`).
    pub tuples_in: usize,
    /// Pre-join outputs of each branch (left, then right for join
    /// queries). Dynamic refinement of join queries feeds on these:
    /// "their output at coarser levels determines which portion of
    /// traffic to process for the finer levels" (Section 4.1).
    pub branch_outputs: Vec<(Schema, Vec<Tuple>)>,
}

/// Run a pipeline with tuples injected at arbitrary operator indices
/// and fold the remaining operators over them. Public because the
/// emitter uses the same machinery for its local key-value store
/// (merging collision shunts into register dumps, Section 5).
pub fn run_entries(
    ops: &[sonata_query::Operator],
    entries: &BTreeMap<usize, Vec<Tuple>>,
) -> Result<(Schema, Vec<Tuple>), StreamError> {
    run_entries_owned(ops, entries.clone())
}

/// [`run_entries`] taking ownership of the entry tuples, so callers
/// that already hold an owned batch (the sharded worker pool, the
/// runtime's per-window submit) skip a whole-window tuple clone.
pub fn run_entries_owned(
    ops: &[sonata_query::Operator],
    mut entries: BTreeMap<usize, Vec<Tuple>>,
) -> Result<(Schema, Vec<Tuple>), StreamError> {
    for &op in entries.keys() {
        if op > ops.len() {
            return Err(StreamError::BadEntry { op, len: ops.len() });
        }
    }
    let first = entries.keys().next().copied().unwrap_or(ops.len());
    // Schema at the first entry point.
    let mut schema = Schema::packet();
    for op in &ops[..first] {
        schema = op.output_schema(&schema).map_err(|c| {
            InterpretError::Bind(sonata_query::expr::BindError::UnknownColumn {
                column: c,
                schema: schema.clone(),
            })
        })?;
    }
    let mut tuples: Vec<Tuple> = Vec::new();
    for i in first..=ops.len() {
        if let Some(incoming) = entries.remove(&i) {
            if tuples.is_empty() {
                tuples = incoming;
            } else {
                tuples.extend(incoming);
            }
        }
        if i == ops.len() {
            break;
        }
        let (s, t) = run_operator(&ops[i], &schema, tuples)?;
        schema = s;
        tuples = t;
    }
    Ok((schema, tuples))
}

/// Evaluate one query over one window's batch.
pub fn execute_window(query: &Query, batch: &WindowBatch) -> Result<JobResult, StreamError> {
    execute_window_owned(query, batch.clone())
}

/// [`execute_window`] taking ownership of the batch (no tuple clone).
pub fn execute_window_owned(query: &Query, batch: WindowBatch) -> Result<JobResult, StreamError> {
    let tuples_in = batch.tuple_count();
    let (left_schema, left) = run_entries_owned(&query.pipeline.ops, batch.left)?;
    let mut branch_outputs = vec![(left_schema.clone(), left.clone())];
    let output = match &query.join {
        None => {
            if !batch.right.is_empty() {
                return Err(StreamError::NoRightBranch);
            }
            left
        }
        Some(join) => {
            let (right_schema, right) = run_entries_owned(&join.right.ops, batch.right)?;
            branch_outputs.push((right_schema.clone(), right.clone()));
            // Hash join, mirroring the reference interpreter.
            let right_key_idx: Vec<usize> = join
                .keys
                .iter()
                .map(|k| {
                    right_schema.index_of(k).ok_or_else(|| {
                        StreamError::Interpret(InterpretError::Query(
                            sonata_query::QueryError::JoinKeyMissing { key: k.clone() },
                        ))
                    })
                })
                .collect::<Result<_, _>>()?;
            let left_key_exprs: Vec<BoundExpr> = join
                .left_keys
                .iter()
                .map(|e| {
                    e.bind(&left_schema)
                        .map_err(InterpretError::Bind)
                        .map_err(StreamError::from)
                })
                .collect::<Result<_, _>>()?;
            let mut index: BTreeMap<Tuple, Vec<&Tuple>> = BTreeMap::new();
            for t in &right {
                index.entry(t.project(&right_key_idx)).or_default().push(t);
            }
            let append_idx: Vec<usize> = right_schema
                .columns()
                .iter()
                .enumerate()
                .filter(|(_, c)| !left_schema.contains(c))
                .map(|(i, _)| i)
                .collect();
            let joined_schema = joined_schema(&left_schema, &right_schema, &join.keys);
            let mut joined = Vec::new();
            for lt in &left {
                let key = Tuple::new(left_key_exprs.iter().map(|e| e.eval(lt)).collect());
                if let Some(matches) = index.get(&key) {
                    for rt in matches {
                        joined.push(lt.concat(&rt.project(&append_idx)));
                    }
                }
            }
            let mut schema = joined_schema;
            let mut tuples = joined;
            for op in &join.post.ops {
                let (s, t) = run_operator(op, &schema, tuples)?;
                schema = s;
                tuples = t;
            }
            tuples
        }
    };
    let mut output = output;
    output.sort();
    // Branch outputs are sorted too so the result is canonical: the
    // sharded runtime unions per-shard branch outputs and must land on
    // the same bytes (consumers key on them order-insensitively).
    for (_, tuples) in &mut branch_outputs {
        tuples.sort();
    }
    Ok(JobResult {
        output,
        tuples_in,
        branch_outputs,
    })
}

impl From<BoundError> for StreamError {
    fn from(e: BoundError) -> Self {
        match e {
            BoundError::BadEntry { op, len } => StreamError::BadEntry { op, len },
        }
    }
}

/// Pre-bound join machinery: key offsets, key expressions, and the
/// right-side append projection, all resolved at registration.
struct BoundJoin {
    right: BoundPipeline,
    post: BoundPipeline,
    right_key_idx: Vec<usize>,
    left_key_exprs: Vec<BoundExpr>,
    append_idx: Vec<usize>,
}

/// A query's compiled fast path: fused pipelines with column offsets
/// resolved once. `None` when binding failed (the reference
/// interpreter then surfaces the identical error per window) or the
/// engine is forced onto the reference path.
struct BoundQuery {
    left: BoundPipeline,
    join: Option<BoundJoin>,
}

fn bind_query(q: &Query) -> Option<BoundQuery> {
    let packet = Schema::packet();
    let left = BoundPipeline::bind(&q.pipeline.ops, &packet).ok()?;
    let join = match &q.join {
        None => None,
        Some(join) => {
            let right = BoundPipeline::bind(&join.right.ops, &packet).ok()?;
            let left_schema = left.output_schema();
            let right_schema = right.output_schema();
            let right_key_idx: Vec<usize> = join
                .keys
                .iter()
                .map(|k| right_schema.index_of(k))
                .collect::<Option<_>>()?;
            let left_key_exprs: Vec<BoundExpr> = join
                .left_keys
                .iter()
                .map(|e| e.bind(left_schema).ok())
                .collect::<Option<_>>()?;
            let append_idx: Vec<usize> = right_schema
                .columns()
                .iter()
                .enumerate()
                .filter(|(_, c)| !left_schema.contains(c))
                .map(|(i, _)| i)
                .collect();
            let joined = joined_schema(left_schema, right_schema, &join.keys);
            let post = BoundPipeline::bind(&join.post.ops, &joined).ok()?;
            Some(BoundJoin {
                right,
                post,
                right_key_idx,
                left_key_exprs,
                append_idx,
            })
        }
    };
    Some(BoundQuery { left, join })
}

/// [`execute_window_owned`] on the compiled fast path. Bit-identical
/// to the reference: same entry-merge order, same per-key fold order,
/// same sorted emission, same error precedence (left entries validate
/// before the right branch is considered).
fn execute_window_bound(
    query: &Query,
    bound: &mut BoundQuery,
    batch: WindowBatch,
) -> Result<JobResult, StreamError> {
    let tuples_in = batch.tuple_count();
    let (left_schema, left) = bound.left.run_entries(batch.left)?;
    let mut branch_outputs = vec![(left_schema, left.clone())];
    let output = match (&query.join, &mut bound.join) {
        (None, _) => {
            if !batch.right.is_empty() {
                return Err(StreamError::NoRightBranch);
            }
            left
        }
        (Some(_), Some(bj)) => {
            let (right_schema, right) = bj.right.run_entries(batch.right)?;
            branch_outputs.push((right_schema, right.clone()));
            let mut index: HashMap<Tuple, Vec<&Tuple>> = HashMap::with_capacity(right.len());
            for t in &right {
                index
                    .entry(t.project(&bj.right_key_idx))
                    .or_default()
                    .push(t);
            }
            let mut joined = Vec::new();
            for lt in &branch_outputs[0].1 {
                let key = Tuple::new(bj.left_key_exprs.iter().map(|e| e.eval(lt)).collect());
                if let Some(matches) = index.get(&key) {
                    for rt in matches {
                        joined.push(lt.concat(&rt.project(&bj.append_idx)));
                    }
                }
            }
            bj.post.run(joined)
        }
        (Some(_), None) => unreachable!("bind_query binds the join when the query has one"),
    };
    let mut output = output;
    output.sort();
    for (_, tuples) in &mut branch_outputs {
        tuples.sort();
    }
    Ok(JobResult {
        output,
        tuples_in,
        branch_outputs,
    })
}

/// Cumulative engine counters.
#[derive(Debug, Clone, Default)]
pub struct EngineCounters {
    /// Total tuples received across all queries and windows.
    pub tuples_in: u64,
    /// Total result tuples emitted.
    pub results_out: u64,
    /// Windows executed.
    pub windows: u64,
    /// Per-query intake.
    pub per_query: HashMap<QueryId, u64>,
}

/// One registered query with its compiled fast path.
struct Job {
    query: Query,
    bound: Option<BoundQuery>,
}

/// A stateful engine managing several registered queries.
#[derive(Default)]
pub struct MicroBatchEngine {
    jobs: HashMap<QueryId, Job>,
    counters: EngineCounters,
    force_reference: bool,
}

impl MicroBatchEngine {
    /// An engine with no jobs.
    pub fn new() -> Self {
        Self::default()
    }

    /// Route every window through the tree-walking reference
    /// interpreter instead of the compiled fast path (the
    /// `force_reference_path` debug knob). Re-binds registered jobs.
    pub fn set_force_reference(&mut self, on: bool) {
        self.force_reference = on;
        for job in self.jobs.values_mut() {
            job.bound = if on { None } else { bind_query(&job.query) };
        }
    }

    /// Register (or replace) a query job, compiling its fast path.
    pub fn register(&mut self, query: Query) {
        let bound = if self.force_reference {
            None
        } else {
            bind_query(&query)
        };
        self.jobs.insert(query.id, Job { query, bound });
    }

    /// Deregister a query.
    pub fn deregister(&mut self, id: QueryId) -> bool {
        self.jobs.remove(&id).is_some()
    }

    /// Registered query ids.
    pub fn queries(&self) -> Vec<QueryId> {
        let mut q: Vec<QueryId> = self.jobs.keys().copied().collect();
        q.sort();
        q
    }

    /// Execute one window for one query.
    pub fn submit(&mut self, id: QueryId, batch: &WindowBatch) -> Result<JobResult, StreamError> {
        self.submit_owned(id, batch.clone())
    }

    /// [`Self::submit`] taking ownership of the batch (no tuple clone).
    pub fn submit_owned(
        &mut self,
        id: QueryId,
        batch: WindowBatch,
    ) -> Result<JobResult, StreamError> {
        let job = self
            .jobs
            .get_mut(&id)
            .ok_or(StreamError::UnknownQuery(id))?;
        let result = match &mut job.bound {
            Some(bound) => execute_window_bound(&job.query, bound, batch)?,
            None => execute_window_owned(&job.query, batch)?,
        };
        self.account(id, &result);
        Ok(result)
    }

    fn account(&mut self, id: QueryId, result: &JobResult) {
        self.counters.tuples_in += result.tuples_in as u64;
        self.counters.results_out += result.output.len() as u64;
        self.counters.windows += 1;
        *self.counters.per_query.entry(id).or_default() += result.tuples_in as u64;
    }

    /// Cumulative counters.
    pub fn counters(&self) -> &EngineCounters {
        &self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sonata_packet::{PacketBuilder, TcpFlags, Value};
    use sonata_query::catalog::{self, Thresholds};
    use sonata_query::interpret::run_query;

    fn syn(src: u32, dst: u32) -> sonata_packet::Packet {
        PacketBuilder::tcp_raw(src, 999, dst, 80)
            .flags(TcpFlags::SYN)
            .build()
    }

    fn q1(th: u64) -> Query {
        catalog::newly_opened_tcp_conns(&Thresholds {
            new_tcp: th,
            ..Thresholds::default()
        })
    }

    #[test]
    fn all_sp_entry_matches_reference() {
        let q = q1(2);
        let pkts: Vec<_> = (0..6).map(|i| syn(i, 0xaa)).collect();
        let mut batch = WindowBatch::new();
        batch.push_left(0, pkts.iter().map(Tuple::from_packet));
        let result = execute_window(&q, &batch).unwrap();
        let reference = run_query(&q, &pkts).unwrap();
        assert_eq!(result.output, reference);
        assert_eq!(result.tuples_in, 6);
    }

    #[test]
    fn dump_entry_skips_switch_side_ops() {
        let q = q1(2);
        // The switch already aggregated: (dIP=0xaa, count=5) passed the
        // merged threshold; the SP has nothing left to do (resume at 4).
        let mut batch = WindowBatch::new();
        batch.push_left(4, vec![Tuple::new(vec![Value::U64(0xaa), Value::U64(5)])]);
        let result = execute_window(&q, &batch).unwrap();
        assert_eq!(result.output.len(), 1);
        assert_eq!(result.output[0].get(1), &Value::U64(5));
    }

    #[test]
    fn shunt_entry_redoes_aggregation() {
        let q = q1(2);
        // Shunted tuples enter at the reduce (op 2) with schema (dIP, count).
        let mut batch = WindowBatch::new();
        batch.push_left(
            2,
            (0..4).map(|_| Tuple::new(vec![Value::U64(0xbb), Value::U64(1)])),
        );
        // Plus one dump tuple from the register-resident keys.
        batch.push_left(4, vec![Tuple::new(vec![Value::U64(0xaa), Value::U64(9)])]);
        let result = execute_window(&q, &batch).unwrap();
        // Both hosts exceed the threshold: 0xaa from the dump, 0xbb
        // re-aggregated from shunts (4 > 2).
        assert_eq!(result.output.len(), 2);
        assert_eq!(result.output[0].values()[0], Value::U64(0xaa));
        assert_eq!(result.output[1].values()[0], Value::U64(0xbb));
        assert_eq!(result.output[1].values()[1], Value::U64(4));
    }

    #[test]
    fn join_query_executes_both_branches() {
        let q = catalog::tcp_syn_flood(&Thresholds {
            syn_flood: 2,
            ..Thresholds::default()
        });
        let mut batch = WindowBatch::new();
        // Left branch dump: 5 SYNs to host 0xaa (enters after reduce, op 3).
        batch.push_left(3, vec![Tuple::new(vec![Value::U64(0xaa), Value::U64(5)])]);
        // Right branch dump: 1 ACK to host 0xaa.
        batch.push_right(3, vec![Tuple::new(vec![Value::U64(0xaa), Value::U64(1)])]);
        let result = execute_window(&q, &batch).unwrap();
        assert_eq!(result.output.len(), 1);
        // diff = 5 - 1 = 4 > 2
        assert_eq!(result.output[0].get(1), &Value::U64(4));
        assert_eq!(result.tuples_in, 2);
    }

    #[test]
    fn join_without_match_produces_nothing() {
        let q = catalog::tcp_syn_flood(&Thresholds::default());
        let mut batch = WindowBatch::new();
        batch.push_left(3, vec![Tuple::new(vec![Value::U64(0xaa), Value::U64(500)])]);
        batch.push_right(3, vec![Tuple::new(vec![Value::U64(0xbb), Value::U64(1)])]);
        let result = execute_window(&q, &batch).unwrap();
        assert!(result.output.is_empty());
    }

    #[test]
    fn bad_entry_rejected() {
        let q = q1(1);
        let mut batch = WindowBatch::new();
        batch.push_left(99, vec![Tuple::new(vec![Value::U64(1)])]);
        assert!(matches!(
            execute_window(&q, &batch),
            Err(StreamError::BadEntry { op: 99, .. })
        ));
        let mut batch = WindowBatch::new();
        batch.push_right(0, vec![Tuple::new(vec![Value::U64(1)])]);
        assert!(matches!(
            execute_window(&q, &batch),
            Err(StreamError::NoRightBranch)
        ));
    }

    #[test]
    fn engine_accumulates_counters() {
        let mut engine = MicroBatchEngine::new();
        engine.register(q1(2));
        let pkts: Vec<_> = (0..6).map(|i| syn(i, 0xaa)).collect();
        let mut batch = WindowBatch::new();
        batch.push_left(0, pkts.iter().map(Tuple::from_packet));
        engine.submit(QueryId(1), &batch).unwrap();
        engine.submit(QueryId(1), &batch).unwrap();
        let c = engine.counters();
        assert_eq!(c.tuples_in, 12);
        assert_eq!(c.windows, 2);
        assert_eq!(c.results_out, 2);
        assert_eq!(c.per_query[&QueryId(1)], 12);
        assert!(matches!(
            engine.submit(QueryId(9), &batch),
            Err(StreamError::UnknownQuery(_))
        ));
        assert!(engine.deregister(QueryId(1)));
        assert!(!engine.deregister(QueryId(1)));
    }

    #[test]
    fn bound_path_matches_reference_across_catalog() {
        // Every catalog query, mixed entry points, fast vs forced
        // reference: JobResults must be bit-identical.
        let th = Thresholds {
            new_tcp: 2,
            ssh_brute: 1,
            superspreader: 2,
            port_scan: 2,
            ddos: 2,
            syn_flood: 2,
            incomplete_flows: 1,
            ..Thresholds::default()
        };
        for q in catalog::all(&th) {
            let mut fast = MicroBatchEngine::new();
            let mut reference = MicroBatchEngine::new();
            reference.set_force_reference(true);
            let id = q.id;
            fast.register(q.clone());
            reference.register(q.clone());
            let pkts: Vec<_> = (0..40)
                .map(|i| {
                    PacketBuilder::tcp_raw(i % 7, 22, 0xaa + (i % 5), (80 + i % 3) as u16)
                        .flags(if i % 2 == 0 {
                            TcpFlags::SYN
                        } else {
                            TcpFlags::PSH_ACK
                        })
                        .build()
                })
                .collect();
            let mut batch = WindowBatch::new();
            batch.push_left(0, pkts.iter().map(Tuple::from_packet));
            if q.join.is_some() {
                batch.push_right(0, pkts.iter().map(Tuple::from_packet));
            }
            let a = fast.submit(id, &batch);
            let b = reference.submit(id, &batch);
            match (a, b) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a.output, b.output, "{id:?}");
                    assert_eq!(a.tuples_in, b.tuples_in, "{id:?}");
                    assert_eq!(
                        a.branch_outputs
                            .iter()
                            .map(|(s, t)| (s.clone(), t.clone()))
                            .collect::<Vec<_>>(),
                        b.branch_outputs,
                        "{id:?}"
                    );
                }
                (a, b) => panic!("{id:?}: fast={a:?} reference={b:?}"),
            }
        }
    }

    #[test]
    fn bound_path_matches_reference_on_mid_pipeline_entries() {
        let q = q1(0);
        let id = q.id;
        let mut fast = MicroBatchEngine::new();
        let mut reference = MicroBatchEngine::new();
        reference.set_force_reference(true);
        fast.register(q.clone());
        reference.register(q);
        let mut batch = WindowBatch::new();
        batch.push_left(0, (0..5).map(|i| Tuple::from_packet(&syn(i, 0xcc))));
        batch.push_left(
            2,
            (0..4).map(|_| Tuple::new(vec![Value::U64(0xcc), Value::U64(1)])),
        );
        batch.push_left(4, vec![Tuple::new(vec![Value::U64(0xdd), Value::U64(9)])]);
        let a = fast.submit(id, &batch).unwrap();
        let b = reference.submit(id, &batch).unwrap();
        assert_eq!(a.output, b.output);
        assert_eq!(a.branch_outputs, b.branch_outputs);
    }

    #[test]
    fn mixed_entries_merge_in_order() {
        // Tuples entering at op 1 (after the filter) and op 0 must both
        // flow through the map/reduce.
        let q = q1(0);
        let mut batch = WindowBatch::new();
        batch.push_left(0, vec![Tuple::from_packet(&syn(1, 0xcc))]);
        batch.push_left(1, vec![Tuple::from_packet(&syn(2, 0xcc))]);
        let result = execute_window(&q, &batch).unwrap();
        assert_eq!(result.output.len(), 1);
        assert_eq!(result.output[0].get(1), &Value::U64(2));
    }
}
