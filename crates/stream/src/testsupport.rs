//! Shared fixtures for the differential sharding harness.
//!
//! Lives in `src/` (not `tests/`) so the crate's unit tests, the
//! integration suites under `crates/stream/tests/`, and the bench
//! binaries all draw the same seeded traffic and use the same
//! equivalence checks: for any query, executing a window sharded over
//! N workers must produce byte-identical results to the
//! single-threaded engine, which must in turn agree with the
//! `sonata-query` reference interpreter.

use crate::engine::execute_window;
use crate::window::WindowBatch;
use crate::worker::ShardedEngine;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sonata_packet::{DnsHeader, DnsQType, DnsRecord, Packet, PacketBuilder, TcpFlags};
use sonata_query::catalog::Thresholds;
use sonata_query::interpret::run_query;
use sonata_query::{Query, Tuple};

/// Thresholds low enough that seeded traces trip every catalog query,
/// so differential runs compare non-empty outputs.
pub fn low_thresholds() -> Thresholds {
    Thresholds {
        new_tcp: 2,
        ssh_brute: 2,
        superspreader: 2,
        port_scan: 2,
        ddos: 2,
        syn_flood: 1,
        incomplete_flows: 1,
        slowloris_bytes: 1,
        slowloris_cpkb: 0,
        dns_tunneling: 2,
        zorro_pkts: 2,
        zorro_payloads: 0,
        dns_reflection: 2,
        malicious_domains: 2,
        window_ms: 3_000,
    }
}

/// A deterministic mixed trace: TCP handshakes and teardowns over
/// small IP/port pools (so counts and distinct-cardinalities cross
/// the low thresholds), SSH and telnet payload traffic (queries 2 and
/// 10, including literal `zorro` payloads), and DNS queries plus
/// A-record responses (queries 9, 11, and the fast-flux extension).
pub fn seeded_packets(seed: u64, n: usize) -> Vec<Packet> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pkts = Vec::with_capacity(n);
    let hosts: [u32; 4] = [0x0a00_0001, 0x0a00_0002, 0x0a01_0003, 0x0b00_0004];
    let victims: [u32; 3] = [0xc0a8_0001, 0xc0a8_0002, 0xc0a8_0103];
    let domains = [
        "evil.example.com",
        "cdn.example.net",
        "x.y.z.tunnel.example.org",
    ];
    for i in 0..n {
        let src = hosts[rng.gen_range(0..hosts.len())];
        let dst = victims[rng.gen_range(0..victims.len())];
        let ts = (i as u64) * 1_000;
        let pkt = match rng.gen_range(0..10u32) {
            // TCP handshake traffic: SYN-heavy so SYN-ACK and SYN-FIN
            // differences stay positive (queries 1, 6, 7).
            0..=2 => PacketBuilder::tcp_raw(src, rng.gen_range(1024..1032), dst, 80)
                .flags(match rng.gen_range(0..5u32) {
                    0..=2 => TcpFlags::SYN,
                    3 => TcpFlags::ACK,
                    // Teardowns, so query 7's SYN−FIN join matches.
                    _ => TcpFlags(TcpFlags::FIN.0 | TcpFlags::ACK.0),
                })
                .ts_nanos(ts)
                .build(),
            // Port/host sweeps (queries 3, 4, 5).
            3 | 4 => PacketBuilder::tcp_raw(
                src,
                40_000,
                victims[rng.gen_range(0..victims.len())],
                rng.gen_range(1..12u64) as u16,
            )
            .flags(TcpFlags::SYN)
            .ts_nanos(ts)
            .build(),
            // SSH brute force: same-sized payloads to port 22 (query 2).
            5 => PacketBuilder::tcp_raw(src, 51_000, dst, 22)
                .flags(TcpFlags::PSH_ACK)
                .payload(vec![0u8; 48])
                .ts_nanos(ts)
                .build(),
            // Telnet: similar-sized packets, some literal "zorro"
            // payloads (query 10) — also byte volume for query 8.
            6 => {
                let body: &[u8] = if rng.gen_bool(0.5) {
                    b"zorro"
                } else {
                    b"login"
                };
                PacketBuilder::tcp_raw(src, 52_000, dst, 23)
                    .flags(TcpFlags::PSH_ACK)
                    .payload(body.to_vec())
                    .ts_nanos(ts)
                    .build()
            }
            // DNS queries, long names for tunneling (query 9).
            7 | 8 => {
                let name = domains[rng.gen_range(0..domains.len())];
                PacketBuilder::dns(
                    src,
                    0x0808_0808,
                    DnsHeader::query(i as u16, name, DnsQType::A),
                )
                .ts_nanos(ts)
                .build()
            }
            // DNS responses with A records: reflection victims and
            // fast-flux resolution sets (queries 11, 12).
            _ => {
                let name = domains[rng.gen_range(0..domains.len())];
                let addr: u32 = hosts[rng.gen_range(0..hosts.len())];
                PacketBuilder::dns(
                    0x0808_0808,
                    dst,
                    DnsHeader::response(
                        i as u16,
                        name,
                        DnsQType::A,
                        vec![DnsRecord {
                            name: name.to_string(),
                            rtype: DnsQType::A,
                            ttl: 60,
                            rdata: addr.to_be_bytes().to_vec(),
                        }],
                    ),
                )
                .ts_nanos(ts)
                .build()
            }
        };
        pkts.push(pkt);
    }
    pkts
}

/// One whole-window batch for `query`: every packet enters both the
/// main pipeline and (for join queries) the right branch at index 0,
/// exactly as the reference interpreter sees the trace.
pub fn batch_for(query: &Query, pkts: &[Packet]) -> WindowBatch {
    let mut batch = WindowBatch::new();
    batch.push_left(0, pkts.iter().map(Tuple::from_packet));
    if query.join.is_some() {
        batch.push_right(0, pkts.iter().map(Tuple::from_packet));
    }
    batch
}

/// Assert that `query` over `batch` produces byte-identical results on
/// a [`ShardedEngine`] at every worker count in `workers`, and return
/// the single-threaded result the shards were compared against.
pub fn assert_sharded_matches_serial(
    query: &Query,
    batch: &WindowBatch,
    workers: &[usize],
) -> crate::engine::JobResult {
    let serial = execute_window(query, batch)
        .unwrap_or_else(|e| panic!("{}: serial execution failed: {e}", query.name));
    for &w in workers {
        let mut engine = ShardedEngine::new(w);
        engine.register(query.clone());
        let sharded = engine
            .submit(query.id, batch)
            .unwrap_or_else(|e| panic!("{}: sharded ({w} workers) failed: {e}", query.name));
        assert_eq!(
            sharded.output, serial.output,
            "{}: output diverges at {w} workers",
            query.name
        );
        assert_eq!(
            sharded.tuples_in, serial.tuples_in,
            "{}: tuple intake diverges at {w} workers",
            query.name
        );
        assert_eq!(
            sharded.branch_outputs, serial.branch_outputs,
            "{}: branch outputs diverge at {w} workers",
            query.name
        );
    }
    serial
}

/// Full differential check: sharded ≡ serial at every worker count,
/// and serial ≡ the reference interpreter on the raw trace.
pub fn assert_differential(query: &Query, pkts: &[Packet], workers: &[usize]) {
    let batch = batch_for(query, pkts);
    let serial = assert_sharded_matches_serial(query, &batch, workers);
    let reference = run_query(query, pkts)
        .unwrap_or_else(|e| panic!("{}: reference interpreter failed: {e}", query.name));
    assert_eq!(
        serial.output, reference,
        "{}: engine diverges from reference interpreter",
        query.name
    );
}
