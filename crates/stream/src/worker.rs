//! Threaded engine workers.
//!
//! [`spawn_worker`] runs one engine on its own thread behind crossbeam
//! channels — the emitter pushes window batches in and collects
//! results asynchronously, mirroring the decoupling between Sonata's
//! emitter and its Spark cluster.
//!
//! [`ShardedEngine`] scales that to N workers: each holds a full
//! [`MicroBatchEngine`] replica, every submitted window is
//! hash-partitioned by the query's group key ([`crate::shard`]) so all
//! per-key state stays shard-local, the shards execute concurrently,
//! and the shard results are unioned into the exact single-threaded
//! [`JobResult`]. Worker panics are contained per window and surface
//! as [`StreamError::Panic`] rather than hanging the pool.

use crate::engine::{EngineCounters, JobResult, MicroBatchEngine, StreamError};
use crate::shard::{self, PartitionSpec};
use crate::window::WindowBatch;
use crossbeam::channel::{bounded, Receiver, Sender};
use sonata_faults::{FaultInjector, WorkerVerdict};
use sonata_obs::{Counter, EventKind, Gauge, Histogram, ObsHandle, Stage};
use sonata_query::{Query, QueryId};
use std::collections::{BTreeMap, HashMap};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Panic payload used for injected worker crashes, recognizable in
/// `StreamError::Panic` messages and obs events.
pub const INJECTED_CRASH_MSG: &str = "injected fault: worker crash";

/// Render a panic payload for [`StreamError::Panic`].
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A window of work for the worker.
#[derive(Debug)]
pub struct WorkItem {
    /// Window index (echoed back in the result).
    pub window: u64,
    /// Target query.
    pub query: QueryId,
    /// The batch.
    pub batch: WindowBatch,
}

/// A completed window.
#[derive(Debug)]
pub struct WorkOutput {
    /// Window index.
    pub window: u64,
    /// Query.
    pub query: QueryId,
    /// Result or error.
    pub result: Result<JobResult, StreamError>,
}

/// Handle to a running worker thread.
pub struct WorkerHandle {
    /// Send window batches here; dropping it shuts the worker down.
    pub input: Sender<WorkItem>,
    /// Results arrive here, in submission order.
    pub output: Receiver<WorkOutput>,
    join: JoinHandle<MicroBatchEngine>,
}

impl WorkerHandle {
    /// Shut down (close the input) and recover the engine with its
    /// final counters.
    pub fn finish(self) -> MicroBatchEngine {
        drop(self.input);
        self.join.join().expect("stream worker panicked")
    }
}

/// Spawn an engine with the given queries on its own thread.
pub fn spawn_worker(queries: Vec<Query>, queue_depth: usize) -> WorkerHandle {
    let (in_tx, in_rx) = bounded::<WorkItem>(queue_depth.max(1));
    let (out_tx, out_rx) = bounded::<WorkOutput>(queue_depth.max(1));
    let join = std::thread::Builder::new()
        .name("sonata-stream-worker".into())
        .spawn(move || {
            let mut engine = MicroBatchEngine::new();
            for q in queries {
                engine.register(q);
            }
            while let Ok(item) = in_rx.recv() {
                let result =
                    catch_unwind(AssertUnwindSafe(|| engine.submit(item.query, &item.batch)))
                        .unwrap_or_else(|payload| Err(StreamError::Panic(panic_message(payload))));
                if out_tx
                    .send(WorkOutput {
                        window: item.window,
                        query: item.query,
                        result,
                    })
                    .is_err()
                {
                    break; // consumer gone
                }
            }
            engine
        })
        .expect("spawn stream worker");
    WorkerHandle {
        input: in_tx,
        output: out_rx,
        join,
    }
}

/// Messages a pool worker understands.
enum PoolMsg {
    /// Install (or replace) a query on this worker's engine replica.
    Register(Box<Query>),
    /// Remove a query.
    Deregister(QueryId),
    /// Filter this worker's shard out of the shared window batch,
    /// execute it, and send the result back.
    Job {
        query: QueryId,
        batch: Arc<WindowBatch>,
        reply: Sender<Result<JobResult, StreamError>>,
        /// Fault verdict for this attempt (`Run` when faults are
        /// disabled): `Crash` kills the worker thread after it
        /// reports the failure, `Stall` sleeps before executing.
        fault: WorkerVerdict,
    },
}

/// Spawn one shard-worker thread serving `rx`. Factored out of
/// [`WorkerPool::new`] so a crashed worker can be respawned with an
/// identical replacement.
fn spawn_shard_worker(
    index: usize,
    workers: usize,
    rx: Receiver<PoolMsg>,
    force_reference: bool,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("sonata-stream-shard-{index}"))
        .spawn(move || {
            let mut engine = MicroBatchEngine::new();
            engine.set_force_reference(force_reference);
            // Each worker derives the partition plan from the
            // registered query itself — `partition_spec` is
            // pure, so all workers and the pool front-end
            // agree on routing without shipping plans around.
            let mut plans: HashMap<QueryId, PartitionSpec> = HashMap::new();
            while let Ok(msg) = rx.recv() {
                match msg {
                    PoolMsg::Register(q) => {
                        plans.insert(q.id, shard::partition_spec(&q));
                        engine.register(*q);
                    }
                    PoolMsg::Deregister(id) => {
                        plans.remove(&id);
                        engine.deregister(id);
                    }
                    PoolMsg::Job {
                        query,
                        batch,
                        reply,
                        fault,
                    } => {
                        if fault == WorkerVerdict::Crash {
                            // Fail-stop: report the crash, then die.
                            // The pool must respawn this worker before
                            // it can serve again.
                            let _ = reply.send(Err(StreamError::Panic(INJECTED_CRASH_MSG.into())));
                            return;
                        }
                        if let WorkerVerdict::Stall { ms } = fault {
                            std::thread::sleep(std::time::Duration::from_millis(ms));
                        }
                        let result = catch_unwind(AssertUnwindSafe(|| {
                            let spec = plans.get(&query).ok_or(StreamError::UnknownQuery(query))?;
                            let mine = shard::shard_filter(spec, &batch, workers, index);
                            engine.submit_owned(query, mine)
                        }))
                        .unwrap_or_else(|payload| Err(StreamError::Panic(panic_message(payload))));
                        // A dropped reply receiver means the
                        // submitter gave up; keep serving.
                        let _ = reply.send(result);
                    }
                }
            }
        })
        .expect("spawn stream shard worker")
}

/// A fixed set of persistent worker threads, each owning a full
/// engine replica. One window fans out as at most one job per worker;
/// each worker filters its own shard from the shared batch (the hash
/// scan parallelizes, and each worker clones only the tuples it
/// keeps), so the submitting thread's serial work is just dispatch
/// and merge.
struct WorkerPool {
    inputs: Vec<Sender<PoolMsg>>,
    joins: Vec<JoinHandle<()>>,
    queue_depth: usize,
    force_reference: bool,
    /// Registered queries, replayed onto respawned workers so a
    /// replacement carries the same query set (including any runtime
    /// `InSet` rewrites) as the worker it replaces. `BTreeMap` so the
    /// replay order is deterministic.
    registered: BTreeMap<QueryId, Query>,
    /// Shards that failed a job with a panic since the last
    /// [`Self::respawn_dead`]; their threads may be dead (injected
    /// fail-stop crashes are) and must be replaced before reuse.
    dead: Vec<usize>,
}

impl WorkerPool {
    fn new(workers: usize, queue_depth: usize, force_reference: bool) -> Self {
        let mut inputs = Vec::with_capacity(workers);
        let mut joins = Vec::with_capacity(workers);
        for index in 0..workers {
            let (tx, rx) = bounded::<PoolMsg>(queue_depth.max(1));
            joins.push(spawn_shard_worker(index, workers, rx, force_reference));
            inputs.push(tx);
        }
        WorkerPool {
            inputs,
            joins,
            queue_depth,
            force_reference,
            registered: BTreeMap::new(),
            dead: Vec::new(),
        }
    }

    fn broadcast_register(&mut self, query: &Query) {
        self.registered.insert(query.id, query.clone());
        for tx in &self.inputs {
            tx.send(PoolMsg::Register(Box::new(query.clone())))
                .expect("stream shard worker gone");
        }
    }

    fn broadcast_deregister(&mut self, id: QueryId) {
        self.registered.remove(&id);
        for tx in &self.inputs {
            tx.send(PoolMsg::Deregister(id))
                .expect("stream shard worker gone");
        }
    }

    /// Replace every shard that failed a job since the last call with
    /// a fresh worker carrying the same registrations. Returns the
    /// respawned shard indices. The old thread is joined (a fail-stop
    /// crash has already exited; a contained panic's thread exits once
    /// its input channel is replaced and dropped).
    fn respawn_dead(&mut self) -> Vec<usize> {
        let mut shards: Vec<usize> = std::mem::take(&mut self.dead);
        shards.sort_unstable();
        shards.dedup();
        let workers = self.inputs.len();
        for &index in &shards {
            let (tx, rx) = bounded::<PoolMsg>(self.queue_depth.max(1));
            let join = spawn_shard_worker(index, workers, rx, self.force_reference);
            let old_tx = std::mem::replace(&mut self.inputs[index], tx);
            drop(old_tx);
            let old_join = std::mem::replace(&mut self.joins[index], join);
            let _ = old_join.join();
            for q in self.registered.values() {
                self.inputs[index]
                    .send(PoolMsg::Register(Box::new(q.clone())))
                    .expect("respawned stream shard worker gone");
            }
        }
        shards
    }

    /// Fan one window out and union the shard results. A query whose
    /// plan routes everything to shard 0 ([`PartitionSpec::Single`])
    /// only occupies worker 0; all other plans occupy every worker.
    fn submit_sharded(
        &mut self,
        query: QueryId,
        batch: Arc<WindowBatch>,
        parallel: bool,
        obs: &EngineObs,
        fault: WorkerVerdict,
    ) -> Result<JobResult, StreamError> {
        let fan_out = if parallel { self.inputs.len() } else { 1 };
        let window = obs.windows.get();
        let mut pending: Vec<Receiver<Result<JobResult, StreamError>>> =
            Vec::with_capacity(fan_out);
        {
            let _dispatch = obs.handle.stage(Stage::ShardDispatch, window);
            for (shard, tx) in self.inputs.iter().take(fan_out).enumerate() {
                let (reply_tx, reply_rx) = bounded(1);
                tx.send(PoolMsg::Job {
                    query,
                    batch: Arc::clone(&batch),
                    reply: reply_tx,
                    // An injected fault lands on shard 0 — the one
                    // shard every partition plan occupies — so the
                    // verdict is independent of fan-out.
                    fault: if shard == 0 {
                        fault
                    } else {
                        WorkerVerdict::Run
                    },
                })
                .expect("stream shard worker gone");
                pending.push(reply_rx);
            }
        }
        obs.handle.event(EventKind::ShardDispatch {
            job: query.0,
            shards: fan_out as u64,
        });
        obs.queue_depth
            .set(self.inputs.iter().map(|tx| tx.len() as u64).sum());
        // Collect every reply (keeping the pool drained even on
        // failure); the lowest shard's error wins deterministically.
        let mut results = Vec::with_capacity(pending.len());
        let mut first_err: Option<StreamError> = None;
        {
            let _execute = obs.handle.stage(Stage::WorkerExecute, window);
            for (shard, rx) in pending.into_iter().enumerate() {
                match rx.recv().expect("stream shard worker gone") {
                    Ok(r) => {
                        obs.shard_tuples[shard].add(r.tuples_in as u64);
                        results.push(r);
                    }
                    Err(e) => {
                        if matches!(e, StreamError::Panic(_)) {
                            obs.panics.inc();
                            if obs.handle.is_enabled() {
                                obs.handle.event(EventKind::WorkerPanic {
                                    job: query.0,
                                    message: e.to_string(),
                                });
                            }
                            // The worker may be gone (fail-stop
                            // crashes are); queue it for respawn.
                            self.dead.push(shard);
                        }
                        if first_err.is_none() {
                            first_err = Some(e);
                        }
                    }
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None if !obs.handle.is_enabled() => Ok(shard::merge_results(results)),
            None => {
                let merge_started = std::time::Instant::now();
                let merged = {
                    let _merge = obs.handle.stage(Stage::Merge, window);
                    shard::merge_results(results)
                };
                let merge_ns = merge_started.elapsed().as_nanos() as u64;
                obs.merge_ns.observe(merge_ns);
                obs.handle.event(EventKind::ShardMerge {
                    job: query.0,
                    wall_ns: merge_ns,
                });
                Ok(merged)
            }
        }
    }

    fn shutdown(self) {
        drop(self.inputs);
        for join in self.joins {
            // A worker that panicked outside catch_unwind (channel
            // machinery) has nothing left to drain; ignore it.
            let _ = join.join();
        }
    }
}

enum Backend {
    /// `workers <= 1`: run inline on the caller's thread, zero
    /// overhead over [`MicroBatchEngine`].
    Inline(MicroBatchEngine),
    Pool(WorkerPool),
}

/// Pre-resolved engine metric handles: registry lookups happen once at
/// construction, the submit path pays atomic adds only.
struct EngineObs {
    handle: ObsHandle,
    tuples_in: Counter,
    results_out: Counter,
    windows: Counter,
    panics: Counter,
    respawns: Counter,
    queue_depth: Gauge,
    merge_ns: Histogram,
    /// Intake per shard (`shard=i` label); inline backends count
    /// everything on shard 0.
    shard_tuples: Vec<Counter>,
}

impl EngineObs {
    fn new(handle: ObsHandle, workers: usize) -> Self {
        let shard_tuples = (0..workers)
            .map(|i| {
                handle.counter(
                    "sonata_engine_shard_tuples_total",
                    &[("shard", &i.to_string())],
                )
            })
            .collect();
        EngineObs {
            tuples_in: handle.counter("sonata_engine_tuples_total", &[]),
            results_out: handle.counter("sonata_engine_results_total", &[]),
            windows: handle.counter("sonata_engine_windows_total", &[]),
            panics: handle.counter("sonata_engine_worker_panics_total", &[]),
            respawns: handle.counter("sonata_engine_worker_respawns_total", &[]),
            queue_depth: handle.gauge("sonata_engine_queue_depth", &[]),
            merge_ns: handle.histogram("sonata_engine_merge_ns", &[]),
            shard_tuples,
            handle,
        }
    }

    /// Account one completed logical window.
    fn account(&self, result: &JobResult) {
        self.tuples_in.add(result.tuples_in as u64);
        self.results_out.add(result.output.len() as u64);
        self.windows.inc();
    }
}

/// A drop-in replacement for [`MicroBatchEngine`] that executes each
/// window across `workers` shards (when the query's partition
/// analysis allows) and unions the results. Same registration,
/// submission, and counter semantics as the single-threaded engine.
pub struct ShardedEngine {
    backend: Backend,
    /// Per-query partition plan, recomputed on every (re-)register so
    /// runtime query rewrites (e.g. dynamic `InSet` filters) stay in
    /// sync.
    plans: HashMap<QueryId, PartitionSpec>,
    counters: EngineCounters,
    workers: usize,
    obs: EngineObs,
    faults: FaultInjector,
}

impl ShardedEngine {
    /// An engine running windows across `workers` shards. `workers`
    /// of 0 or 1 selects the inline single-threaded backend.
    pub fn new(workers: usize) -> Self {
        Self::with_obs(workers, &ObsHandle::disabled())
    }

    /// [`Self::new`] with an observability handle: registers total and
    /// per-shard tuple counters, the queue-depth gauge, the merge-time
    /// histogram, and the worker-panic counter against it.
    pub fn with_obs(workers: usize, obs: &ObsHandle) -> Self {
        Self::with_obs_and_faults(workers, obs, &FaultInjector::disabled())
    }

    /// [`Self::with_obs`] with a fault injector: every submit attempt
    /// asks it for a verdict, so a `Crash` kills the executing worker
    /// (the submit fails with [`StreamError::Panic`] and the worker is
    /// queued for [`Self::recover_workers`]) and a `Stall` delays the
    /// execution. Both backends consult the injector identically —
    /// one verdict per attempt — so fault decisions (and therefore
    /// degraded-window markers) do not depend on the worker count.
    pub fn with_obs_and_faults(workers: usize, obs: &ObsHandle, faults: &FaultInjector) -> Self {
        Self::with_config(workers, obs, faults, false)
    }

    /// [`Self::with_obs_and_faults`] with the `force_reference_path`
    /// debug knob: when set, every shard engine executes windows on
    /// the tree-walking reference interpreter instead of the compiled
    /// fast path (respawned workers inherit the setting).
    pub fn with_config(
        workers: usize,
        obs: &ObsHandle,
        faults: &FaultInjector,
        force_reference: bool,
    ) -> Self {
        let workers = workers.max(1);
        let backend = if workers == 1 {
            let mut engine = MicroBatchEngine::new();
            engine.set_force_reference(force_reference);
            Backend::Inline(engine)
        } else {
            Backend::Pool(WorkerPool::new(workers, 4, force_reference))
        };
        ShardedEngine {
            backend,
            plans: HashMap::new(),
            counters: EngineCounters::default(),
            workers,
            obs: EngineObs::new(obs.clone(), workers),
            faults: faults.clone(),
        }
    }

    /// Number of shards windows spread over.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The partition plan computed for a registered query.
    pub fn plan(&self, id: QueryId) -> Option<&PartitionSpec> {
        self.plans.get(&id)
    }

    /// Register (or replace) a query on every shard. The partition
    /// analysis and each shard engine's pipeline binding are timed
    /// under the `plan_bind` stage.
    pub fn register(&mut self, query: Query) {
        let _t = self.obs.handle.stage(Stage::PlanBind, 0);
        self.plans.insert(query.id, shard::partition_spec(&query));
        match &mut self.backend {
            Backend::Inline(engine) => engine.register(query),
            Backend::Pool(pool) => pool.broadcast_register(&query),
        }
    }

    /// Deregister a query from every shard.
    pub fn deregister(&mut self, id: QueryId) -> bool {
        let known = self.plans.remove(&id).is_some();
        match &mut self.backend {
            Backend::Inline(engine) => {
                engine.deregister(id);
            }
            Backend::Pool(pool) => {
                if known {
                    pool.broadcast_deregister(id);
                }
            }
        }
        known
    }

    /// Registered query ids.
    pub fn queries(&self) -> Vec<QueryId> {
        let mut q: Vec<QueryId> = self.plans.keys().copied().collect();
        q.sort();
        q
    }

    /// Roll the fault verdict for one submit attempt, applying an
    /// inline-backend `Crash`/`Stall` on the spot. Returns `Err` when
    /// the attempt must fail (inline injected crash).
    fn inline_fault_gate(&self, id: QueryId) -> Result<WorkerVerdict, StreamError> {
        if !self.faults.is_enabled() {
            return Ok(WorkerVerdict::Run);
        }
        let fault = self.faults.worker_verdict(id.0);
        if matches!(self.backend, Backend::Pool(_)) {
            // The pool carries the verdict to a worker thread.
            return Ok(fault);
        }
        match fault {
            WorkerVerdict::Crash => {
                // The inline backend has no thread to kill; the
                // attempt fails with the same error surface the pool
                // produces, so runtime recovery (and the resulting
                // report) is identical across backends.
                self.obs.panics.inc();
                if self.obs.handle.is_enabled() {
                    self.obs.handle.event(EventKind::WorkerPanic {
                        job: id.0,
                        message: INJECTED_CRASH_MSG.into(),
                    });
                }
                Err(StreamError::Panic(INJECTED_CRASH_MSG.into()))
            }
            WorkerVerdict::Stall { ms } => {
                std::thread::sleep(std::time::Duration::from_millis(ms));
                Ok(WorkerVerdict::Run)
            }
            WorkerVerdict::Run => Ok(WorkerVerdict::Run),
        }
    }

    /// Execute one window for one query across the shards.
    pub fn submit(&mut self, id: QueryId, batch: &WindowBatch) -> Result<JobResult, StreamError> {
        let fault = self.inline_fault_gate(id)?;
        match &mut self.backend {
            Backend::Inline(engine) => {
                let result = engine.submit(id, batch)?;
                self.obs.account(&result);
                self.obs.shard_tuples[0].add(result.tuples_in as u64);
                Ok(result)
            }
            Backend::Pool(_) => self.submit_shared(id, Arc::new(batch.clone()), fault),
        }
    }

    /// Execute one window, taking ownership of the batch — the pool
    /// backend shares it with the workers without the extra clone
    /// [`Self::submit`] pays for a borrowed batch.
    pub fn submit_owned(
        &mut self,
        id: QueryId,
        batch: WindowBatch,
    ) -> Result<JobResult, StreamError> {
        let fault = self.inline_fault_gate(id)?;
        match &mut self.backend {
            Backend::Inline(engine) => {
                let result = engine.submit_owned(id, batch)?;
                self.obs.account(&result);
                self.obs.shard_tuples[0].add(result.tuples_in as u64);
                Ok(result)
            }
            Backend::Pool(_) => self.submit_shared(id, Arc::new(batch), fault),
        }
    }

    fn submit_shared(
        &mut self,
        id: QueryId,
        batch: Arc<WindowBatch>,
        fault: WorkerVerdict,
    ) -> Result<JobResult, StreamError> {
        let Backend::Pool(pool) = &mut self.backend else {
            unreachable!("submit_shared is only called on the pool backend");
        };
        let spec = self.plans.get(&id).ok_or(StreamError::UnknownQuery(id))?;
        let result = pool.submit_sharded(id, batch, spec.is_parallel(), &self.obs, fault)?;
        self.counters.tuples_in += result.tuples_in as u64;
        self.counters.results_out += result.output.len() as u64;
        self.counters.windows += 1;
        *self.counters.per_query.entry(id).or_default() += result.tuples_in as u64;
        self.obs.account(&result);
        Ok(result)
    }

    /// Respawn any pool workers that failed a job since the last call,
    /// replaying every registration (including runtime query rewrites)
    /// onto the replacements. Returns the number respawned; the inline
    /// backend executes on the caller's thread and has nothing to
    /// respawn. Must be called after a [`StreamError::Panic`] before
    /// the pool is used again — an injected crash is fail-stop, so the
    /// dead worker's channel would otherwise wedge the next dispatch.
    pub fn recover_workers(&mut self) -> u64 {
        match &mut self.backend {
            Backend::Inline(_) => 0,
            Backend::Pool(pool) => {
                let shards = pool.respawn_dead();
                let n = shards.len() as u64;
                if n > 0 {
                    self.obs.respawns.add(n);
                    if self.obs.handle.is_enabled() {
                        for s in shards {
                            self.obs
                                .handle
                                .event(EventKind::WorkerRespawn { shard: s as u64 });
                        }
                    }
                }
                n
            }
        }
    }

    /// Cumulative counters for logical (pre-split) windows.
    pub fn counters(&self) -> &EngineCounters {
        match &self.backend {
            Backend::Inline(engine) => engine.counters(),
            Backend::Pool(_) => &self.counters,
        }
    }

    /// Shut the pool down (joining every worker) and return the final
    /// counters.
    pub fn finish(self) -> EngineCounters {
        match self.backend {
            Backend::Inline(engine) => engine.counters().clone(),
            Backend::Pool(pool) => {
                pool.shutdown();
                self.counters
            }
        }
    }
}

impl Default for ShardedEngine {
    fn default() -> Self {
        ShardedEngine::new(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sonata_packet::{PacketBuilder, TcpFlags};
    use sonata_query::catalog::{self, Thresholds};
    use sonata_query::Tuple;

    #[test]
    fn worker_processes_batches_in_order() {
        let q = catalog::newly_opened_tcp_conns(&Thresholds {
            new_tcp: 1,
            ..Thresholds::default()
        });
        let qid = q.id;
        let handle = spawn_worker(vec![q], 4);
        for w in 0..3u64 {
            let mut batch = WindowBatch::new();
            let pkts: Vec<_> = (0..(w + 2))
                .map(|i| {
                    PacketBuilder::tcp_raw(i as u32, 9, 0xaa, 80)
                        .flags(TcpFlags::SYN)
                        .build()
                })
                .collect();
            batch.push_left(0, pkts.iter().map(Tuple::from_packet));
            handle
                .input
                .send(WorkItem {
                    window: w,
                    query: qid,
                    batch,
                })
                .unwrap();
        }
        let mut windows = Vec::new();
        for _ in 0..3 {
            let out = handle.output.recv().unwrap();
            assert_eq!(out.query, qid);
            windows.push(out.window);
            let r = out.result.unwrap();
            // window w has w+2 SYNs: > 1 from w=0 on.
            assert_eq!(r.output.len(), 1);
        }
        assert_eq!(windows, vec![0, 1, 2]);
        let engine = handle.finish();
        assert_eq!(engine.counters().windows, 3);
        assert_eq!(engine.counters().tuples_in, 2 + 3 + 4);
    }

    fn syn_batch(n: u64) -> WindowBatch {
        let mut batch = WindowBatch::new();
        let pkts: Vec<_> = (0..n)
            .map(|i| {
                PacketBuilder::tcp_raw(i as u32, 9, 0xaa, 80)
                    .flags(TcpFlags::SYN)
                    .build()
            })
            .collect();
        batch.push_left(0, pkts.iter().map(Tuple::from_packet));
        batch
    }

    fn crash_injector(consecutive: u32) -> sonata_faults::FaultInjector {
        use sonata_faults::{FaultPlan, WorkerFaults};
        sonata_faults::FaultInjector::from_plan(&FaultPlan {
            seed: 5,
            worker: WorkerFaults {
                crash_per_mille: 1000,
                consecutive_crashes: consecutive,
                ..WorkerFaults::default()
            },
            ..FaultPlan::default()
        })
    }

    #[test]
    fn injected_crash_fails_the_attempt_and_respawn_recovers() {
        for workers in [1usize, 4] {
            let inj = crash_injector(1);
            let mut eng = ShardedEngine::with_obs_and_faults(workers, &ObsHandle::disabled(), &inj);
            let q = catalog::newly_opened_tcp_conns(&Thresholds {
                new_tcp: 1,
                ..Thresholds::default()
            });
            let qid = q.id;
            eng.register(q);
            inj.begin_window(0);
            let batch = syn_batch(3);
            let err = eng.submit(qid, &batch).unwrap_err();
            assert!(
                matches!(err, StreamError::Panic(ref m) if m == INJECTED_CRASH_MSG),
                "workers={workers}: {err:?}"
            );
            // Inline backends have nothing to respawn; the pool must
            // replace the killed shard before reuse.
            let respawned = eng.recover_workers();
            assert_eq!(respawned, if workers == 1 { 0 } else { 1 });
            // The retry attempt survives (consecutive_crashes = 1)
            // and produces the normal result.
            let r = eng.submit(qid, &batch).unwrap();
            assert_eq!(r.output.len(), 1, "workers={workers}");
            assert_eq!(r.tuples_in, 3);
        }
    }

    #[test]
    fn respawned_worker_carries_replayed_registrations() {
        let inj = crash_injector(1);
        let mut eng = ShardedEngine::with_obs_and_faults(3, &ObsHandle::disabled(), &inj);
        let q1 = catalog::newly_opened_tcp_conns(&Thresholds {
            new_tcp: 1,
            ..Thresholds::default()
        });
        let q2 = catalog::superspreader(&Thresholds::default());
        let (id1, id2) = (q1.id, q2.id);
        eng.register(q1);
        eng.register(q2);
        inj.begin_window(0);
        let batch = syn_batch(4);
        assert!(eng.submit(id1, &batch).is_err());
        eng.recover_workers();
        // Both queries must still resolve on the replacement worker
        // (id2's own first attempt also crashes at 1000‰ — its retry
        // exercises the replayed registration).
        assert!(eng.submit(id1, &batch).is_ok());
        assert!(eng.submit(id2, &batch).is_err());
        eng.recover_workers();
        assert!(eng.submit(id2, &batch).is_ok());
    }

    #[test]
    fn injected_stall_delays_but_completes() {
        use sonata_faults::{FaultPlan, WorkerFaults};
        let inj = sonata_faults::FaultInjector::from_plan(&FaultPlan {
            seed: 5,
            worker: WorkerFaults {
                stall_per_mille: 1000,
                stall_ms: 1,
                ..WorkerFaults::default()
            },
            ..FaultPlan::default()
        });
        for workers in [1usize, 2] {
            let inj = inj.clone();
            let mut eng = ShardedEngine::with_obs_and_faults(workers, &ObsHandle::disabled(), &inj);
            let q = catalog::newly_opened_tcp_conns(&Thresholds {
                new_tcp: 1,
                ..Thresholds::default()
            });
            let qid = q.id;
            eng.register(q);
            inj.begin_window(0);
            let r = eng.submit(qid, &syn_batch(3)).unwrap();
            assert_eq!(r.output.len(), 1);
        }
    }

    #[test]
    fn worker_reports_errors_per_item() {
        let q = catalog::newly_opened_tcp_conns(&Thresholds::default());
        let qid = q.id;
        let handle = spawn_worker(vec![q], 2);
        let mut batch = WindowBatch::new();
        batch.push_left(99, vec![Tuple::new(vec![])]);
        handle
            .input
            .send(WorkItem {
                window: 0,
                query: qid,
                batch,
            })
            .unwrap();
        let out = handle.output.recv().unwrap();
        assert!(out.result.is_err());
        handle.finish();
    }
}
