//! A threaded engine worker: the emitter pushes window batches into a
//! crossbeam channel and collects results asynchronously, mirroring
//! the decoupling between Sonata's emitter and its Spark cluster.

use crate::engine::{JobResult, MicroBatchEngine, StreamError};
use crate::window::WindowBatch;
use crossbeam::channel::{bounded, Receiver, Sender};
use sonata_query::{Query, QueryId};
use std::thread::JoinHandle;

/// A window of work for the worker.
#[derive(Debug)]
pub struct WorkItem {
    /// Window index (echoed back in the result).
    pub window: u64,
    /// Target query.
    pub query: QueryId,
    /// The batch.
    pub batch: WindowBatch,
}

/// A completed window.
#[derive(Debug)]
pub struct WorkOutput {
    /// Window index.
    pub window: u64,
    /// Query.
    pub query: QueryId,
    /// Result or error.
    pub result: Result<JobResult, StreamError>,
}

/// Handle to a running worker thread.
pub struct WorkerHandle {
    /// Send window batches here; dropping it shuts the worker down.
    pub input: Sender<WorkItem>,
    /// Results arrive here, in submission order.
    pub output: Receiver<WorkOutput>,
    join: JoinHandle<MicroBatchEngine>,
}

impl WorkerHandle {
    /// Shut down (close the input) and recover the engine with its
    /// final counters.
    pub fn finish(self) -> MicroBatchEngine {
        drop(self.input);
        self.join.join().expect("stream worker panicked")
    }
}

/// Spawn an engine with the given queries on its own thread.
pub fn spawn_worker(queries: Vec<Query>, queue_depth: usize) -> WorkerHandle {
    let (in_tx, in_rx) = bounded::<WorkItem>(queue_depth.max(1));
    let (out_tx, out_rx) = bounded::<WorkOutput>(queue_depth.max(1));
    let join = std::thread::Builder::new()
        .name("sonata-stream-worker".into())
        .spawn(move || {
            let mut engine = MicroBatchEngine::new();
            for q in queries {
                engine.register(q);
            }
            while let Ok(item) = in_rx.recv() {
                let result = engine.submit(item.query, &item.batch);
                if out_tx
                    .send(WorkOutput {
                        window: item.window,
                        query: item.query,
                        result,
                    })
                    .is_err()
                {
                    break; // consumer gone
                }
            }
            engine
        })
        .expect("spawn stream worker");
    WorkerHandle {
        input: in_tx,
        output: out_rx,
        join,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sonata_packet::{PacketBuilder, TcpFlags};
    use sonata_query::catalog::{self, Thresholds};
    use sonata_query::Tuple;

    #[test]
    fn worker_processes_batches_in_order() {
        let q = catalog::newly_opened_tcp_conns(&Thresholds {
            new_tcp: 1,
            ..Thresholds::default()
        });
        let qid = q.id;
        let handle = spawn_worker(vec![q], 4);
        for w in 0..3u64 {
            let mut batch = WindowBatch::new();
            let pkts: Vec<_> = (0..(w + 2))
                .map(|i| {
                    PacketBuilder::tcp_raw(i as u32, 9, 0xaa, 80)
                        .flags(TcpFlags::SYN)
                        .build()
                })
                .collect();
            batch.push_left(0, pkts.iter().map(Tuple::from_packet));
            handle
                .input
                .send(WorkItem {
                    window: w,
                    query: qid,
                    batch,
                })
                .unwrap();
        }
        let mut windows = Vec::new();
        for _ in 0..3 {
            let out = handle.output.recv().unwrap();
            assert_eq!(out.query, qid);
            windows.push(out.window);
            let r = out.result.unwrap();
            // window w has w+2 SYNs: > 1 from w=0 on.
            assert_eq!(r.output.len(), 1);
        }
        assert_eq!(windows, vec![0, 1, 2]);
        let engine = handle.finish();
        assert_eq!(engine.counters().windows, 3);
        assert_eq!(engine.counters().tuples_in, 2 + 3 + 4);
    }

    #[test]
    fn worker_reports_errors_per_item() {
        let q = catalog::newly_opened_tcp_conns(&Thresholds::default());
        let qid = q.id;
        let handle = spawn_worker(vec![q], 2);
        let mut batch = WindowBatch::new();
        batch.push_left(99, vec![Tuple::new(vec![])]);
        handle
            .input
            .send(WorkItem {
                window: 0,
                query: qid,
                batch,
            })
            .unwrap();
        let out = handle.output.recv().unwrap();
        assert!(out.result.is_err());
        handle.finish();
    }
}
