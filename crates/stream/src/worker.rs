//! Threaded engine workers.
//!
//! [`spawn_worker`] runs one engine on its own thread behind crossbeam
//! channels — the emitter pushes window batches in and collects
//! results asynchronously, mirroring the decoupling between Sonata's
//! emitter and its Spark cluster.
//!
//! [`ShardedEngine`] scales that to N workers: each holds a full
//! [`MicroBatchEngine`] replica, every submitted window is
//! hash-partitioned by the query's group key ([`crate::shard`]) so all
//! per-key state stays shard-local, the shards execute concurrently,
//! and the shard results are unioned into the exact single-threaded
//! [`JobResult`]. Worker panics are contained per window and surface
//! as [`StreamError::Panic`] rather than hanging the pool.

use crate::engine::{EngineCounters, JobResult, MicroBatchEngine, StreamError};
use crate::shard::{self, PartitionSpec};
use crate::window::WindowBatch;
use crossbeam::channel::{bounded, Receiver, Sender};
use sonata_obs::{Counter, EventKind, Gauge, Histogram, ObsHandle, Stage};
use sonata_query::{Query, QueryId};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Render a panic payload for [`StreamError::Panic`].
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A window of work for the worker.
#[derive(Debug)]
pub struct WorkItem {
    /// Window index (echoed back in the result).
    pub window: u64,
    /// Target query.
    pub query: QueryId,
    /// The batch.
    pub batch: WindowBatch,
}

/// A completed window.
#[derive(Debug)]
pub struct WorkOutput {
    /// Window index.
    pub window: u64,
    /// Query.
    pub query: QueryId,
    /// Result or error.
    pub result: Result<JobResult, StreamError>,
}

/// Handle to a running worker thread.
pub struct WorkerHandle {
    /// Send window batches here; dropping it shuts the worker down.
    pub input: Sender<WorkItem>,
    /// Results arrive here, in submission order.
    pub output: Receiver<WorkOutput>,
    join: JoinHandle<MicroBatchEngine>,
}

impl WorkerHandle {
    /// Shut down (close the input) and recover the engine with its
    /// final counters.
    pub fn finish(self) -> MicroBatchEngine {
        drop(self.input);
        self.join.join().expect("stream worker panicked")
    }
}

/// Spawn an engine with the given queries on its own thread.
pub fn spawn_worker(queries: Vec<Query>, queue_depth: usize) -> WorkerHandle {
    let (in_tx, in_rx) = bounded::<WorkItem>(queue_depth.max(1));
    let (out_tx, out_rx) = bounded::<WorkOutput>(queue_depth.max(1));
    let join = std::thread::Builder::new()
        .name("sonata-stream-worker".into())
        .spawn(move || {
            let mut engine = MicroBatchEngine::new();
            for q in queries {
                engine.register(q);
            }
            while let Ok(item) = in_rx.recv() {
                let result =
                    catch_unwind(AssertUnwindSafe(|| engine.submit(item.query, &item.batch)))
                        .unwrap_or_else(|payload| Err(StreamError::Panic(panic_message(payload))));
                if out_tx
                    .send(WorkOutput {
                        window: item.window,
                        query: item.query,
                        result,
                    })
                    .is_err()
                {
                    break; // consumer gone
                }
            }
            engine
        })
        .expect("spawn stream worker");
    WorkerHandle {
        input: in_tx,
        output: out_rx,
        join,
    }
}

/// Messages a pool worker understands.
enum PoolMsg {
    /// Install (or replace) a query on this worker's engine replica.
    Register(Box<Query>),
    /// Remove a query.
    Deregister(QueryId),
    /// Filter this worker's shard out of the shared window batch,
    /// execute it, and send the result back.
    Job {
        query: QueryId,
        batch: Arc<WindowBatch>,
        reply: Sender<Result<JobResult, StreamError>>,
    },
}

/// A fixed set of persistent worker threads, each owning a full
/// engine replica. One window fans out as at most one job per worker;
/// each worker filters its own shard from the shared batch (the hash
/// scan parallelizes, and each worker clones only the tuples it
/// keeps), so the submitting thread's serial work is just dispatch
/// and merge.
struct WorkerPool {
    inputs: Vec<Sender<PoolMsg>>,
    joins: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    fn new(workers: usize, queue_depth: usize) -> Self {
        let mut inputs = Vec::with_capacity(workers);
        let mut joins = Vec::with_capacity(workers);
        for index in 0..workers {
            let (tx, rx) = bounded::<PoolMsg>(queue_depth.max(1));
            let join = std::thread::Builder::new()
                .name(format!("sonata-stream-shard-{index}"))
                .spawn(move || {
                    let mut engine = MicroBatchEngine::new();
                    // Each worker derives the partition plan from the
                    // registered query itself — `partition_spec` is
                    // pure, so all workers and the pool front-end
                    // agree on routing without shipping plans around.
                    let mut plans: HashMap<QueryId, PartitionSpec> = HashMap::new();
                    while let Ok(msg) = rx.recv() {
                        match msg {
                            PoolMsg::Register(q) => {
                                plans.insert(q.id, shard::partition_spec(&q));
                                engine.register(*q);
                            }
                            PoolMsg::Deregister(id) => {
                                plans.remove(&id);
                                engine.deregister(id);
                            }
                            PoolMsg::Job {
                                query,
                                batch,
                                reply,
                            } => {
                                let result = catch_unwind(AssertUnwindSafe(|| {
                                    let spec = plans
                                        .get(&query)
                                        .ok_or(StreamError::UnknownQuery(query))?;
                                    let mine = shard::shard_filter(spec, &batch, workers, index);
                                    engine.submit_owned(query, mine)
                                }))
                                .unwrap_or_else(|payload| {
                                    Err(StreamError::Panic(panic_message(payload)))
                                });
                                // A dropped reply receiver means the
                                // submitter gave up; keep serving.
                                let _ = reply.send(result);
                            }
                        }
                    }
                })
                .expect("spawn stream shard worker");
            inputs.push(tx);
            joins.push(join);
        }
        WorkerPool { inputs, joins }
    }

    fn broadcast_register(&self, query: &Query) {
        for tx in &self.inputs {
            tx.send(PoolMsg::Register(Box::new(query.clone())))
                .expect("stream shard worker gone");
        }
    }

    fn broadcast_deregister(&self, id: QueryId) {
        for tx in &self.inputs {
            tx.send(PoolMsg::Deregister(id))
                .expect("stream shard worker gone");
        }
    }

    /// Fan one window out and union the shard results. A query whose
    /// plan routes everything to shard 0 ([`PartitionSpec::Single`])
    /// only occupies worker 0; all other plans occupy every worker.
    fn submit_sharded(
        &self,
        query: QueryId,
        batch: Arc<WindowBatch>,
        parallel: bool,
        obs: &EngineObs,
    ) -> Result<JobResult, StreamError> {
        let fan_out = if parallel { self.inputs.len() } else { 1 };
        let window = obs.windows.get();
        let mut pending: Vec<Receiver<Result<JobResult, StreamError>>> =
            Vec::with_capacity(fan_out);
        {
            let _dispatch = obs.handle.stage(Stage::ShardDispatch, window);
            for tx in self.inputs.iter().take(fan_out) {
                let (reply_tx, reply_rx) = bounded(1);
                tx.send(PoolMsg::Job {
                    query,
                    batch: Arc::clone(&batch),
                    reply: reply_tx,
                })
                .expect("stream shard worker gone");
                pending.push(reply_rx);
            }
        }
        obs.handle.event(EventKind::ShardDispatch {
            job: query.0,
            shards: fan_out as u64,
        });
        obs.queue_depth
            .set(self.inputs.iter().map(|tx| tx.len() as u64).sum());
        // Collect every reply (keeping the pool drained even on
        // failure); the lowest shard's error wins deterministically.
        let mut results = Vec::with_capacity(pending.len());
        let mut first_err: Option<StreamError> = None;
        {
            let _execute = obs.handle.stage(Stage::WorkerExecute, window);
            for (shard, rx) in pending.into_iter().enumerate() {
                match rx.recv().expect("stream shard worker gone") {
                    Ok(r) => {
                        obs.shard_tuples[shard].add(r.tuples_in as u64);
                        results.push(r);
                    }
                    Err(e) => {
                        if matches!(e, StreamError::Panic(_)) {
                            obs.panics.inc();
                            if obs.handle.is_enabled() {
                                obs.handle.event(EventKind::WorkerPanic {
                                    job: query.0,
                                    message: e.to_string(),
                                });
                            }
                        }
                        if first_err.is_none() {
                            first_err = Some(e);
                        }
                    }
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None if !obs.handle.is_enabled() => Ok(shard::merge_results(results)),
            None => {
                let merge_started = std::time::Instant::now();
                let merged = {
                    let _merge = obs.handle.stage(Stage::Merge, window);
                    shard::merge_results(results)
                };
                let merge_ns = merge_started.elapsed().as_nanos() as u64;
                obs.merge_ns.observe(merge_ns);
                obs.handle.event(EventKind::ShardMerge {
                    job: query.0,
                    wall_ns: merge_ns,
                });
                Ok(merged)
            }
        }
    }

    fn shutdown(self) {
        drop(self.inputs);
        for join in self.joins {
            // A worker that panicked outside catch_unwind (channel
            // machinery) has nothing left to drain; ignore it.
            let _ = join.join();
        }
    }
}

enum Backend {
    /// `workers <= 1`: run inline on the caller's thread, zero
    /// overhead over [`MicroBatchEngine`].
    Inline(MicroBatchEngine),
    Pool(WorkerPool),
}

/// Pre-resolved engine metric handles: registry lookups happen once at
/// construction, the submit path pays atomic adds only.
struct EngineObs {
    handle: ObsHandle,
    tuples_in: Counter,
    results_out: Counter,
    windows: Counter,
    panics: Counter,
    queue_depth: Gauge,
    merge_ns: Histogram,
    /// Intake per shard (`shard=i` label); inline backends count
    /// everything on shard 0.
    shard_tuples: Vec<Counter>,
}

impl EngineObs {
    fn new(handle: ObsHandle, workers: usize) -> Self {
        let shard_tuples = (0..workers)
            .map(|i| {
                handle.counter(
                    "sonata_engine_shard_tuples_total",
                    &[("shard", &i.to_string())],
                )
            })
            .collect();
        EngineObs {
            tuples_in: handle.counter("sonata_engine_tuples_total", &[]),
            results_out: handle.counter("sonata_engine_results_total", &[]),
            windows: handle.counter("sonata_engine_windows_total", &[]),
            panics: handle.counter("sonata_engine_worker_panics_total", &[]),
            queue_depth: handle.gauge("sonata_engine_queue_depth", &[]),
            merge_ns: handle.histogram("sonata_engine_merge_ns", &[]),
            shard_tuples,
            handle,
        }
    }

    /// Account one completed logical window.
    fn account(&self, result: &JobResult) {
        self.tuples_in.add(result.tuples_in as u64);
        self.results_out.add(result.output.len() as u64);
        self.windows.inc();
    }
}

/// A drop-in replacement for [`MicroBatchEngine`] that executes each
/// window across `workers` shards (when the query's partition
/// analysis allows) and unions the results. Same registration,
/// submission, and counter semantics as the single-threaded engine.
pub struct ShardedEngine {
    backend: Backend,
    /// Per-query partition plan, recomputed on every (re-)register so
    /// runtime query rewrites (e.g. dynamic `InSet` filters) stay in
    /// sync.
    plans: HashMap<QueryId, PartitionSpec>,
    counters: EngineCounters,
    workers: usize,
    obs: EngineObs,
}

impl ShardedEngine {
    /// An engine running windows across `workers` shards. `workers`
    /// of 0 or 1 selects the inline single-threaded backend.
    pub fn new(workers: usize) -> Self {
        Self::with_obs(workers, &ObsHandle::disabled())
    }

    /// [`Self::new`] with an observability handle: registers total and
    /// per-shard tuple counters, the queue-depth gauge, the merge-time
    /// histogram, and the worker-panic counter against it.
    pub fn with_obs(workers: usize, obs: &ObsHandle) -> Self {
        let workers = workers.max(1);
        let backend = if workers == 1 {
            Backend::Inline(MicroBatchEngine::new())
        } else {
            Backend::Pool(WorkerPool::new(workers, 4))
        };
        ShardedEngine {
            backend,
            plans: HashMap::new(),
            counters: EngineCounters::default(),
            workers,
            obs: EngineObs::new(obs.clone(), workers),
        }
    }

    /// Number of shards windows spread over.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The partition plan computed for a registered query.
    pub fn plan(&self, id: QueryId) -> Option<&PartitionSpec> {
        self.plans.get(&id)
    }

    /// Register (or replace) a query on every shard.
    pub fn register(&mut self, query: Query) {
        self.plans.insert(query.id, shard::partition_spec(&query));
        match &mut self.backend {
            Backend::Inline(engine) => engine.register(query),
            Backend::Pool(pool) => pool.broadcast_register(&query),
        }
    }

    /// Deregister a query from every shard.
    pub fn deregister(&mut self, id: QueryId) -> bool {
        let known = self.plans.remove(&id).is_some();
        match &mut self.backend {
            Backend::Inline(engine) => {
                engine.deregister(id);
            }
            Backend::Pool(pool) => {
                if known {
                    pool.broadcast_deregister(id);
                }
            }
        }
        known
    }

    /// Registered query ids.
    pub fn queries(&self) -> Vec<QueryId> {
        let mut q: Vec<QueryId> = self.plans.keys().copied().collect();
        q.sort();
        q
    }

    /// Execute one window for one query across the shards.
    pub fn submit(&mut self, id: QueryId, batch: &WindowBatch) -> Result<JobResult, StreamError> {
        match &mut self.backend {
            Backend::Inline(engine) => {
                let result = engine.submit(id, batch)?;
                self.obs.account(&result);
                self.obs.shard_tuples[0].add(result.tuples_in as u64);
                Ok(result)
            }
            Backend::Pool(_) => self.submit_shared(id, Arc::new(batch.clone())),
        }
    }

    /// Execute one window, taking ownership of the batch — the pool
    /// backend shares it with the workers without the extra clone
    /// [`Self::submit`] pays for a borrowed batch.
    pub fn submit_owned(
        &mut self,
        id: QueryId,
        batch: WindowBatch,
    ) -> Result<JobResult, StreamError> {
        match &mut self.backend {
            Backend::Inline(engine) => {
                let result = engine.submit_owned(id, batch)?;
                self.obs.account(&result);
                self.obs.shard_tuples[0].add(result.tuples_in as u64);
                Ok(result)
            }
            Backend::Pool(_) => self.submit_shared(id, Arc::new(batch)),
        }
    }

    fn submit_shared(
        &mut self,
        id: QueryId,
        batch: Arc<WindowBatch>,
    ) -> Result<JobResult, StreamError> {
        let Backend::Pool(pool) = &self.backend else {
            unreachable!("submit_shared is only called on the pool backend");
        };
        let spec = self.plans.get(&id).ok_or(StreamError::UnknownQuery(id))?;
        let result = pool.submit_sharded(id, batch, spec.is_parallel(), &self.obs)?;
        self.counters.tuples_in += result.tuples_in as u64;
        self.counters.results_out += result.output.len() as u64;
        self.counters.windows += 1;
        *self.counters.per_query.entry(id).or_default() += result.tuples_in as u64;
        self.obs.account(&result);
        Ok(result)
    }

    /// Cumulative counters for logical (pre-split) windows.
    pub fn counters(&self) -> &EngineCounters {
        match &self.backend {
            Backend::Inline(engine) => engine.counters(),
            Backend::Pool(_) => &self.counters,
        }
    }

    /// Shut the pool down (joining every worker) and return the final
    /// counters.
    pub fn finish(self) -> EngineCounters {
        match self.backend {
            Backend::Inline(engine) => engine.counters().clone(),
            Backend::Pool(pool) => {
                pool.shutdown();
                self.counters
            }
        }
    }
}

impl Default for ShardedEngine {
    fn default() -> Self {
        ShardedEngine::new(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sonata_packet::{PacketBuilder, TcpFlags};
    use sonata_query::catalog::{self, Thresholds};
    use sonata_query::Tuple;

    #[test]
    fn worker_processes_batches_in_order() {
        let q = catalog::newly_opened_tcp_conns(&Thresholds {
            new_tcp: 1,
            ..Thresholds::default()
        });
        let qid = q.id;
        let handle = spawn_worker(vec![q], 4);
        for w in 0..3u64 {
            let mut batch = WindowBatch::new();
            let pkts: Vec<_> = (0..(w + 2))
                .map(|i| {
                    PacketBuilder::tcp_raw(i as u32, 9, 0xaa, 80)
                        .flags(TcpFlags::SYN)
                        .build()
                })
                .collect();
            batch.push_left(0, pkts.iter().map(Tuple::from_packet));
            handle
                .input
                .send(WorkItem {
                    window: w,
                    query: qid,
                    batch,
                })
                .unwrap();
        }
        let mut windows = Vec::new();
        for _ in 0..3 {
            let out = handle.output.recv().unwrap();
            assert_eq!(out.query, qid);
            windows.push(out.window);
            let r = out.result.unwrap();
            // window w has w+2 SYNs: > 1 from w=0 on.
            assert_eq!(r.output.len(), 1);
        }
        assert_eq!(windows, vec![0, 1, 2]);
        let engine = handle.finish();
        assert_eq!(engine.counters().windows, 3);
        assert_eq!(engine.counters().tuples_in, 2 + 3 + 4);
    }

    #[test]
    fn worker_reports_errors_per_item() {
        let q = catalog::newly_opened_tcp_conns(&Thresholds::default());
        let qid = q.id;
        let handle = spawn_worker(vec![q], 2);
        let mut batch = WindowBatch::new();
        batch.push_left(99, vec![Tuple::new(vec![])]);
        handle
            .input
            .send(WorkItem {
                window: 0,
                query: qid,
                batch,
            })
            .unwrap();
        let out = handle.output.recv().unwrap();
        assert!(out.result.is_err());
        handle.finish();
    }
}
