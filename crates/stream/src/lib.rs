//! # sonata-stream
//!
//! The stream-processor substrate: a micro-batch (discretized-stream)
//! dataflow engine in the style of Spark Streaming, executing the
//! *residual* part of each partitioned Sonata query over the tuples
//! the switch mirrors up.
//!
//! The paper's headline metric — the number of tuples the stream
//! processor must handle — depends only on the partitioning/refinement
//! plan and the traffic, not on Spark internals, so this engine
//! focuses on faithful operator semantics and careful tuple
//! accounting:
//!
//! * tuples can **enter a pipeline at any operator index** — the
//!   switch's per-packet reports resume after the last offloaded
//!   operator, window dumps resume after the offloaded `reduce`, and
//!   collision shunts enter *at* the stateful operator so the engine
//!   redoes the aggregation for shunted keys (Section 3.1.3);
//! * joins run here (PISA switches cannot join, Section 3.1.2),
//!   combining the two branches of a query within each window;
//! * every tuple entering the engine increments the per-query and
//!   global `tuples_in` counters used by all the Figure 7/8
//!   experiments.
//!
//! [`engine::execute_window`] is the pure per-window evaluator;
//! [`engine::MicroBatchEngine`] adds multi-query bookkeeping;
//! [`worker`] runs engines on their own threads behind crossbeam
//! channels, mirroring a streaming cluster's asynchronous intake; and
//! [`shard`] partitions window batches by each query's group keys so
//! a [`worker::ShardedEngine`] can fan one window out over N workers
//! and union the results without changing any observable output.

pub mod engine;
pub mod merge;
pub mod shard;
pub mod testsupport;
pub mod window;
pub mod worker;

pub use engine::{
    execute_window, execute_window_owned, run_entries, run_entries_owned, EngineCounters,
    JobResult, MicroBatchEngine, StreamError,
};
pub use merge::{canonicalize_batch, canonicalize_batches, merge_window_batches, SwitchPartial};
pub use shard::{merge_results, partition_spec, shard_filter, split_batch, PartitionSpec};
pub use window::{codegen_stream_plan, stream_loc, WindowBatch};
pub use worker::{spawn_worker, ShardedEngine, WorkerHandle};
