//! Property tests for the trace substrate: merge/window laws, file
//! round-trips, and injector determinism — the guarantees the
//! experiment harnesses lean on for reproducibility.

use proptest::prelude::*;
use sonata_packet::{Packet, PacketBuilder};
use sonata_traffic::{Attack, BackgroundConfig, Trace};

fn arb_attack() -> impl Strategy<Value = Attack> {
    prop_oneof![
        (1usize..200, 1usize..50, 0u64..2000, 1u64..2000).prop_map(
            |(packets, sources, start, dur)| Attack::SynFlood {
                victim: 0x63070019,
                port: 80,
                packets,
                sources,
                ack_fraction: 0.05,
                fin_fraction: 0.05,
                start_ms: start,
                duration_ms: dur,
            }
        ),
        (1u16..100, 0u64..2000, 1u64..2000).prop_map(|(ports, start, dur)| Attack::PortScan {
            scanner: 0xc0a84401,
            targets: vec![0x63070519],
            ports,
            start_ms: start,
            duration_ms: dur,
        }),
        (1usize..100, 0u64..2000, 1u64..2000).prop_map(|(queries, start, dur)| {
            Attack::DnsTunneling {
                client: 0xc6481f06,
                resolver: 0x08080404,
                queries,
                domain: "t.example".to_string(),
                start_ms: start,
                duration_ms: dur,
            }
        }),
        (1u32..100, 1usize..200, 0u64..2000, 1u64..2000).prop_map(
            |(ips, responses, start, dur)| Attack::FastFlux {
                domain: "f.example".to_string(),
                resolver: 0x08080404,
                clients: vec![1, 2, 3],
                resolved_ips: ips,
                responses,
                start_ms: start,
                duration_ms: dur,
            }
        ),
    ]
}

fn arb_ts_packets() -> impl Strategy<Value = Vec<Packet>> {
    proptest::collection::vec((any::<u32>(), any::<u32>(), 0u64..5_000_000_000u64), 0..120)
        .prop_map(|specs| {
            specs
                .into_iter()
                .map(|(s, d, ts)| PacketBuilder::tcp_raw(s, 1, d, 80).ts_nanos(ts).build())
                .collect()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn windows_partition_any_trace(pkts in arb_ts_packets(), window_ms in 1u64..5_000) {
        let t = Trace::new(pkts);
        let total: usize = t.windows(window_ms).map(|(_, p)| p.len()).sum();
        prop_assert_eq!(total, t.len());
        let mut prev = None;
        for (w, slice) in t.windows(window_ms) {
            prop_assert!(!slice.is_empty(), "windows are non-empty by construction");
            if let Some(p) = prev {
                prop_assert!(w > p, "window indices strictly increase");
            }
            prev = Some(w);
            for pkt in slice {
                prop_assert_eq!(pkt.ts_nanos / (window_ms * 1_000_000), w);
            }
        }
    }

    #[test]
    fn merge_equals_concat_sort(a in arb_ts_packets(), b in arb_ts_packets()) {
        let mut merged = Trace::new(a.clone());
        merged.merge(Trace::new(b.clone()).packets().to_vec());
        let mut reference = a;
        reference.extend(b);
        let reference = Trace::new(reference);
        prop_assert_eq!(merged.len(), reference.len());
        // Same multiset of (ts, src, dst) and globally sorted.
        let key = |p: &Packet| (p.ts_nanos, p.ipv4.src, p.ipv4.dst);
        let mut m: Vec<_> = merged.packets().iter().map(key).collect();
        let mut r: Vec<_> = reference.packets().iter().map(key).collect();
        prop_assert!(m.windows(2).all(|w| w[0].0 <= w[1].0));
        m.sort_unstable();
        r.sort_unstable();
        prop_assert_eq!(m, r);
    }

    #[test]
    fn attack_generation_is_deterministic_and_sorted(attack in arb_attack(), seed in 0u64..50) {
        let a = attack.generate(seed);
        let b = attack.generate(seed);
        prop_assert_eq!(&a, &b);
        prop_assert!(a.windows(2).all(|w| w[0].ts_nanos <= w[1].ts_nanos));
        // Every packet decodes from its own wire bytes.
        for p in a.iter().take(20) {
            let bytes = p.encode();
            prop_assert!(Packet::decode(&bytes).is_ok());
        }
    }

    #[test]
    fn trace_file_roundtrip_preserves_everything(pkts in arb_ts_packets()) {
        let t = Trace::new(pkts);
        let mut buf = Vec::new();
        t.write_to(&mut buf).unwrap();
        let back = Trace::read_from(&mut &buf[..]).unwrap();
        prop_assert_eq!(back.len(), t.len());
        for (x, y) in t.packets().iter().zip(back.packets()) {
            prop_assert_eq!(x.ts_nanos, y.ts_nanos);
            prop_assert_eq!(x.ipv4.src, y.ipv4.src);
            prop_assert_eq!(x.ipv4.dst, y.ipv4.dst);
        }
        // Truncations never panic.
        for cut in [0, buf.len() / 3, buf.len().saturating_sub(1)] {
            let _ = Trace::read_from(&mut &buf[..cut]);
        }
    }

    #[test]
    fn background_scales_with_budget(budget in 1_000usize..8_000, seed in 0u64..20) {
        let cfg = BackgroundConfig {
            packets: budget,
            ..BackgroundConfig::small()
        };
        let t = Trace::background(&cfg, seed);
        prop_assert!(t.len() >= budget);
        prop_assert!(t.len() < budget + 700, "overshoot {}", t.len() - budget);
        let stats = t.stats();
        prop_assert_eq!(stats.packets, t.len());
        prop_assert_eq!(stats.tcp + stats.udp + stats.icmp + stats.other, stats.packets);
    }
}
