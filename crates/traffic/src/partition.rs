//! Deterministic trace partitioning for a multi-switch fabric.
//!
//! A fabric replays one capture across N switches; for the merged
//! output to be comparable against a single-switch run of the same
//! capture, the split must be:
//!
//! * **deterministic** — the same trace always splits the same way,
//!   independent of process, thread, or run;
//! * **exhaustive** — every packet lands on exactly one switch;
//! * **flow-sticky** — all packets of a 5-tuple flow land on the same
//!   switch, mirroring how an ECMP-style fabric actually spreads
//!   traffic (and keeping per-flow state like join branches intact on
//!   one switch);
//! * **order-preserving** — each switch sees its packets in capture
//!   order, so per-switch windowing matches the unsplit trace's.
//!
//! The partitioner hashes the 5-tuple through a splitmix64 mixer and
//! buckets the hash by cumulative per-switch traffic shares, so a
//! topology can model skew (one big border switch, several small
//! leaf switches) while staying reproducible.

use crate::trace::Trace;
use sonata_packet::{Packet, Transport};

/// Deterministic, flow-sticky assignment of packets to `n` switches
/// with the given relative traffic shares.
#[derive(Debug, Clone)]
pub struct TracePartitioner {
    /// Cumulative share boundaries scaled to `u64::MAX`; switch `i`
    /// owns hashes in `(bounds[i-1], bounds[i]]`.
    bounds: Vec<u64>,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The flow hash a partitioner buckets: 5-tuple (src, dst, protocol,
/// ports) mixed through splitmix64. Exposed so tests can assert
/// flow-stickiness independently.
pub fn flow_hash(pkt: &Packet) -> u64 {
    let (sport, dport) = match &pkt.transport {
        Transport::Tcp(t) => (t.src_port, t.dst_port),
        Transport::Udp(u) => (u.src_port, u.dst_port),
        _ => (0, 0),
    };
    let mut key = (pkt.ipv4.src as u64) << 32 | pkt.ipv4.dst as u64;
    key = splitmix64(key);
    key ^= (sport as u64) << 24 | (dport as u64) << 8 | pkt.ipv4.protocol.to_wire() as u64;
    splitmix64(key)
}

impl TracePartitioner {
    /// Equal traffic shares over `n` switches.
    pub fn uniform(n: usize) -> Self {
        Self::weighted(&vec![1.0; n.max(1)])
    }

    /// One switch per entry of `shares`, each owning a slice of the
    /// flow-hash space proportional to its share. Non-positive shares
    /// are treated as zero; if every share is zero the split falls
    /// back to uniform.
    pub fn weighted(shares: &[f64]) -> Self {
        let n = shares.len().max(1);
        let clamped: Vec<f64> = shares.iter().map(|&s| s.max(0.0)).collect();
        let total: f64 = clamped.iter().sum();
        let norm: Vec<f64> = if total > 0.0 {
            clamped.iter().map(|&s| s / total).collect()
        } else {
            vec![1.0 / n as f64; n]
        };
        let mut bounds = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for (i, share) in norm.iter().enumerate() {
            acc += share;
            bounds.push(if i + 1 == n {
                u64::MAX
            } else {
                (acc * u64::MAX as f64) as u64
            });
        }
        TracePartitioner { bounds }
    }

    /// Number of switches this partitioner splits across.
    pub fn switches(&self) -> usize {
        self.bounds.len()
    }

    /// The switch that owns `pkt`'s flow.
    pub fn assign(&self, pkt: &Packet) -> usize {
        let h = flow_hash(pkt);
        self.bounds.partition_point(|&b| b < h)
    }

    /// Split `trace` into one packet vector per switch, preserving
    /// capture order within each. The split is exhaustive: packet
    /// counts across partitions always sum to the input's.
    pub fn split(&self, trace: &Trace) -> Vec<Vec<Packet>> {
        let mut parts: Vec<Vec<Packet>> = vec![Vec::new(); self.switches()];
        for pkt in trace.packets() {
            parts[self.assign(pkt)].push(pkt.clone());
        }
        parts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::background::BackgroundConfig;

    fn trace() -> Trace {
        Trace::background(&BackgroundConfig::small(), 11)
    }

    #[test]
    fn split_is_exhaustive_deterministic_and_order_preserving() {
        let tr = trace();
        for n in [1usize, 2, 3, 4] {
            let p = TracePartitioner::uniform(n);
            let parts = p.split(&tr);
            assert_eq!(parts.len(), n);
            let total: usize = parts.iter().map(Vec::len).sum();
            assert_eq!(total, tr.len(), "{n}-way split lost packets");
            for part in &parts {
                assert!(
                    part.windows(2).all(|w| w[0].ts_nanos <= w[1].ts_nanos),
                    "capture order broken"
                );
            }
            assert_eq!(parts, p.split(&tr), "split not deterministic");
        }
    }

    #[test]
    fn flows_are_sticky_to_one_switch() {
        let tr = trace();
        let p = TracePartitioner::uniform(4);
        let mut owner = std::collections::HashMap::new();
        for pkt in tr.packets() {
            let h = flow_hash(pkt);
            let s = p.assign(pkt);
            assert_eq!(*owner.entry(h).or_insert(s), s, "flow moved switches");
        }
    }

    #[test]
    fn weighted_shares_skew_the_split() {
        let tr = trace();
        let p = TracePartitioner::weighted(&[3.0, 1.0]);
        let parts = p.split(&tr);
        assert!(
            parts[0].len() > parts[1].len(),
            "3:1 shares should load switch 0 heavier ({} vs {})",
            parts[0].len(),
            parts[1].len()
        );
        // Degenerate shares fall back to uniform rather than panicking.
        let q = TracePartitioner::weighted(&[0.0, 0.0]);
        assert_eq!(q.switches(), 2);
        assert_eq!(q.split(&tr).iter().map(Vec::len).sum::<usize>(), tr.len());
    }
}
