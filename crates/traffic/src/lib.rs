//! # sonata-traffic
//!
//! Synthetic traffic substrate for the Sonata reproduction.
//!
//! The paper evaluates on CAIDA's anonymized backbone traces (600 M
//! packets over 10 minutes of a Seattle–Chicago ISP link). Those traces
//! are not redistributable, so this crate generates *statistically
//! comparable* traffic instead:
//!
//! * **hierarchical address structure** ([`address`]) — endpoints are
//!   drawn from a randomly grown prefix tree, so traffic concentrates
//!   in a few /8s, /16s, and /24s the way real address space does;
//!   this is the property dynamic refinement (Section 4) exploits;
//! * **heavy-tailed workload** ([`distributions`], [`background`]) —
//!   Zipf endpoint popularity and Pareto flow sizes, a standard model
//!   of backbone traffic; flows carry full TCP handshakes, data in
//!   both directions, and teardowns, plus a DNS/ICMP/UDP mix;
//! * **attack injectors** ([`attacks`]) — one "needle" generator per
//!   catalog query (SYN flood, port scan, superspreader, DDoS, SSH
//!   brute force, Slowloris, DNS tunneling, Zorro telnet, DNS
//!   reflection), each parameterized and seeded;
//! * **drift workloads** ([`drift`]) — runs that start on the training
//!   distribution and then drift (diurnal shift, flash crowd, attack
//!   onset), exercising the online replanning loop;
//! * **traces** ([`trace`]) — merged, timestamp-sorted packet vectors
//!   with window iteration, summary statistics, and a binary trace
//!   file format for persistence.
//!
//! Everything is deterministic given a seed.

pub mod address;
pub mod attacks;
pub mod background;
pub mod distributions;
pub mod drift;
pub mod partition;
pub mod trace;

pub use address::AddressSpace;
pub use attacks::Attack;
pub use background::BackgroundConfig;
pub use drift::{DriftScenario, DriftWorkload};
pub use partition::{flow_hash, TracePartitioner};
pub use trace::{Trace, TraceStats};
