//! Drift workloads: traces whose statistics change mid-run.
//!
//! The replanning loop (DESIGN.md §16) needs traffic that *starts*
//! looking like the training trace a plan was costed on and then
//! drifts away from it, so the drift monitor trips, the planner
//! re-solves, and the runtime swaps plans at a window boundary. This
//! module packages the three canonical drift shapes the evaluation
//! uses:
//!
//! * **diurnal shift** — background load ramps smoothly to a multiple
//!   of the planned-for rate, the way a backbone link fills up toward
//!   the evening peak;
//! * **flash crowd** — a sudden benign surge of many clients toward
//!   one hot server, concentrating traffic on a single destination;
//! * **attack onset** — a SYN flood switches on mid-run, the paper's
//!   own motivating scenario for dynamic refinement.
//!
//! A [`DriftWorkload`] generates the background one window at a time
//! from seeds derived only from `(seed, window)`, so the quiet prefix
//! of [`DriftWorkload::generate`] is bit-identical to the matching
//! prefix of [`DriftWorkload::training`] — plans costed on the
//! training trace see exactly that traffic until the onset window.
//! Everything is deterministic given a seed and composes with
//! [`TracePartitioner`](crate::partition::TracePartitioner), so the
//! same workload reproduces across 1×1 and N×M topologies.

use crate::attacks::Attack;
use crate::background::{self, BackgroundConfig};
use crate::trace::{actors, Trace};
use sonata_packet::Packet;

/// How the traffic drifts away from the training distribution.
#[derive(Debug, Clone, PartialEq)]
pub enum DriftScenario {
    /// Background load ramps linearly from 1× at the onset window to
    /// `peak_multiplier`× over `ramp_windows` windows, then holds at
    /// the peak — the evening plateau, not an endless climb, so a
    /// re-solved plan has a stationary distribution to converge on.
    Diurnal {
        /// Load multiplier reached at the top of the ramp (≥ 1.0).
        peak_multiplier: f64,
        /// Windows the ramp takes to reach the peak (≥ 1).
        ramp_windows: u32,
    },
    /// Many clients pile onto a small cluster of replica servers from
    /// the onset window on. Every client fetches from every replica,
    /// so the crowd shows up as *keys* — distinct sources per server
    /// (query 5) and distinct destinations per client (query 4) — not
    /// just as packet volume, which is what makes it visible to the
    /// per-query load signal the replanner re-costs on.
    FlashCrowd {
        /// First address of the suddenly-popular replica cluster.
        hot_server: u32,
        /// Number of replica servers in the cluster (≥ 1).
        hot_servers: usize,
        /// Number of distinct crowd clients.
        clients: usize,
        /// Extra crowd packets added per post-onset window.
        surge_packets_per_window: usize,
    },
    /// A SYN flood switches on at the onset window and runs to the end.
    AttackOnset {
        /// Flood victim.
        victim: u32,
        /// Flood packets per post-onset window.
        flood_packets_per_window: usize,
        /// Distinct spoofed sources the flood rotates through.
        sources: usize,
    },
}

impl DriftScenario {
    /// Diurnal shift with the default 3× peak.
    pub fn diurnal() -> Self {
        DriftScenario::Diurnal {
            peak_multiplier: 3.0,
            ramp_windows: 4,
        }
    }

    /// Flash crowd toward a fixed, recognizable replica cluster.
    pub fn flash_crowd() -> Self {
        DriftScenario::FlashCrowd {
            hot_server: actors::DDOS_VICTIM,
            hot_servers: 12,
            clients: 400,
            surge_packets_per_window: 4_000,
        }
    }

    /// Attack onset against the paper's SYN-flood victim.
    pub fn attack_onset() -> Self {
        DriftScenario::AttackOnset {
            victim: actors::SYN_FLOOD_VICTIM,
            flood_packets_per_window: 4_000,
            sources: 3_000,
        }
    }

    /// Parse a CLI-friendly scenario name (`diurnal`, `flash`,
    /// `attack`, plus long aliases).
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "diurnal" => Some(Self::diurnal()),
            "flash" | "flash-crowd" => Some(Self::flash_crowd()),
            "attack" | "attack-onset" => Some(Self::attack_onset()),
            _ => None,
        }
    }

    /// Canonical short name (inverse of [`DriftScenario::from_name`]).
    pub fn name(&self) -> &'static str {
        match self {
            DriftScenario::Diurnal { .. } => "diurnal",
            DriftScenario::FlashCrowd { .. } => "flash",
            DriftScenario::AttackOnset { .. } => "attack",
        }
    }
}

/// A drift workload: a windowed run that is quiet until `onset_window`
/// and then drifts per its [`DriftScenario`].
#[derive(Debug, Clone)]
pub struct DriftWorkload {
    /// The drift shape.
    pub scenario: DriftScenario,
    /// Total windows in the run.
    pub windows: u32,
    /// Window length, milliseconds.
    pub window_ms: u64,
    /// First drifted window (quiet before, drifting from here on).
    pub onset_window: u32,
    /// Background packet budget per quiet window.
    pub packets_per_window: usize,
    /// Background shape template (duration/packets fields are ignored;
    /// the workload sets them per window).
    pub background: BackgroundConfig,
}

/// Decorrelate per-window seeds (splitmix64 over `(seed, w)`).
fn mix(seed: u64, w: u64) -> u64 {
    let mut x = seed ^ w.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl DriftWorkload {
    /// A workload with drift starting a third of the way in, at the
    /// small per-window budget the test suites use.
    pub fn new(scenario: DriftScenario, windows: u32, window_ms: u64) -> Self {
        DriftWorkload {
            scenario,
            windows: windows.max(2),
            window_ms: window_ms.max(1),
            onset_window: (windows / 3).max(1),
            packets_per_window: 5_000,
            background: BackgroundConfig::small(),
        }
    }

    /// Millisecond timestamp of the onset boundary.
    pub fn onset_ms(&self) -> u64 {
        self.onset_window as u64 * self.window_ms
    }

    /// The quiet trace to plan on: every window at the base budget,
    /// no needle. Windows `0..onset_window` of [`generate`] are
    /// bit-identical to this trace's.
    ///
    /// [`generate`]: DriftWorkload::generate
    pub fn training(&self, seed: u64) -> Trace {
        let mut t = Trace::default();
        for w in 0..self.windows as u64 {
            t.merge(self.window_segment(seed, w, self.packets_per_window));
        }
        t
    }

    /// The drifted run: quiet until the onset window, then background
    /// scaled per the scenario plus any injected needle.
    pub fn generate(&self, seed: u64) -> Trace {
        let mut t = Trace::default();
        for w in 0..self.windows as u64 {
            let budget = (self.packets_per_window as f64 * self.load_multiplier(w)) as usize;
            t.merge(self.window_segment(seed, w, budget));
        }
        // Needles stop half a window short of the horizon so flood
        // tails cannot spill past the final window boundary.
        let span = ((self.windows as u64 - self.onset_window as u64) * self.window_ms)
            .saturating_sub(self.window_ms / 2)
            .max(1);
        let post = (self.windows - self.onset_window) as usize;
        match &self.scenario {
            DriftScenario::Diurnal { .. } => {}
            DriftScenario::FlashCrowd {
                hot_server,
                hot_servers,
                clients,
                surge_packets_per_window,
            } => {
                let clients = (*clients).max(1);
                let servers = (*hot_servers).max(1);
                // One shared client pool hitting every replica: the
                // same sources recur across the cluster, so both the
                // per-server and per-client distinct counts grow.
                let pool: Vec<u32> = (0..clients as u32).map(|i| 0x0a40_0001 + i * 3).collect();
                let per_source = (surge_packets_per_window * post / (clients * servers)).max(1);
                for s in 0..servers as u32 {
                    let crowd = Attack::Ddos {
                        victim: hot_server.wrapping_add(s),
                        sources: pool.clone(),
                        packets_per_source: per_source,
                        start_ms: self.onset_ms(),
                        duration_ms: span,
                    };
                    t.inject(&crowd, mix(seed, 0xF1A5 + s as u64));
                }
            }
            DriftScenario::AttackOnset {
                victim,
                flood_packets_per_window,
                sources,
            } => {
                let flood = Attack::SynFlood {
                    victim: *victim,
                    port: 80,
                    packets: flood_packets_per_window * post,
                    sources: *sources,
                    ack_fraction: 0.04,
                    fin_fraction: 0.02,
                    start_ms: self.onset_ms(),
                    duration_ms: span,
                };
                t.inject(&flood, mix(seed, 0xA77C));
            }
        }
        t
    }

    /// Background load multiplier for window `w`.
    fn load_multiplier(&self, w: u64) -> f64 {
        if w < self.onset_window as u64 {
            return 1.0;
        }
        match &self.scenario {
            DriftScenario::Diurnal {
                peak_multiplier,
                ramp_windows,
            } => {
                let ramp = (*ramp_windows).max(1) as f64;
                let frac = (((w - self.onset_window as u64) + 1) as f64 / ramp).min(1.0);
                1.0 + (peak_multiplier.max(1.0) - 1.0) * frac
            }
            // The crowd and the flood are injected needles; the
            // background itself stays at the planned-for rate.
            DriftScenario::FlashCrowd { .. } | DriftScenario::AttackOnset { .. } => 1.0,
        }
    }

    /// One window of background: generated in window-local time from a
    /// seed derived only from `(seed, w)`, clipped to the window, and
    /// shifted to its place in the run.
    fn window_segment(&self, seed: u64, w: u64, budget: usize) -> Vec<Packet> {
        let cfg = BackgroundConfig {
            duration_ms: self.window_ms,
            packets: budget.max(1),
            ..self.background.clone()
        };
        let mut pkts = background::generate(&cfg, mix(seed, w));
        let window_ns = self.window_ms * 1_000_000;
        pkts.retain(|p| p.ts_nanos < window_ns);
        let off = w * window_ns;
        for p in &mut pkts {
            p.ts_nanos += off;
        }
        pkts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::TracePartitioner;
    use sonata_packet::{TcpFlags, Transport};

    fn scenarios() -> Vec<DriftScenario> {
        vec![
            DriftScenario::diurnal(),
            DriftScenario::flash_crowd(),
            DriftScenario::attack_onset(),
        ]
    }

    fn small(scenario: DriftScenario) -> DriftWorkload {
        DriftWorkload {
            packets_per_window: 1_500,
            ..DriftWorkload::new(scenario, 6, 500)
        }
    }

    #[test]
    fn deterministic_per_seed() {
        for sc in scenarios() {
            let wl = small(sc);
            let a = wl.generate(42);
            let b = wl.generate(42);
            assert_eq!(a.len(), b.len());
            assert_eq!(a.packets()[a.len() / 2], b.packets()[b.len() / 2]);
            let c = wl.generate(43);
            assert_ne!(
                a.packets().iter().map(|p| p.ts_nanos).sum::<u64>(),
                c.packets().iter().map(|p| p.ts_nanos).sum::<u64>()
            );
        }
    }

    #[test]
    fn quiet_prefix_matches_training_trace() {
        for sc in scenarios() {
            let wl = small(sc);
            let run = wl.generate(7);
            let train = wl.training(7);
            let run_w: Vec<_> = run.windows(wl.window_ms).collect();
            let train_w: Vec<_> = train.windows(wl.window_ms).collect();
            for w in 0..wl.onset_window as u64 {
                let r = run_w.iter().find(|(i, _)| *i == w).map(|(_, p)| *p);
                let t = train_w.iter().find(|(i, _)| *i == w).map(|(_, p)| *p);
                assert_eq!(
                    r,
                    t,
                    "window {w} differs pre-onset ({})",
                    wl.scenario.name()
                );
            }
        }
    }

    #[test]
    fn diurnal_load_ramps_past_onset() {
        let wl = small(DriftScenario::diurnal());
        let t = wl.generate(9);
        let counts: Vec<(u64, usize)> =
            t.windows(wl.window_ms).map(|(w, p)| (w, p.len())).collect();
        let quiet: usize = counts
            .iter()
            .filter(|(w, _)| *w < wl.onset_window as u64)
            .map(|(_, n)| n)
            .sum::<usize>()
            / wl.onset_window as usize;
        let last = counts.last().expect("windows").1;
        assert!(
            last as f64 > quiet as f64 * 2.0,
            "final window {last} not ≫ quiet {quiet}"
        );
    }

    #[test]
    fn flash_crowd_concentrates_on_hot_server() {
        let wl = small(DriftScenario::flash_crowd());
        let DriftScenario::FlashCrowd {
            hot_server,
            hot_servers,
            ..
        } = wl.scenario
        else {
            unreachable!()
        };
        let in_cluster = |dst: u32| dst.wrapping_sub(hot_server) < hot_servers as u32;
        let onset_ns = wl.onset_ms() * 1_000_000;
        let t = wl.generate(11);
        let pre = t
            .packets()
            .iter()
            .filter(|p| p.ts_nanos < onset_ns && in_cluster(p.ipv4.dst))
            .count();
        let post = t
            .packets()
            .iter()
            .filter(|p| p.ts_nanos >= onset_ns && in_cluster(p.ipv4.dst))
            .count();
        assert!(post > pre * 10 + 1_000, "pre={pre} post={post}");
    }

    #[test]
    fn attack_onset_floods_only_after_onset() {
        let wl = small(DriftScenario::attack_onset());
        let DriftScenario::AttackOnset { victim, .. } = wl.scenario else {
            unreachable!()
        };
        let onset_ns = wl.onset_ms() * 1_000_000;
        let syns_to = |lo: u64, hi: u64| {
            wl.generate(13)
                .packets()
                .iter()
                .filter(|p| {
                    p.ts_nanos >= lo
                        && p.ts_nanos < hi
                        && p.ipv4.dst == victim
                        && matches!(&p.transport, Transport::Tcp(t) if t.flags == TcpFlags::SYN)
                })
                .count()
        };
        assert!(syns_to(0, onset_ns) < 50);
        assert!(syns_to(onset_ns, u64::MAX) > 2_000);
    }

    #[test]
    fn composes_with_the_partitioner() {
        let wl = small(DriftScenario::attack_onset());
        let t = wl.generate(17);
        let p = TracePartitioner::uniform(2);
        let parts = p.split(&t);
        assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), t.len());
        assert_eq!(parts, p.split(&t));
    }

    #[test]
    fn names_round_trip() {
        for sc in scenarios() {
            assert_eq!(DriftScenario::from_name(sc.name()), Some(sc));
        }
        assert_eq!(DriftScenario::from_name("quiet"), None);
    }
}
