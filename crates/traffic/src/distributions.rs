//! Heavy-tailed distributions used by the workload generator.
//!
//! Implemented here (rather than pulling in `rand_distr`) because the
//! generator needs exactly two distributions and both are a dozen
//! lines: Zipf via a precomputed CDF with binary search, and bounded
//! Pareto via inverse-transform sampling.

use rand::Rng;

/// A Zipf distribution over `{0, 1, …, n−1}` with exponent `s`:
/// `P(k) ∝ 1 / (k+1)^s`. Rank 0 is the most popular element.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build the distribution. `n` must be ≥ 1; `s` ≥ 0 (0 = uniform).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n >= 1, "Zipf needs at least one element");
        assert!(s >= 0.0 && s.is_finite(), "Zipf exponent must be ≥ 0");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        // Guard against floating-point shortfall at the top.
        *cdf.last_mut().expect("n >= 1") = 1.0;
        Zipf { cdf }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the support is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Sample a rank in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // partition_point returns the count of elements < u, which is
        // exactly the first rank whose CDF value reaches u.
        self.cdf.partition_point(|&c| c < u)
    }

    /// The probability mass of rank `k`.
    pub fn pmf(&self, k: usize) -> f64 {
        let hi = self.cdf[k];
        let lo = if k == 0 { 0.0 } else { self.cdf[k - 1] };
        hi - lo
    }
}

/// A bounded Pareto distribution on `[min, max]` with shape `alpha`.
/// Used for flow sizes in packets: most flows are mice, a few are
/// elephants.
#[derive(Debug, Clone, Copy)]
pub struct BoundedPareto {
    min: f64,
    max: f64,
    alpha: f64,
}

impl BoundedPareto {
    /// Build the distribution; requires `0 < min < max` and `alpha > 0`.
    pub fn new(min: f64, max: f64, alpha: f64) -> Self {
        assert!(min > 0.0 && max > min, "need 0 < min < max");
        assert!(alpha > 0.0, "alpha must be positive");
        BoundedPareto { min, max, alpha }
    }

    /// Sample a value in `[min, max]` by inverse transform.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen_range(0.0..1.0);
        let (l, h, a) = (self.min, self.max, self.alpha);
        let la = l.powf(a);
        let ha = h.powf(a);
        // Inverse CDF of the bounded Pareto.
        (-((u * ha - u * la - ha) / (ha * la))).powf(-1.0 / a)
    }

    /// Sample, rounded to a positive integer.
    pub fn sample_count<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        (self.sample(rng).round() as u64).max(1)
    }
}

/// Sample an exponentially distributed value with the given mean.
/// Used for packet inter-arrival gaps inside a flow.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -mean * u.ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zipf_is_normalized_and_monotone() {
        let z = Zipf::new(100, 1.1);
        let total: f64 = (0..100).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        // Heavier head than tail.
        assert!(z.pmf(0) > z.pmf(1));
        assert!(z.pmf(1) > z.pmf(50));
    }

    #[test]
    fn zipf_uniform_when_s_zero() {
        let z = Zipf::new(10, 0.0);
        for k in 0..10 {
            assert!((z.pmf(k) - 0.1).abs() < 1e-9);
        }
    }

    #[test]
    fn zipf_samples_in_range_and_skewed() {
        let z = Zipf::new(1000, 1.2);
        let mut rng = StdRng::seed_from_u64(7);
        let mut head = 0usize;
        const N: usize = 20_000;
        for _ in 0..N {
            let k = z.sample(&mut rng);
            assert!(k < 1000);
            if k < 10 {
                head += 1;
            }
        }
        // With s=1.2 the top-10 ranks carry well over a third of the mass.
        assert!(head > N / 3, "head={head}");
    }

    #[test]
    fn zipf_single_element() {
        let z = Zipf::new(1, 2.0);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(z.sample(&mut rng), 0);
        assert!((z.pmf(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pareto_respects_bounds() {
        let p = BoundedPareto::new(1.0, 1000.0, 1.2);
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = p.sample(&mut rng);
            assert!((1.0..=1000.0).contains(&v), "v={v}");
        }
    }

    #[test]
    fn pareto_is_heavy_tailed() {
        let p = BoundedPareto::new(1.0, 10_000.0, 1.1);
        let mut rng = StdRng::seed_from_u64(3);
        const N: usize = 50_000;
        let samples: Vec<f64> = (0..N).map(|_| p.sample(&mut rng)).collect();
        let small = samples.iter().filter(|&&v| v < 10.0).count();
        let large = samples.iter().filter(|&&v| v > 1000.0).count();
        // Mostly mice, but elephants exist.
        assert!(small > N * 8 / 10, "small={small}");
        assert!(large > 0, "no elephants in {N} samples");
    }

    #[test]
    fn pareto_count_is_at_least_one() {
        let p = BoundedPareto::new(1.0, 5.0, 3.0);
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..1000 {
            assert!(p.sample_count(&mut rng) >= 1);
        }
    }

    #[test]
    fn exponential_mean_close() {
        let mut rng = StdRng::seed_from_u64(5);
        const N: usize = 50_000;
        let mean = 42.0;
        let total: f64 = (0..N).map(|_| exponential(&mut rng, mean)).sum();
        let observed = total / N as f64;
        assert!((observed - mean).abs() < mean * 0.05, "observed={observed}");
    }

    #[test]
    fn deterministic_given_seed() {
        let z = Zipf::new(50, 1.0);
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut a), z.sample(&mut b));
        }
    }
}
