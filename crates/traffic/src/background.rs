//! Background (benign) traffic generation.
//!
//! The generator is flow-based: it draws flows with Zipf-popular
//! endpoints and Pareto sizes, then expands each flow into packets —
//! TCP flows get a full handshake, bidirectional data, and a FIN/ACK
//! teardown; UDP flows are unidirectional datagrams; a configurable
//! slice of traffic is DNS query/response pairs and ICMP echo.

use crate::address::{AddressSpace, AddressSpaceConfig};
use crate::distributions::{exponential, BoundedPareto};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sonata_packet::dns::DnsQType;
use sonata_packet::{DnsHeader, DnsRecord, Packet, PacketBuilder, TcpFlags};

/// Configuration of the background workload.
#[derive(Debug, Clone)]
pub struct BackgroundConfig {
    /// Trace duration in milliseconds.
    pub duration_ms: u64,
    /// Approximate total packet budget for the whole trace.
    pub packets: usize,
    /// Client address pool shape.
    pub clients: AddressSpaceConfig,
    /// Server address pool shape.
    pub servers: AddressSpaceConfig,
    /// Pareto shape for flow sizes in packets.
    pub flow_alpha: f64,
    /// Maximum flow size in packets.
    pub max_flow_pkts: f64,
    /// Mean intra-flow packet gap, milliseconds.
    pub mean_pkt_gap_ms: f64,
    /// Fraction of flows that are UDP (non-DNS).
    pub udp_fraction: f64,
    /// Fraction of flows that are DNS lookups.
    pub dns_fraction: f64,
    /// Fraction of flows that are ICMP echo.
    pub icmp_fraction: f64,
}

impl Default for BackgroundConfig {
    fn default() -> Self {
        BackgroundConfig {
            duration_ms: 3_000,
            packets: 100_000,
            clients: AddressSpaceConfig::default(),
            servers: AddressSpaceConfig {
                slash8s: 8,
                slash16s_per_8: 6,
                slash24s_per_16: 4,
                hosts_per_24: 10,
                zipf_s: 1.1,
            },
            flow_alpha: 1.2,
            max_flow_pkts: 500.0,
            mean_pkt_gap_ms: 20.0,
            udp_fraction: 0.12,
            dns_fraction: 0.05,
            icmp_fraction: 0.01,
        }
    }
}

impl BackgroundConfig {
    /// A small configuration for fast unit tests.
    pub fn small() -> Self {
        BackgroundConfig {
            duration_ms: 3_000,
            packets: 5_000,
            clients: AddressSpaceConfig {
                slash8s: 4,
                slash16s_per_8: 4,
                slash24s_per_16: 4,
                hosts_per_24: 8,
                zipf_s: 1.0,
            },
            servers: AddressSpaceConfig {
                slash8s: 3,
                slash16s_per_8: 3,
                slash24s_per_16: 3,
                hosts_per_24: 6,
                zipf_s: 1.1,
            },
            ..BackgroundConfig::default()
        }
    }
}

/// Common service ports with rough popularity weights.
const SERVICE_PORTS: &[(u16, u32)] = &[
    (443, 45),
    (80, 30),
    (8080, 5),
    (25, 4),
    (22, 4),
    (993, 3),
    (3306, 2),
    (123, 2),
    (21, 2),
    (8443, 2),
    (23, 1),
];

fn pick_service_port<R: Rng + ?Sized>(rng: &mut R) -> u16 {
    let total: u32 = SERVICE_PORTS.iter().map(|(_, w)| w).sum();
    let mut x = rng.gen_range(0..total);
    for (p, w) in SERVICE_PORTS {
        if x < *w {
            return *p;
        }
        x -= w;
    }
    443
}

/// A benign domain pool for background DNS traffic.
const DOMAINS: &[&str] = &[
    "cdn.example.com",
    "www.example.com",
    "api.service.net",
    "img.media.org",
    "mail.corp.example",
    "static.assets.io",
    "telemetry.vendor.com",
    "update.os.example",
];

/// Generate background packets, timestamp-sorted.
///
/// The packet count lands close to `cfg.packets` (the last flow may
/// overshoot slightly).
pub fn generate(cfg: &BackgroundConfig, seed: u64) -> Vec<Packet> {
    let mut rng = StdRng::seed_from_u64(seed);
    let clients = AddressSpace::generate(&cfg.clients, seed.wrapping_add(1));
    let servers = AddressSpace::generate(&cfg.servers, seed.wrapping_add(2));
    let flow_size = BoundedPareto::new(1.0, cfg.max_flow_pkts, cfg.flow_alpha);
    let duration_ns = cfg.duration_ms * 1_000_000;

    let mut packets: Vec<Packet> = Vec::with_capacity(cfg.packets + 64);
    while packets.len() < cfg.packets {
        let client = clients.sample(&mut rng);
        let server = servers.sample(&mut rng);
        let start_ns = rng.gen_range(0..duration_ns);
        let kind: f64 = rng.gen();
        if kind < cfg.dns_fraction {
            emit_dns_lookup(&mut rng, &mut packets, client, server, start_ns);
        } else if kind < cfg.dns_fraction + cfg.icmp_fraction {
            emit_icmp_echo(
                &mut rng,
                &mut packets,
                client,
                server,
                start_ns,
                duration_ns,
            );
        } else if kind < cfg.dns_fraction + cfg.icmp_fraction + cfg.udp_fraction {
            emit_udp_flow(
                &mut rng,
                &mut packets,
                client,
                server,
                start_ns,
                duration_ns,
                flow_size,
                cfg.mean_pkt_gap_ms,
            );
        } else {
            emit_tcp_flow(
                &mut rng,
                &mut packets,
                client,
                server,
                start_ns,
                duration_ns,
                flow_size,
                cfg.mean_pkt_gap_ms,
            );
        }
    }
    packets.sort_by_key(|p| p.ts_nanos);
    packets
}

/// Advance `ts` by an exponential gap; false when past the horizon.
fn bump<R: Rng + ?Sized>(rng: &mut R, ts: &mut u64, mean_gap_ms: f64, duration_ns: u64) -> bool {
    *ts += (exponential(rng, mean_gap_ms) * 1_000_000.0) as u64 + 1;
    *ts < duration_ns
}

fn ephemeral_port<R: Rng + ?Sized>(rng: &mut R) -> u16 {
    rng.gen_range(32768..61000)
}

fn payload_len<R: Rng + ?Sized>(rng: &mut R) -> usize {
    // Bimodal: small control packets and near-MTU data packets.
    if rng.gen_bool(0.4) {
        rng.gen_range(0..200)
    } else {
        rng.gen_range(800..1400)
    }
}

#[allow(clippy::too_many_arguments)]
fn emit_tcp_flow<R: Rng + ?Sized>(
    rng: &mut R,
    out: &mut Vec<Packet>,
    client: u32,
    server: u32,
    start_ns: u64,
    duration_ns: u64,
    flow_size: BoundedPareto,
    mean_gap_ms: f64,
) {
    let sport = ephemeral_port(rng);
    let dport = pick_service_port(rng);
    let data_pkts = flow_size.sample_count(rng);
    let mut ts = start_ns;
    // Handshake: SYN, SYN-ACK, ACK.
    out.push(
        PacketBuilder::tcp_raw(client, sport, server, dport)
            .flags(TcpFlags::SYN)
            .ts_nanos(ts)
            .build(),
    );
    if !bump(rng, &mut ts, mean_gap_ms, duration_ns) {
        return;
    }
    out.push(
        PacketBuilder::tcp_raw(server, dport, client, sport)
            .flags(TcpFlags::SYN_ACK)
            .ts_nanos(ts)
            .build(),
    );
    if !bump(rng, &mut ts, mean_gap_ms, duration_ns) {
        return;
    }
    out.push(
        PacketBuilder::tcp_raw(client, sport, server, dport)
            .flags(TcpFlags::ACK)
            .ts_nanos(ts)
            .build(),
    );
    // Data, mostly server -> client (download-dominated).
    for _ in 0..data_pkts {
        if !bump(rng, &mut ts, mean_gap_ms, duration_ns) {
            return;
        }
        let downstream = rng.gen_bool(0.75);
        let len = payload_len(rng);
        let pkt = if downstream {
            PacketBuilder::tcp_raw(server, dport, client, sport)
        } else {
            PacketBuilder::tcp_raw(client, sport, server, dport)
        };
        out.push(
            pkt.flags(TcpFlags::PSH_ACK)
                .payload(vec![0u8; len])
                .ts_nanos(ts)
                .build(),
        );
    }
    // Teardown: FIN-ACK both ways.
    if !bump(rng, &mut ts, mean_gap_ms, duration_ns) {
        return;
    }
    out.push(
        PacketBuilder::tcp_raw(client, sport, server, dport)
            .flags(TcpFlags::FIN.union(TcpFlags::ACK))
            .ts_nanos(ts)
            .build(),
    );
    if !bump(rng, &mut ts, mean_gap_ms, duration_ns) {
        return;
    }
    out.push(
        PacketBuilder::tcp_raw(server, dport, client, sport)
            .flags(TcpFlags::FIN.union(TcpFlags::ACK))
            .ts_nanos(ts)
            .build(),
    );
}

#[allow(clippy::too_many_arguments)]
fn emit_udp_flow<R: Rng + ?Sized>(
    rng: &mut R,
    out: &mut Vec<Packet>,
    client: u32,
    server: u32,
    start_ns: u64,
    duration_ns: u64,
    flow_size: BoundedPareto,
    mean_gap_ms: f64,
) {
    let sport = ephemeral_port(rng);
    let dport = *[123u16, 443, 4500, 5004, 8801]
        .get(rng.gen_range(0..5usize))
        .unwrap();
    let pkts = flow_size.sample_count(rng).min(100);
    let mut ts = start_ns;
    for _ in 0..pkts {
        if ts >= duration_ns {
            return;
        }
        let len = payload_len(rng);
        out.push(
            PacketBuilder::udp_raw(client, sport, server, dport)
                .payload(vec![0u8; len])
                .ts_nanos(ts)
                .build(),
        );
        ts += (exponential(rng, mean_gap_ms) * 1_000_000.0) as u64 + 1;
    }
}

fn emit_dns_lookup<R: Rng + ?Sized>(
    rng: &mut R,
    out: &mut Vec<Packet>,
    client: u32,
    resolver: u32,
    start_ns: u64,
) {
    let di = rng.gen_range(0..DOMAINS.len());
    let domain = DOMAINS[di];
    let id: u16 = rng.gen();
    let query = DnsHeader::query(id, domain, DnsQType::A);
    out.push(
        PacketBuilder::dns(client, resolver, query)
            .ts_nanos(start_ns)
            .build(),
    );
    // Benign domains resolve to a small, stable address set (a few
    // CDN frontends), unlike fast-flux needles.
    let frontend: u8 = rng.gen_range(0..4);
    let answer = DnsRecord {
        name: domain.to_string(),
        rtype: DnsQType::A,
        ttl: 300,
        rdata: vec![93, 184 + di as u8, 16 + frontend, 34],
    };
    let resp = DnsHeader::response(id, domain, DnsQType::A, vec![answer]);
    out.push(
        PacketBuilder::dns(resolver, client, resp)
            .ts_nanos(start_ns + 2_000_000)
            .build(),
    );
}

fn emit_icmp_echo<R: Rng + ?Sized>(
    rng: &mut R,
    out: &mut Vec<Packet>,
    client: u32,
    server: u32,
    start_ns: u64,
    duration_ns: u64,
) {
    let n = rng.gen_range(1..=4);
    let mut ts = start_ns;
    for _ in 0..n {
        if ts >= duration_ns {
            return;
        }
        out.push(
            PacketBuilder::icmp_raw(client, server)
                .payload(vec![0u8; 56])
                .ts_nanos(ts)
                .build(),
        );
        out.push(
            PacketBuilder::icmp_raw(server, client)
                .payload(vec![0u8; 56])
                .ts_nanos(ts + 1_500_000)
                .build(),
        );
        ts += 1_000_000_000;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sonata_packet::{IpProtocol, Transport};

    #[test]
    fn generates_roughly_requested_count() {
        let cfg = BackgroundConfig::small();
        let pkts = generate(&cfg, 1);
        assert!(pkts.len() >= cfg.packets);
        assert!(pkts.len() < cfg.packets + 600, "overshoot: {}", pkts.len());
    }

    #[test]
    fn timestamps_sorted_and_in_range() {
        let cfg = BackgroundConfig::small();
        let pkts = generate(&cfg, 2);
        let dur_ns = cfg.duration_ms * 1_000_000;
        let mut last = 0;
        for p in &pkts {
            assert!(p.ts_nanos >= last);
            last = p.ts_nanos;
        }
        // Flow tails can spill a little past the nominal duration.
        assert!(last < dur_ns + 2_000_000_000);
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = BackgroundConfig::small();
        let a = generate(&cfg, 3);
        let b = generate(&cfg, 3);
        assert_eq!(a.len(), b.len());
        assert_eq!(a[100], b[100]);
        let c = generate(&cfg, 4);
        assert_ne!(
            a.iter().map(|p| p.ipv4.src as u64).sum::<u64>(),
            c.iter().map(|p| p.ipv4.src as u64).sum::<u64>()
        );
    }

    #[test]
    fn protocol_mix_is_plausible() {
        let cfg = BackgroundConfig::small();
        let pkts = generate(&cfg, 5);
        let tcp = pkts
            .iter()
            .filter(|p| p.ipv4.protocol == IpProtocol::Tcp)
            .count();
        let udp = pkts
            .iter()
            .filter(|p| p.ipv4.protocol == IpProtocol::Udp)
            .count();
        let icmp = pkts
            .iter()
            .filter(|p| p.ipv4.protocol == IpProtocol::Icmp)
            .count();
        let n = pkts.len();
        assert!(tcp > n / 2, "tcp={tcp}/{n}");
        assert!(udp > 0 && udp < n / 2);
        assert!(icmp > 0 && icmp < n / 10);
    }

    #[test]
    fn tcp_flows_have_handshakes_and_teardowns() {
        let cfg = BackgroundConfig::small();
        let pkts = generate(&cfg, 6);
        let syns = pkts
            .iter()
            .filter(|p| matches!(&p.transport, Transport::Tcp(t) if t.flags == TcpFlags::SYN))
            .count();
        let synacks = pkts
            .iter()
            .filter(|p| matches!(&p.transport, Transport::Tcp(t) if t.flags == TcpFlags::SYN_ACK))
            .count();
        let fins = pkts
            .iter()
            .filter(
                |p| matches!(&p.transport, Transport::Tcp(t) if t.flags.contains(TcpFlags::FIN)),
            )
            .count();
        assert!(syns > 0);
        // Most SYNs are answered (some flows are cut by the horizon).
        assert!(synacks * 10 > syns * 7, "syns={syns} synacks={synacks}");
        assert!(fins > 0);
    }

    #[test]
    fn dns_traffic_has_queries_and_responses() {
        let cfg = BackgroundConfig::small();
        let pkts = generate(&cfg, 7);
        let queries = pkts
            .iter()
            .filter(|p| matches!(&p.app, sonata_packet::AppLayer::Dns(d) if !d.is_response))
            .count();
        let responses = pkts
            .iter()
            .filter(|p| matches!(&p.app, sonata_packet::AppLayer::Dns(d) if d.is_response))
            .count();
        assert!(queries > 0);
        assert_eq!(queries, responses);
    }
}
