//! Attack ("needle") injectors, one per catalog query.
//!
//! Each injector produces a timestamped packet vector; [`Attack`] is
//! the parameterized description. Victims and attackers are explicit
//! addresses so tests and experiment harnesses can assert detection of
//! exactly the injected entity.

use crate::distributions::exponential;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sonata_packet::dns::DnsQType;
use sonata_packet::{DnsHeader, DnsRecord, Packet, PacketBuilder, TcpFlags};

/// A parameterized attack to inject into a trace.
#[derive(Debug, Clone)]
pub enum Attack {
    /// SYN flood: many spoofed sources send bare SYNs to one victim
    /// (detected by queries 1 and 6).
    SynFlood {
        /// Target address.
        victim: u32,
        /// Target port.
        port: u16,
        /// Number of SYN packets.
        packets: usize,
        /// Number of distinct spoofed sources to rotate through.
        sources: usize,
        /// Fraction of flood packets sent as bare ACKs — the few
        /// handshakes the victim's backlog still completes. Keeps the
        /// victim visible on both sides of SYN/ACK join queries.
        ack_fraction: f64,
        /// Fraction sent as FIN/ACK (connections torn down), for the
        /// incomplete-flows join.
        fin_fraction: f64,
        /// Attack start, milliseconds.
        start_ms: u64,
        /// Attack duration, milliseconds.
        duration_ms: u64,
    },
    /// Port scan: one scanner probes many ports on a few hosts
    /// (query 4).
    PortScan {
        /// Scanner address.
        scanner: u32,
        /// Scanned hosts.
        targets: Vec<u32>,
        /// Number of ports probed per host, starting at 1.
        ports: u16,
        /// Attack start, milliseconds.
        start_ms: u64,
        /// Attack duration, milliseconds.
        duration_ms: u64,
    },
    /// Superspreader: one source contacts many destinations (query 3).
    Superspreader {
        /// Spreader address.
        source: u32,
        /// Destinations contacted.
        destinations: Vec<u32>,
        /// Packets per destination.
        packets_per_dest: usize,
        /// Attack start, milliseconds.
        start_ms: u64,
        /// Attack duration, milliseconds.
        duration_ms: u64,
    },
    /// Volumetric DDoS: many sources flood one victim (query 5).
    Ddos {
        /// Target address.
        victim: u32,
        /// Attacking sources.
        sources: Vec<u32>,
        /// Packets per source.
        packets_per_source: usize,
        /// Attack start, milliseconds.
        start_ms: u64,
        /// Attack duration, milliseconds.
        duration_ms: u64,
    },
    /// SSH brute force: fixed-size login attempts to port 22 (query 2).
    SshBruteForce {
        /// Victim SSH server.
        victim: u32,
        /// Attacking hosts.
        attackers: Vec<u32>,
        /// Attempts per attacker.
        attempts: usize,
        /// The (fixed) payload size of each attempt.
        attempt_len: usize,
        /// Attack start, milliseconds.
        start_ms: u64,
        /// Attack duration, milliseconds.
        duration_ms: u64,
    },
    /// Slowloris: many connections, each trickling few bytes (query 8).
    Slowloris {
        /// Victim web server.
        victim: u32,
        /// Attacking host.
        attacker: u32,
        /// Number of concurrent connections (distinct source ports).
        connections: usize,
        /// Tiny keep-alive payload bytes per connection.
        bytes_per_conn: usize,
        /// Attack start, milliseconds.
        start_ms: u64,
        /// Attack duration, milliseconds.
        duration_ms: u64,
    },
    /// DNS tunneling: one client exfiltrates via many unique query
    /// names under one domain (query 9).
    DnsTunneling {
        /// Tunneling client.
        client: u32,
        /// Colluding resolver/server.
        resolver: u32,
        /// Number of unique queries.
        queries: usize,
        /// The tunnel's parent domain.
        domain: String,
        /// Attack start, milliseconds.
        start_ms: u64,
        /// Attack duration, milliseconds.
        duration_ms: u64,
    },
    /// Zorro IoT telnet attack: many similar-sized telnet packets, then
    /// shell commands containing the keyword "zorro" (query 10).
    Zorro {
        /// Compromised IoT device.
        victim: u32,
        /// Attacking host.
        attacker: u32,
        /// Number of brute-force telnet packets.
        telnet_packets: usize,
        /// The fixed telnet packet payload size.
        packet_len: usize,
        /// Attack start, milliseconds.
        start_ms: u64,
        /// When the shell command with the keyword is sent, ms.
        shell_ms: u64,
        /// Number of keyword packets.
        shell_packets: usize,
    },
    /// Fast-flux domain: DNS responses for one domain resolving to
    /// many distinct addresses (the extension query's needle).
    FastFlux {
        /// The malicious domain (full name).
        domain: String,
        /// Resolver answering for it.
        resolver: u32,
        /// Querying clients.
        clients: Vec<u32>,
        /// Distinct resolved addresses cycled through.
        resolved_ips: u32,
        /// Total responses emitted.
        responses: usize,
        /// Attack start, milliseconds.
        start_ms: u64,
        /// Attack duration, milliseconds.
        duration_ms: u64,
    },
    /// DNS reflection: open resolvers reflect amplified responses at a
    /// victim (query 11).
    DnsReflection {
        /// The victim receiving unsolicited responses.
        victim: u32,
        /// Reflecting resolvers.
        resolvers: Vec<u32>,
        /// Responses per resolver.
        responses_per_resolver: usize,
        /// Amplified answer count per response.
        answers: usize,
        /// Attack start, milliseconds.
        start_ms: u64,
        /// Attack duration, milliseconds.
        duration_ms: u64,
    },
}

impl Attack {
    /// A short stable label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            Attack::SynFlood { .. } => "syn_flood",
            Attack::PortScan { .. } => "port_scan",
            Attack::Superspreader { .. } => "superspreader",
            Attack::Ddos { .. } => "ddos",
            Attack::SshBruteForce { .. } => "ssh_brute_force",
            Attack::Slowloris { .. } => "slowloris",
            Attack::DnsTunneling { .. } => "dns_tunneling",
            Attack::Zorro { .. } => "zorro",
            Attack::FastFlux { .. } => "fast_flux",
            Attack::DnsReflection { .. } => "dns_reflection",
        }
    }

    /// Generate the attack's packets, deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> Vec<Packet> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::new();
        match self {
            Attack::SynFlood {
                victim,
                port,
                packets,
                sources,
                ack_fraction,
                fin_fraction,
                start_ms,
                duration_ms,
            } => {
                let sources = (*sources).max(1);
                for i in 0..*packets {
                    let src = 0xc610_0000u32 | (rng.gen_range(0..sources) as u32);
                    let ts = spread(&mut rng, i, *packets, *start_ms, *duration_ms);
                    let roll: f64 = rng.gen();
                    let flags = if roll < *ack_fraction {
                        TcpFlags::ACK
                    } else if roll < *ack_fraction + *fin_fraction {
                        TcpFlags::FIN.union(TcpFlags::ACK)
                    } else {
                        TcpFlags::SYN
                    };
                    out.push(
                        PacketBuilder::tcp_raw(src, rng.gen_range(1024..65535), *victim, *port)
                            .flags(flags)
                            .ts_nanos(ts)
                            .build(),
                    );
                }
            }
            Attack::PortScan {
                scanner,
                targets,
                ports,
                start_ms,
                duration_ms,
            } => {
                let total = targets.len() * *ports as usize;
                let mut i = 0;
                for target in targets {
                    for port in 1..=*ports {
                        let ts = spread(&mut rng, i, total, *start_ms, *duration_ms);
                        out.push(
                            PacketBuilder::tcp_raw(*scanner, 40000, *target, port)
                                .flags(TcpFlags::SYN)
                                .ts_nanos(ts)
                                .build(),
                        );
                        i += 1;
                    }
                }
            }
            Attack::Superspreader {
                source,
                destinations,
                packets_per_dest,
                start_ms,
                duration_ms,
            } => {
                let total = destinations.len() * *packets_per_dest;
                let mut i = 0;
                for _ in 0..*packets_per_dest {
                    for dst in destinations {
                        let ts = spread(&mut rng, i, total, *start_ms, *duration_ms);
                        out.push(
                            PacketBuilder::tcp_raw(*source, rng.gen_range(1024..65535), *dst, 80)
                                .flags(TcpFlags::SYN)
                                .ts_nanos(ts)
                                .build(),
                        );
                        i += 1;
                    }
                }
            }
            Attack::Ddos {
                victim,
                sources,
                packets_per_source,
                start_ms,
                duration_ms,
            } => {
                let total = sources.len() * *packets_per_source;
                let mut i = 0;
                for _ in 0..*packets_per_source {
                    for src in sources {
                        let ts = spread(&mut rng, i, total, *start_ms, *duration_ms);
                        out.push(
                            PacketBuilder::udp_raw(*src, rng.gen_range(1024..65535), *victim, 80)
                                .payload(vec![0u8; 512])
                                .ts_nanos(ts)
                                .build(),
                        );
                        i += 1;
                    }
                }
            }
            Attack::SshBruteForce {
                victim,
                attackers,
                attempts,
                attempt_len,
                start_ms,
                duration_ms,
            } => {
                let total = attackers.len() * *attempts;
                let mut i = 0;
                for _ in 0..*attempts {
                    for atk in attackers {
                        let ts = spread(&mut rng, i, total, *start_ms, *duration_ms);
                        out.push(
                            PacketBuilder::tcp_raw(*atk, rng.gen_range(1024..65535), *victim, 22)
                                .flags(TcpFlags::PSH_ACK)
                                .payload(vec![0x41; *attempt_len])
                                .ts_nanos(ts)
                                .build(),
                        );
                        i += 1;
                    }
                }
            }
            Attack::Slowloris {
                victim,
                attacker,
                connections,
                bytes_per_conn,
                start_ms,
                duration_ms,
            } => {
                // Each connection: SYN + a trickle of tiny segments
                // from a distinct source port.
                let mut i = 0;
                let total = connections * 3;
                for c in 0..*connections {
                    let sport = 10000 + (c as u16 % 50000);
                    let ts = spread(&mut rng, i, total, *start_ms, *duration_ms);
                    out.push(
                        PacketBuilder::tcp_raw(*attacker, sport, *victim, 80)
                            .flags(TcpFlags::SYN)
                            .ts_nanos(ts)
                            .build(),
                    );
                    i += 1;
                    for _ in 0..2 {
                        let ts = spread(&mut rng, i, total, *start_ms, *duration_ms);
                        out.push(
                            PacketBuilder::tcp_raw(*attacker, sport, *victim, 80)
                                .flags(TcpFlags::PSH_ACK)
                                .payload(vec![0x58; (*bytes_per_conn / 2).max(1)])
                                .ts_nanos(ts)
                                .build(),
                        );
                        i += 1;
                    }
                }
            }
            Attack::DnsTunneling {
                client,
                resolver,
                queries,
                domain,
                start_ms,
                duration_ms,
            } => {
                for i in 0..*queries {
                    let ts = spread(&mut rng, i, *queries, *start_ms, *duration_ms);
                    let chunk: String = (0..12)
                        .map(|_| char::from(b'a' + rng.gen_range(0..26u8)))
                        .collect();
                    let qname = format!("{chunk}{i}.{domain}");
                    let msg = DnsHeader::query(i as u16, &qname, DnsQType::Txt);
                    out.push(
                        PacketBuilder::dns(*client, *resolver, msg)
                            .ts_nanos(ts)
                            .build(),
                    );
                }
            }
            Attack::Zorro {
                victim,
                attacker,
                telnet_packets,
                packet_len,
                start_ms,
                shell_ms,
                shell_packets,
            } => {
                let brute_dur_ms = shell_ms.saturating_sub(*start_ms).max(1);
                for i in 0..*telnet_packets {
                    let ts = spread(&mut rng, i, *telnet_packets, *start_ms, brute_dur_ms);
                    out.push(
                        PacketBuilder::tcp_raw(*attacker, 48000, *victim, 23)
                            .flags(TcpFlags::PSH_ACK)
                            .payload(vec![0x42; *packet_len])
                            .ts_nanos(ts)
                            .build(),
                    );
                }
                for i in 0..*shell_packets {
                    let ts = (*shell_ms + i as u64 * 50) * 1_000_000;
                    out.push(
                        PacketBuilder::tcp_raw(*attacker, 48000, *victim, 23)
                            .flags(TcpFlags::PSH_ACK)
                            .payload(&b"sh -c zorro --spread"[..])
                            .ts_nanos(ts)
                            .build(),
                    );
                }
            }
            Attack::FastFlux {
                domain,
                resolver,
                clients,
                resolved_ips,
                responses,
                start_ms,
                duration_ms,
            } => {
                for i in 0..*responses {
                    let ts = spread(&mut rng, i, *responses, *start_ms, *duration_ms);
                    let ip = 0x05000000u32 + (i as u32 % resolved_ips.max(&1).to_owned());
                    let record = DnsRecord {
                        name: domain.clone(),
                        rtype: DnsQType::A,
                        ttl: 5, // fast flux: tiny TTLs
                        rdata: ip.to_be_bytes().to_vec(),
                    };
                    let msg = DnsHeader::response(i as u16, domain, DnsQType::A, vec![record]);
                    let client = clients[i % clients.len().max(1)];
                    out.push(
                        PacketBuilder::dns(*resolver, client, msg)
                            .ts_nanos(ts)
                            .build(),
                    );
                }
            }
            Attack::DnsReflection {
                victim,
                resolvers,
                responses_per_resolver,
                answers,
                start_ms,
                duration_ms,
            } => {
                let total = resolvers.len() * *responses_per_resolver;
                let mut i = 0;
                for resolver in resolvers {
                    for _ in 0..*responses_per_resolver {
                        let ts = spread(&mut rng, i, total, *start_ms, *duration_ms);
                        let records = (0..*answers)
                            .map(|a| DnsRecord {
                                name: "amplify.example".to_string(),
                                rtype: DnsQType::Txt,
                                ttl: 300,
                                rdata: vec![a as u8; 64],
                            })
                            .collect();
                        let msg = DnsHeader::response(
                            rng.gen(),
                            "amplify.example",
                            DnsQType::Any,
                            records,
                        );
                        out.push(
                            PacketBuilder::dns(*resolver, *victim, msg)
                                .ts_nanos(ts)
                                .build(),
                        );
                        i += 1;
                    }
                }
            }
        }
        out.sort_by_key(|p| p.ts_nanos);
        out
    }
}

/// Timestamp for packet `i` of `total`, spread over the attack window
/// with a little exponential jitter.
fn spread<R: Rng + ?Sized>(rng: &mut R, i: usize, total: usize, start_ms: u64, dur_ms: u64) -> u64 {
    let base = start_ms * 1_000_000;
    let span = dur_ms.max(1) * 1_000_000;
    let slot = span * i as u64 / total.max(1) as u64;
    let jitter = (exponential(rng, 0.2) * 1_000_000.0) as u64;
    base + slot + jitter
}

#[cfg(test)]
mod tests {
    use super::*;
    use sonata_packet::Transport;

    const VICTIM: u32 = 0x63070019; // 99.7.0.25, the paper's case study
    const ATTACKER: u32 = 0x0b16212c;

    #[test]
    fn syn_flood_shape() {
        let a = Attack::SynFlood {
            victim: VICTIM,
            port: 80,
            packets: 500,
            sources: 100,
            ack_fraction: 0.05,
            fin_fraction: 0.05,
            start_ms: 100,
            duration_ms: 1000,
        };
        let pkts = a.generate(1);
        assert_eq!(pkts.len(), 500);
        let mut syns = 0;
        let mut acks = 0;
        let mut fins = 0;
        for p in &pkts {
            assert_eq!(p.ipv4.dst, VICTIM);
            match &p.transport {
                Transport::Tcp(t) => match t.flags {
                    TcpFlags::SYN => syns += 1,
                    TcpFlags::ACK => acks += 1,
                    f if f.contains(TcpFlags::FIN) => fins += 1,
                    other => panic!("unexpected flags {other:?}"),
                },
                other => panic!("not TCP: {other:?}"),
            }
            assert!(p.ts_nanos >= 100_000_000);
        }
        assert!(syns > 400, "syns={syns}");
        assert!(acks > 0 && fins > 0);
        assert!(syns > acks + fins);
        let distinct_srcs: std::collections::BTreeSet<u32> =
            pkts.iter().map(|p| p.ipv4.src).collect();
        assert!(distinct_srcs.len() > 50, "{}", distinct_srcs.len());
    }

    #[test]
    fn port_scan_covers_all_ports() {
        let a = Attack::PortScan {
            scanner: ATTACKER,
            targets: vec![VICTIM, VICTIM + 1],
            ports: 50,
            start_ms: 0,
            duration_ms: 500,
        };
        let pkts = a.generate(2);
        assert_eq!(pkts.len(), 100);
        let ports: std::collections::BTreeSet<u16> = pkts
            .iter()
            .filter_map(|p| match &p.transport {
                Transport::Tcp(t) => Some(t.dst_port),
                _ => None,
            })
            .collect();
        assert_eq!(ports.len(), 50);
    }

    #[test]
    fn zorro_timing_matches_case_study() {
        // Paper: brute force from t=10s, shell access at t=20s.
        let a = Attack::Zorro {
            victim: VICTIM,
            attacker: ATTACKER,
            telnet_packets: 100,
            packet_len: 32,
            start_ms: 10_000,
            shell_ms: 20_000,
            shell_packets: 5,
        };
        let pkts = a.generate(3);
        assert_eq!(pkts.len(), 105);
        let with_keyword: Vec<&Packet> = pkts
            .iter()
            .filter(|p| p.payload.windows(5).any(|w| w == b"zorro"))
            .collect();
        assert_eq!(with_keyword.len(), 5);
        for p in &with_keyword {
            assert!(p.ts_nanos >= 20_000 * 1_000_000);
        }
        // All telnet packets before the shell have identical length.
        let lens: std::collections::BTreeSet<usize> = pkts
            .iter()
            .filter(|p| p.ts_nanos < 20_000_000_000)
            .map(|p| p.payload.len())
            .collect();
        assert_eq!(lens.len(), 1);
    }

    #[test]
    fn dns_tunneling_names_unique() {
        let a = Attack::DnsTunneling {
            client: ATTACKER,
            resolver: 0x08080808,
            queries: 80,
            domain: "tunnel.evil".to_string(),
            start_ms: 0,
            duration_ms: 1000,
        };
        let pkts = a.generate(4);
        let names: std::collections::BTreeSet<String> = pkts
            .iter()
            .filter_map(|p| match &p.app {
                sonata_packet::AppLayer::Dns(d) => d.first_qname().map(String::from),
                _ => None,
            })
            .collect();
        assert_eq!(names.len(), 80);
        assert!(names.iter().all(|n| n.ends_with(".tunnel.evil")));
    }

    #[test]
    fn dns_reflection_is_responses_to_victim() {
        let a = Attack::DnsReflection {
            victim: VICTIM,
            resolvers: vec![1, 2, 3],
            responses_per_resolver: 10,
            answers: 4,
            start_ms: 0,
            duration_ms: 100,
        };
        let pkts = a.generate(5);
        assert_eq!(pkts.len(), 30);
        for p in &pkts {
            assert_eq!(p.ipv4.dst, VICTIM);
            match &p.app {
                sonata_packet::AppLayer::Dns(d) => {
                    assert!(d.is_response);
                    assert_eq!(d.answers.len(), 4);
                }
                other => panic!("not DNS: {other:?}"),
            }
        }
    }

    #[test]
    fn slowloris_many_ports_little_data() {
        let a = Attack::Slowloris {
            victim: VICTIM,
            attacker: ATTACKER,
            connections: 60,
            bytes_per_conn: 8,
            start_ms: 0,
            duration_ms: 2000,
        };
        let pkts = a.generate(6);
        let ports: std::collections::BTreeSet<u16> = pkts
            .iter()
            .filter_map(|p| match &p.transport {
                Transport::Tcp(t) => Some(t.src_port),
                _ => None,
            })
            .collect();
        assert_eq!(ports.len(), 60);
        let total_bytes: usize = pkts.iter().map(|p| p.payload.len()).sum();
        assert!(total_bytes < 60 * 20, "total={total_bytes}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = Attack::Ddos {
            victim: VICTIM,
            sources: (0..50).map(|i| 0x01000000 + i).collect(),
            packets_per_source: 4,
            start_ms: 0,
            duration_ms: 100,
        };
        assert_eq!(a.generate(7), a.generate(7));
    }

    #[test]
    fn ssh_brute_force_fixed_length() {
        let a = Attack::SshBruteForce {
            victim: VICTIM,
            attackers: vec![1, 2, 3],
            attempts: 30,
            attempt_len: 48,
            start_ms: 0,
            duration_ms: 300,
        };
        let pkts = a.generate(8);
        assert_eq!(pkts.len(), 90);
        for p in &pkts {
            assert_eq!(p.payload.len(), 48);
            match &p.transport {
                Transport::Tcp(t) => assert_eq!(t.dst_port, 22),
                _ => panic!("not tcp"),
            }
        }
    }
}
