//! Traces: merged, timestamp-sorted packet sequences, with window
//! iteration, summary statistics, a binary file format, and the
//! standard evaluation workload used by the experiment harnesses.

use crate::attacks::Attack;
use crate::background::{self, BackgroundConfig};
use sonata_packet::{Packet, PacketArena, TcpFlags, Transport};
use std::collections::BTreeSet;
use std::io::{self, Read, Write};
use std::path::Path;

/// A packet trace, sorted by timestamp.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    packets: Vec<Packet>,
}

impl Trace {
    /// Wrap a packet vector (sorted by timestamp if not already).
    ///
    /// The sort is **stable**: packets sharing a timestamp keep their
    /// input order. Arena ingest iterates packets in trace order, so
    /// equal-timestamp order is part of the determinism contract —
    /// `sort_by_key` (a stable sort) must never be swapped for
    /// `sort_unstable_by_key` here.
    pub fn new(mut packets: Vec<Packet>) -> Self {
        if !packets.windows(2).all(|w| w[0].ts_nanos <= w[1].ts_nanos) {
            packets.sort_by_key(|p| p.ts_nanos);
        }
        Trace { packets }
    }

    /// Generate a pure background trace.
    pub fn background(cfg: &BackgroundConfig, seed: u64) -> Self {
        Trace {
            packets: background::generate(cfg, seed),
        }
    }

    /// The packets, in time order.
    pub fn packets(&self) -> &[Packet] {
        &self.packets
    }

    /// Number of packets.
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// Total bytes on the wire.
    pub fn total_bytes(&self) -> u64 {
        self.packets.iter().map(|p| p.wire_len() as u64).sum()
    }

    /// Timestamp of the last packet, nanoseconds (0 when empty).
    pub fn duration_ns(&self) -> u64 {
        self.packets.last().map(|p| p.ts_nanos).unwrap_or(0)
    }

    /// Merge an attack into the trace (stable merge of two sorted runs).
    pub fn inject(&mut self, attack: &Attack, seed: u64) {
        let extra = attack.generate(seed);
        self.merge(extra);
    }

    /// Merge already-sorted packets into the trace.
    pub fn merge(&mut self, other: Vec<Packet>) {
        let mut merged = Vec::with_capacity(self.packets.len() + other.len());
        let mut a = std::mem::take(&mut self.packets).into_iter().peekable();
        let mut b = other.into_iter().peekable();
        loop {
            match (a.peek(), b.peek()) {
                (Some(x), Some(y)) => {
                    if x.ts_nanos <= y.ts_nanos {
                        merged.push(a.next().expect("peeked"));
                    } else {
                        merged.push(b.next().expect("peeked"));
                    }
                }
                (Some(_), None) => merged.push(a.next().expect("peeked")),
                (None, Some(_)) => merged.push(b.next().expect("peeked")),
                (None, None) => break,
            }
        }
        self.packets = merged;
    }

    /// Iterate tumbling windows of `window_ms`: yields `(window_index,
    /// packets)` for every non-empty window.
    pub fn windows(&self, window_ms: u64) -> impl Iterator<Item = (u64, &[Packet])> {
        let window_ns = window_ms.max(1) * 1_000_000;
        let mut starts: Vec<(u64, usize)> = Vec::new();
        let mut current: Option<u64> = None;
        for (i, p) in self.packets.iter().enumerate() {
            let w = p.ts_nanos / window_ns;
            if current != Some(w) {
                starts.push((w, i));
                current = Some(w);
            }
        }
        let packets = &self.packets;
        let n = packets.len();
        (0..starts.len()).map(move |k| {
            let (w, lo) = starts[k];
            let hi = starts.get(k + 1).map(|(_, i)| *i).unwrap_or(n);
            (w, &packets[lo..hi])
        })
    }

    /// Summary statistics.
    pub fn stats(&self) -> TraceStats {
        let mut s = TraceStats::default();
        let mut src: BTreeSet<u32> = BTreeSet::new();
        let mut dst: BTreeSet<u32> = BTreeSet::new();
        for p in &self.packets {
            s.packets += 1;
            s.bytes += p.wire_len() as u64;
            src.insert(p.ipv4.src);
            dst.insert(p.ipv4.dst);
            match &p.transport {
                Transport::Tcp(t) => {
                    s.tcp += 1;
                    if t.flags == TcpFlags::SYN {
                        s.syns += 1;
                    }
                }
                Transport::Udp(_) => s.udp += 1,
                Transport::Icmp(_) => s.icmp += 1,
                Transport::Opaque => s.other += 1,
            }
        }
        s.distinct_sources = src.len();
        s.distinct_destinations = dst.len();
        s.duration_ns = self.duration_ns();
        s
    }

    /// Serialize to the binary trace format: a magic header, then one
    /// length-prefixed record per packet (`ts_nanos: u64 LE`,
    /// `len: u32 LE`, raw bytes from the IPv4 header).
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        w.write_all(b"SNTRACE1")?;
        w.write_all(&(self.packets.len() as u64).to_le_bytes())?;
        for p in &self.packets {
            let bytes = p.encode();
            w.write_all(&p.ts_nanos.to_le_bytes())?;
            w.write_all(&(bytes.len() as u32).to_le_bytes())?;
            w.write_all(&bytes)?;
        }
        Ok(())
    }

    /// Deserialize from the binary trace format.
    pub fn read_from<R: Read>(r: &mut R) -> io::Result<Self> {
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != b"SNTRACE1" {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "bad trace magic",
            ));
        }
        let mut buf8 = [0u8; 8];
        r.read_exact(&mut buf8)?;
        let count = u64::from_le_bytes(buf8) as usize;
        if count > 1 << 32 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "absurd packet count",
            ));
        }
        let mut packets = Vec::with_capacity(count.min(1 << 24));
        let mut buf4 = [0u8; 4];
        for _ in 0..count {
            r.read_exact(&mut buf8)?;
            let ts = u64::from_le_bytes(buf8);
            r.read_exact(&mut buf4)?;
            let len = u32::from_le_bytes(buf4) as usize;
            if len > 65_536 {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "packet too large",
                ));
            }
            let mut bytes = vec![0u8; len];
            r.read_exact(&mut bytes)?;
            let mut pkt = Packet::decode(&bytes)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
            pkt.ts_nanos = ts;
            packets.push(pkt);
        }
        Ok(Trace::new(packets))
    }

    /// Write to a file path.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let mut f = io::BufWriter::new(std::fs::File::create(path)?);
        self.write_to(&mut f)
    }

    /// Read from a file path.
    pub fn load(path: impl AsRef<Path>) -> io::Result<Self> {
        let mut f = io::BufReader::new(std::fs::File::open(path)?);
        Self::read_from(&mut f)
    }

    /// Build a contiguous [`PacketArena`] from the trace, preserving
    /// trace order (including the stable equal-timestamp order pinned
    /// by [`Trace::new`]).
    pub fn to_arena(&self) -> PacketArena {
        PacketArena::from_packets(&self.packets)
    }

    /// Decode the binary trace format straight into a [`PacketArena`]
    /// without materializing owned packets: each record's wire bytes
    /// are appended to the arena buffer verbatim. Record order in the
    /// file is preserved; files written by [`Trace::write_to`] are
    /// already timestamp-sorted.
    ///
    /// Each record is still validated as a decodable IPv4 packet so a
    /// corrupt file fails here rather than inside the switch.
    pub fn read_arena_from<R: Read>(r: &mut R) -> io::Result<PacketArena> {
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != b"SNTRACE1" {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "bad trace magic",
            ));
        }
        let mut buf8 = [0u8; 8];
        r.read_exact(&mut buf8)?;
        let count = u64::from_le_bytes(buf8) as usize;
        if count > 1 << 32 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "absurd packet count",
            ));
        }
        let mut arena = PacketArena::with_capacity(count.min(1 << 24), 0);
        let mut buf4 = [0u8; 4];
        let mut bytes = Vec::new();
        for _ in 0..count {
            r.read_exact(&mut buf8)?;
            let ts = u64::from_le_bytes(buf8);
            r.read_exact(&mut buf4)?;
            let len = u32::from_le_bytes(buf4) as usize;
            if len > 65_536 {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "packet too large",
                ));
            }
            bytes.resize(len, 0);
            r.read_exact(&mut bytes)?;
            // Full decode, not just an IPv4 sanity check: batch
            // execution defers packet materialization to ship time and
            // relies on every arena record being decodable.
            Packet::decode(&bytes)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
            arena.push_record(ts, &bytes);
        }
        Ok(arena)
    }

    /// Read a file straight into a [`PacketArena`].
    pub fn load_arena(path: impl AsRef<Path>) -> io::Result<PacketArena> {
        let mut f = io::BufReader::new(std::fs::File::open(path)?);
        Self::read_arena_from(&mut f)
    }
}

/// Summary statistics of a trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Total packets.
    pub packets: usize,
    /// Total wire bytes.
    pub bytes: u64,
    /// TCP packets.
    pub tcp: usize,
    /// UDP packets.
    pub udp: usize,
    /// ICMP packets.
    pub icmp: usize,
    /// Other-protocol packets.
    pub other: usize,
    /// Bare-SYN packets.
    pub syns: usize,
    /// Distinct source addresses.
    pub distinct_sources: usize,
    /// Distinct destination addresses.
    pub distinct_destinations: usize,
    /// Last timestamp, nanoseconds.
    pub duration_ns: u64,
}

/// The standard evaluation workload: background traffic plus one
/// needle per catalog query, with fixed victims. Mirrors the paper's
/// setup of replaying a CAIDA trace with attacks present.
///
/// `scale` multiplies the background packet budget (1.0 ≈ 100 k packets
/// per 3 s window — a laptop-friendly stand-in for the paper's ~60 M).
#[derive(Debug, Clone)]
pub struct EvaluationTrace {
    /// The merged trace.
    pub trace: Trace,
    /// The injected attacks, for asserting detection.
    pub attacks: Vec<Attack>,
}

/// Fixed, recognizable actor addresses used by the evaluation workload.
pub mod actors {
    /// SYN-flood & case-study victim (99.7.0.25, as in the paper's Fig. 9).
    pub const SYN_FLOOD_VICTIM: u32 = 0x63070019;
    /// Port-scan scanner.
    pub const SCANNER: u32 = 0xc0a84401;
    /// Superspreader source.
    pub const SPREADER: u32 = 0xc6336401;
    /// DDoS victim.
    pub const DDOS_VICTIM: u32 = 0x63070119;
    /// SSH brute-force victim.
    pub const SSH_VICTIM: u32 = 0x63070219;
    /// Slowloris victim.
    pub const SLOWLORIS_VICTIM: u32 = 0x63070319;
    /// Slowloris attacker.
    pub const SLOWLORIS_ATTACKER: u32 = 0xc6481e05;
    /// DNS-tunnel client.
    pub const TUNNEL_CLIENT: u32 = 0xc6481f06;
    /// DNS-tunnel resolver.
    pub const TUNNEL_RESOLVER: u32 = 0x08080404;
    /// Zorro victim (the paper's 99.7.0.25).
    pub const ZORRO_VICTIM: u32 = 0x63070019;
    /// Zorro attacker.
    pub const ZORRO_ATTACKER: u32 = 0xc6482007;
    /// DNS-reflection victim.
    pub const REFLECTION_VICTIM: u32 = 0x63070419;
}

impl EvaluationTrace {
    /// Build the workload over `windows` windows of `window_ms`, at the
    /// given background scale, deterministically from `seed`.
    pub fn generate(seed: u64, windows: u32, window_ms: u64, scale: f64) -> Self {
        use actors::*;
        let duration_ms = windows as u64 * window_ms;
        let cfg = BackgroundConfig {
            duration_ms,
            packets: ((100_000.0 * scale) as usize).max(1_000) * windows as usize,
            ..BackgroundConfig::default()
        };
        let mut trace = Trace::background(&cfg, seed);
        let span = duration_ms.saturating_sub(window_ms / 2).max(1);
        let scale_n = |n: usize| ((n as f64) * scale.sqrt().max(0.2)) as usize;
        let attacks = vec![
            Attack::SynFlood {
                victim: SYN_FLOOD_VICTIM,
                port: 80,
                packets: scale_n(3_000) * windows as usize,
                sources: 4_000,
                ack_fraction: 0.04,
                fin_fraction: 0.02,
                start_ms: 0,
                duration_ms: span,
            },
            Attack::SshBruteForce {
                victim: SSH_VICTIM,
                attackers: (0..80u32).map(|i| 0xc0a80a01 + i).collect(),
                attempts: 3 * windows as usize,
                attempt_len: 48,
                start_ms: 0,
                duration_ms: span,
            },
            Attack::Superspreader {
                source: SPREADER,
                destinations: (0..200u32).map(|i| 0x17000000 + i * 7).collect(),
                packets_per_dest: windows as usize,
                start_ms: 0,
                duration_ms: span,
            },
            Attack::PortScan {
                scanner: SCANNER,
                targets: vec![0x63070519, 0x6307051a],
                ports: 120,
                start_ms: 0,
                duration_ms: span,
            },
            Attack::Ddos {
                victim: DDOS_VICTIM,
                sources: (0..300u32).map(|i| 0x2d000000 + i * 13).collect(),
                packets_per_source: windows as usize,
                start_ms: 0,
                duration_ms: span,
            },
            Attack::Slowloris {
                victim: SLOWLORIS_VICTIM,
                attacker: SLOWLORIS_ATTACKER,
                connections: scale_n(200) * windows as usize,
                bytes_per_conn: 6,
                start_ms: 0,
                duration_ms: span,
            },
            Attack::DnsTunneling {
                client: TUNNEL_CLIENT,
                resolver: TUNNEL_RESOLVER,
                queries: scale_n(150) * windows as usize,
                domain: "upd.evil-cdn.example".to_string(),
                start_ms: 0,
                duration_ms: span,
            },
            Attack::DnsReflection {
                victim: REFLECTION_VICTIM,
                resolvers: (0..50u32).map(|i| 0x08080000 + i).collect(),
                responses_per_resolver: 4 * windows as usize,
                answers: 6,
                start_ms: 0,
                duration_ms: span,
            },
        ];
        for (i, a) in attacks.iter().enumerate() {
            trace.inject(a, seed.wrapping_add(100 + i as u64));
        }
        EvaluationTrace { trace, attacks }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_trace(seed: u64) -> Trace {
        Trace::background(&BackgroundConfig::small(), seed)
    }

    #[test]
    fn windows_partition_the_trace() {
        let t = small_trace(1);
        let total: usize = t.windows(500).map(|(_, pkts)| pkts.len()).sum();
        assert_eq!(total, t.len());
        // Window indices strictly increase, packets stay in their window.
        let mut last_w = None;
        for (w, pkts) in t.windows(500) {
            if let Some(lw) = last_w {
                assert!(w > lw);
            }
            last_w = Some(w);
            for p in pkts {
                assert_eq!(p.ts_nanos / 500_000_000, w);
            }
        }
    }

    #[test]
    fn merge_keeps_order() {
        let mut t = small_trace(2);
        let n = t.len();
        t.inject(
            &Attack::SynFlood {
                victim: 0x63070019,
                port: 80,
                packets: 500,
                sources: 50,
                ack_fraction: 0.05,
                fin_fraction: 0.05,
                start_ms: 500,
                duration_ms: 1000,
            },
            9,
        );
        assert_eq!(t.len(), n + 500);
        assert!(t
            .packets()
            .windows(2)
            .all(|w| w[0].ts_nanos <= w[1].ts_nanos));
    }

    #[test]
    fn stats_are_consistent() {
        let t = small_trace(3);
        let s = t.stats();
        assert_eq!(s.packets, t.len());
        assert_eq!(s.tcp + s.udp + s.icmp + s.other, s.packets);
        assert!(s.syns > 0 && s.syns < s.tcp);
        assert!(s.distinct_sources > 10);
        assert_eq!(s.bytes, t.total_bytes());
    }

    #[test]
    fn file_roundtrip() {
        let t = small_trace(4);
        let mut buf = Vec::new();
        t.write_to(&mut buf).unwrap();
        let back = Trace::read_from(&mut &buf[..]).unwrap();
        assert_eq!(back.len(), t.len());
        for (a, b) in t.packets().iter().zip(back.packets()).take(200) {
            assert_eq!(a.ts_nanos, b.ts_nanos);
            assert_eq!(a.ipv4.src, b.ipv4.src);
            assert_eq!(a.payload.len(), b.payload.len());
        }
    }

    #[test]
    fn file_rejects_garbage() {
        assert!(Trace::read_from(&mut &b"NOTATRACE"[..]).is_err());
        let mut buf = Vec::new();
        small_trace(5).write_to(&mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(Trace::read_from(&mut &buf[..]).is_err());
    }

    #[test]
    fn unsorted_input_is_sorted() {
        let cfg = BackgroundConfig::small();
        let mut pkts = background::generate(&cfg, 6);
        pkts.reverse();
        let t = Trace::new(pkts);
        assert!(t
            .packets()
            .windows(2)
            .all(|w| w[0].ts_nanos <= w[1].ts_nanos));
    }

    #[test]
    fn duplicate_timestamps_keep_input_order() {
        use sonata_packet::PacketBuilder;
        // Many packets sharing timestamps, distinguishable by src port.
        // A stable sort must keep the input order within each group;
        // arena iteration order is pinned to this.
        let mut pkts = Vec::new();
        for port in 0..50u16 {
            for &ts in &[300u64, 100, 200, 100, 300] {
                pkts.push(
                    PacketBuilder::tcp_raw(1, 1_000 + port, 2, 80)
                        .ts_nanos(ts)
                        .build(),
                );
            }
        }
        let expected: Vec<(u64, u16)> = {
            let mut tagged: Vec<(usize, u64, u16)> = pkts
                .iter()
                .enumerate()
                .map(|(i, p)| match &p.transport {
                    Transport::Tcp(t) => (i, p.ts_nanos, t.src_port),
                    _ => unreachable!(),
                })
                .collect();
            tagged.sort_by_key(|&(i, ts, _)| (ts, i)); // reference: explicit stability
            tagged.into_iter().map(|(_, ts, port)| (ts, port)).collect()
        };
        let t = Trace::new(pkts);
        let got: Vec<(u64, u16)> = t
            .packets()
            .iter()
            .map(|p| match &p.transport {
                Transport::Tcp(t) => (p.ts_nanos, t.src_port),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(got, expected);
        // The arena preserves exactly this order.
        let arena = t.to_arena();
        let arena_order: Vec<u64> = arena.index().iter().map(|e| e.ts_nanos).collect();
        let trace_order: Vec<u64> = t.packets().iter().map(|p| p.ts_nanos).collect();
        assert_eq!(arena_order, trace_order);
    }

    #[test]
    fn arena_roundtrips_through_file_format() {
        let t = small_trace(8);
        let mut buf = Vec::new();
        t.write_to(&mut buf).unwrap();
        // Decoding straight into an arena matches building the arena
        // from owned packets, byte for byte.
        let from_file = Trace::read_arena_from(&mut &buf[..]).unwrap();
        let from_trace = t.to_arena();
        assert_eq!(from_file.len(), from_trace.len());
        assert_eq!(from_file.bytes(), from_trace.bytes());
        assert_eq!(from_file.index(), from_trace.index());
        // And arena windows mirror trace windows.
        let aw: Vec<(u64, usize)> = from_file.windows(500).map(|(w, b)| (w, b.len())).collect();
        let tw: Vec<(u64, usize)> = t.windows(500).map(|(w, p)| (w, p.len())).collect();
        assert_eq!(aw, tw);
    }

    #[test]
    fn arena_read_rejects_garbage() {
        assert!(Trace::read_arena_from(&mut &b"NOTATRACE"[..]).is_err());
        let mut buf = Vec::new();
        small_trace(9).write_to(&mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(Trace::read_arena_from(&mut &buf[..]).is_err());
    }

    #[test]
    fn evaluation_trace_contains_all_needles() {
        let ev = EvaluationTrace::generate(7, 2, 3_000, 0.05);
        assert_eq!(ev.attacks.len(), 8);
        let stats = ev.trace.stats();
        assert!(stats.packets > 10_000);
        // The SYN-flood victim appears prominently.
        let flood = ev
            .trace
            .packets()
            .iter()
            .filter(|p| p.ipv4.dst == actors::SYN_FLOOD_VICTIM)
            .count();
        assert!(flood > 500, "flood pkts: {flood}");
    }
}
