//! Hierarchical IPv4 address pools.
//!
//! Real backbone traffic concentrates in a small number of prefixes at
//! every granularity — the property that makes iterative refinement
//! (/8 → /16 → /32) pay off. [`AddressSpace`] reproduces it by growing
//! a random prefix tree: a few /8s, a few /16s under each, a few /24s
//! under each of those, and finally hosts. Popularity is Zipf at the
//! host level, so the per-prefix aggregate is heavy-tailed too.

use crate::distributions::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shape parameters for growing an address pool.
#[derive(Debug, Clone, Copy)]
pub struct AddressSpaceConfig {
    /// Number of /8 prefixes in use.
    pub slash8s: usize,
    /// /16s per /8.
    pub slash16s_per_8: usize,
    /// /24s per /16.
    pub slash24s_per_16: usize,
    /// Hosts per /24.
    pub hosts_per_24: usize,
    /// Zipf exponent for host popularity.
    pub zipf_s: f64,
}

impl Default for AddressSpaceConfig {
    fn default() -> Self {
        AddressSpaceConfig {
            slash8s: 12,
            slash16s_per_8: 8,
            slash24s_per_16: 6,
            hosts_per_24: 16,
            zipf_s: 1.05,
        }
    }
}

/// A pool of IPv4 addresses with hierarchical structure and Zipf
/// popularity.
#[derive(Debug, Clone)]
pub struct AddressSpace {
    hosts: Vec<u32>,
    popularity: Zipf,
}

impl AddressSpace {
    /// Grow a pool from the config, deterministically from `seed`.
    pub fn generate(cfg: &AddressSpaceConfig, seed: u64) -> Self {
        assert!(
            (1..=200).contains(&cfg.slash8s)
                && (1..=256).contains(&cfg.slash16s_per_8)
                && (1..=256).contains(&cfg.slash24s_per_16)
                && (1..=254).contains(&cfg.hosts_per_24),
            "address space config out of range: {cfg:?}"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut hosts = Vec::new();
        let mut used8: Vec<u8> = Vec::new();
        for _ in 0..cfg.slash8s {
            // Distinct, routable-looking first octets (avoid 0, 10, 127, >223).
            let o1 = loop {
                let c: u8 = rng.gen_range(1..=223);
                if c != 10 && c != 127 && !used8.contains(&c) {
                    break c;
                }
            };
            used8.push(o1);
            let mut used16: Vec<u8> = Vec::new();
            for _ in 0..cfg.slash16s_per_8 {
                let o2 = loop {
                    let c: u8 = rng.gen();
                    if !used16.contains(&c) {
                        break c;
                    }
                };
                used16.push(o2);
                let mut used24: Vec<u8> = Vec::new();
                for _ in 0..cfg.slash24s_per_16 {
                    let o3 = loop {
                        let c: u8 = rng.gen();
                        if !used24.contains(&c) {
                            break c;
                        }
                    };
                    used24.push(o3);
                    let mut used_host: Vec<u8> = Vec::new();
                    for _ in 0..cfg.hosts_per_24 {
                        let o4 = loop {
                            let c: u8 = rng.gen_range(1..=254);
                            if !used_host.contains(&c) {
                                break c;
                            }
                        };
                        used_host.push(o4);
                        hosts.push(u32::from_be_bytes([o1, o2, o3, o4]));
                    }
                }
            }
        }
        // Shuffle so Zipf rank is uncorrelated with prefix layout:
        // popular hosts scatter across prefixes rather than all landing
        // in the first /8.
        for i in (1..hosts.len()).rev() {
            let j = rng.gen_range(0..=i);
            hosts.swap(i, j);
        }
        let popularity = Zipf::new(hosts.len(), cfg.zipf_s);
        AddressSpace { hosts, popularity }
    }

    /// Total number of hosts.
    pub fn len(&self) -> usize {
        self.hosts.len()
    }

    /// Whether the pool is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.hosts.is_empty()
    }

    /// All hosts (rank order, not popularity order).
    pub fn hosts(&self) -> &[u32] {
        &self.hosts
    }

    /// Sample an address by Zipf popularity.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        self.hosts[self.popularity.sample(rng)]
    }

    /// Sample an address uniformly (for spoofed attack sources).
    pub fn sample_uniform<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        self.hosts[rng.gen_range(0..self.hosts.len())]
    }

    /// A fixed, deterministic pick: the host at `rank` in popularity
    /// order. Useful for choosing stable attack victims.
    pub fn nth(&self, rank: usize) -> u32 {
        self.hosts[rank % self.hosts.len()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn generates_expected_host_count() {
        let cfg = AddressSpaceConfig {
            slash8s: 3,
            slash16s_per_8: 4,
            slash24s_per_16: 5,
            hosts_per_24: 6,
            zipf_s: 1.0,
        };
        let a = AddressSpace::generate(&cfg, 1);
        assert_eq!(a.len(), 3 * 4 * 5 * 6);
        // All hosts distinct.
        let set: BTreeSet<u32> = a.hosts().iter().copied().collect();
        assert_eq!(set.len(), a.len());
    }

    #[test]
    fn hierarchy_is_concentrated() {
        let a = AddressSpace::generate(&AddressSpaceConfig::default(), 2);
        let cfg = AddressSpaceConfig::default();
        let slash8s: BTreeSet<u32> = a.hosts().iter().map(|h| h >> 24).collect();
        let slash16s: BTreeSet<u32> = a.hosts().iter().map(|h| h >> 16).collect();
        assert_eq!(slash8s.len(), cfg.slash8s);
        assert_eq!(slash16s.len(), cfg.slash8s * cfg.slash16s_per_8);
    }

    #[test]
    fn deterministic_per_seed_distinct_across_seeds() {
        let cfg = AddressSpaceConfig::default();
        let a = AddressSpace::generate(&cfg, 7);
        let b = AddressSpace::generate(&cfg, 7);
        let c = AddressSpace::generate(&cfg, 8);
        assert_eq!(a.hosts(), b.hosts());
        assert_ne!(a.hosts(), c.hosts());
    }

    #[test]
    fn sampling_is_heavy_tailed() {
        use rand::SeedableRng;
        let a = AddressSpace::generate(&AddressSpaceConfig::default(), 3);
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let mut counts: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
        const N: usize = 30_000;
        for _ in 0..N {
            *counts.entry(a.sample(&mut rng)).or_default() += 1;
        }
        let mut freqs: Vec<usize> = counts.values().copied().collect();
        freqs.sort_unstable_by(|x, y| y.cmp(x));
        let top10: usize = freqs.iter().take(10).sum();
        assert!(top10 > N / 5, "top10={top10}");
        // But the tail is broad: many distinct hosts appear.
        assert!(counts.len() > 500, "distinct={}", counts.len());
    }

    #[test]
    fn avoids_reserved_first_octets() {
        let a = AddressSpace::generate(&AddressSpaceConfig::default(), 5);
        for h in a.hosts() {
            let o1 = h >> 24;
            assert!(o1 != 0 && o1 != 10 && o1 != 127 && o1 <= 223, "octet {o1}");
            assert!(h & 0xff != 0 && h & 0xff != 255);
        }
    }

    #[test]
    fn nth_is_stable() {
        let a = AddressSpace::generate(&AddressSpaceConfig::default(), 6);
        assert_eq!(a.nth(0), a.nth(0));
        assert_eq!(a.nth(a.len()), a.nth(0)); // wraps
    }
}
