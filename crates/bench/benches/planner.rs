//! Planner benchmarks: trace-driven cost estimation, the combinatorial
//! planner, and the ILP — the solve-time story of Section 6.1 at
//! laptop scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sonata_ilp::SolveOptions;
use sonata_packet::Packet;
use sonata_planner::costs::{estimate_costs, CostConfig};
use sonata_planner::{plan_ilp, plan_with_costs, PlanMode, PlannerConfig};
use sonata_query::catalog::{self, Thresholds};
use sonata_traffic::{BackgroundConfig, Trace};

fn training() -> Trace {
    Trace::background(
        &BackgroundConfig {
            packets: 20_000,
            ..BackgroundConfig::small()
        },
        3,
    )
}

fn bench_cost_estimation(c: &mut Criterion) {
    let trace = training();
    let windows: Vec<&[Packet]> = trace.windows(3_000).map(|(_, p)| p).collect();
    let q = catalog::newly_opened_tcp_conns(&Thresholds::default());
    let mut group = c.benchmark_group("cost_estimation");
    group.sample_size(20);
    for levels in [2usize, 4, 8] {
        let level_set: Vec<u8> = (1..=levels as u8)
            .map(|i| i * (32 / levels as u8))
            .collect();
        group.bench_with_input(
            BenchmarkId::new("levels", levels),
            &level_set,
            |b, level_set| {
                let cfg = CostConfig {
                    levels: Some(level_set.clone()),
                    ..Default::default()
                };
                b.iter(|| std::hint::black_box(estimate_costs(&q, &windows, &cfg).unwrap()));
            },
        );
    }
    group.finish();
}

fn bench_planners(c: &mut Criterion) {
    let trace = training();
    let windows: Vec<&[Packet]> = trace.windows(3_000).map(|(_, p)| p).collect();
    let queries = catalog::top8(&Thresholds::default());
    let cfg = PlannerConfig {
        cost: CostConfig {
            levels: Some(vec![8, 16, 24, 32]),
            ..Default::default()
        },
        ..PlannerConfig::default()
    };
    let costs: Vec<_> = queries
        .iter()
        .map(|q| estimate_costs(q, &windows, &cfg.cost).unwrap())
        .collect();

    let mut group = c.benchmark_group("planner");
    group.sample_size(30);
    for mode in [PlanMode::MaxDp, PlanMode::FixRef, PlanMode::Sonata] {
        group.bench_with_input(
            BenchmarkId::new("greedy_8q", mode.label()),
            &mode,
            |b, &mode| {
                let cfg = PlannerConfig {
                    mode,
                    ..cfg.clone()
                };
                b.iter(|| std::hint::black_box(plan_with_costs(&queries, &costs, &cfg).unwrap()));
            },
        );
    }
    group.finish();

    // The ILP on a small instance (2 queries, 2 levels).
    let small_cfg = PlannerConfig {
        cost: CostConfig {
            levels: Some(vec![8, 32]),
            ..Default::default()
        },
        max_delay: 3,
        ..PlannerConfig::default()
    };
    let small_costs: Vec<_> = queries[..2]
        .iter()
        .map(|q| estimate_costs(q, &windows, &small_cfg.cost).unwrap())
        .collect();
    let mut group = c.benchmark_group("planner_ilp");
    group.sample_size(10);
    group.bench_function("ilp_2q_2levels", |b| {
        b.iter(|| {
            std::hint::black_box(
                plan_ilp(
                    &queries[..2],
                    &small_costs,
                    &small_cfg,
                    &SolveOptions::default(),
                )
                .unwrap(),
            )
        });
    });
    group.finish();
}

fn bench_milp_solver(c: &mut Criterion) {
    use sonata_ilp::{Model, Sense};
    let mut group = c.benchmark_group("milp_solver");
    group.sample_size(20);
    for n in [10usize, 20, 40] {
        group.bench_with_input(BenchmarkId::new("knapsack_vars", n), &n, |b, &n| {
            b.iter(|| {
                let mut m = Model::new(Sense::Maximize);
                let vars: Vec<_> = (0..n)
                    .map(|i| m.bin_var(&format!("x{i}"), ((i * 7) % 13 + 1) as f64))
                    .collect();
                let coeffs: Vec<_> = vars
                    .iter()
                    .enumerate()
                    .map(|(i, v)| (*v, ((i * 3) % 9 + 1) as f64))
                    .collect();
                m.add_le(&coeffs, (2 * n) as f64);
                std::hint::black_box(m.solve().unwrap())
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_cost_estimation,
    bench_planners,
    bench_milp_solver
);
criterion_main!(benches);
