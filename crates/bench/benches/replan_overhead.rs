//! Replanning-loop overhead: what closing the loop actually costs.
//!
//! Three questions, three series:
//!
//! 1. **Re-solve wall time** — the greedy incremental re-solve vs the
//!    warm-started MILP (slack and churn-bounded) vs a cold MILP of
//!    the same re-costed catalog. The warm start exists to make the
//!    MILP path cheap enough for the planner thread; this series is
//!    the evidence.
//! 2. **Loop overhead on quiet windows** — a runtime with the replan
//!    loop armed vs disabled over the same drifted trace. The per
//!    window cost of the observation ring + drift monitor must stay
//!    in the noise.
//! 3. **Swap-window cost** — the boundary window that commits the
//!    swap (re-deploy + endpoint `set_plan` + Hello replay) vs the
//!    median steady window of the same run.
//!
//! Besides the Criterion series, the bench emits
//! `results/replan_overhead.json` (uniform [`BenchJson`] schema) so
//! CI can diff re-solve and swap regressions without parsing console
//! output.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sonata_bench::BenchJson;
use sonata_core::{ReplanConfig, Runtime, RuntimeConfig};
use sonata_obs::{EventKind, ObsHandle};
use sonata_packet::Packet;
use sonata_planner::costs::CostConfig;
use sonata_planner::{plan_queries, GlobalPlan, PlannerConfig, Replanner, SolveOptions};
use sonata_query::catalog::{self, Thresholds};
use sonata_query::{Query, QueryId};
use sonata_traffic::{DriftScenario, DriftWorkload};
use std::collections::BTreeMap;
use std::time::Instant;

const WINDOW_MS: u64 = 3_000;
const WINDOWS: u32 = 8;
const SEED: u64 = 23;
const SWAP_DELAY: u64 = 2;

fn queries() -> Vec<Query> {
    let t = Thresholds::default();
    vec![
        catalog::newly_opened_tcp_conns(&t),
        catalog::superspreader(&t),
        catalog::ddos(&t),
    ]
}

fn workload() -> DriftWorkload {
    DriftWorkload {
        onset_window: 2,
        packets_per_window: 4_000,
        ..DriftWorkload::new(DriftScenario::attack_onset(), WINDOWS, WINDOW_MS)
    }
}

fn planner_cfg(levels: &[u8]) -> PlannerConfig {
    PlannerConfig {
        cost: CostConfig {
            levels: Some(levels.to_vec()),
            ..Default::default()
        },
        ..Default::default()
    }
}

/// Committed plan + a replanner whose ring already holds the drifted
/// run's own observed channel loads (tuples + collision shunts) up to
/// the trigger — the exact state the runtime hands its planner thread.
fn drifted_replanner(levels: &[u8]) -> (GlobalPlan, Replanner) {
    let wl = workload();
    let queries = queries();
    let training = wl.training(SEED);
    let windows: Vec<&[Packet]> = training.windows(WINDOW_MS).map(|(_, p)| p).collect();
    let cfg = planner_cfg(levels);
    let plan = plan_queries(&queries, &windows, &cfg).unwrap();
    let mut rp = Replanner::from_training(&queries, &windows, cfg, 4).unwrap();

    let observed = Runtime::new(&plan, RuntimeConfig::default())
        .unwrap()
        .process_trace(&wl.generate(SEED))
        .unwrap();
    for w in observed.windows.iter().take(4) {
        let mut loads: BTreeMap<QueryId, u64> = w.tuples_per_query.iter().copied().collect();
        for (q, n) in &w.shunts_per_query {
            *loads.entry(*q).or_default() += n;
        }
        let loads: Vec<(QueryId, u64)> = loads.into_iter().collect();
        rp.observe_window(&loads);
    }
    (plan, rp)
}

/// Best-of-`n` wall time in microseconds.
fn best_us<R>(n: usize, mut f: impl FnMut() -> R) -> f64 {
    (0..n)
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(f());
            start.elapsed().as_nanos() as f64 / 1_000.0
        })
        .fold(f64::INFINITY, f64::min)
}

fn bench_replan_overhead(c: &mut Criterion) {
    let mut json = BenchJson::new("replan_overhead");
    json.config_num("seed", SEED as f64)
        .config_num("windows", WINDOWS as f64)
        .config_num("swap_delay", SWAP_DELAY as f64)
        .config_str("scenario", "attack_onset")
        .config_str("queries", "new_tcp+superspreader+ddos");

    // ------------------------------------------------ re-solve series
    let mut group = c.benchmark_group("replan_resolve");
    group.sample_size(10);
    for levels in [&[8u8, 32][..], &[8, 16, 24, 32][..]] {
        let (committed, rp) = drifted_replanner(levels);
        let nl = levels.len() as f64;
        let opts = SolveOptions::default();

        group.bench_with_input(BenchmarkId::new("greedy", nl), &rp, |b, rp| {
            b.iter(|| rp.replan(&committed).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("warm_milp", nl), &rp, |b, rp| {
            b.iter(|| rp.replan_ilp(&committed, &opts, None).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("warm_milp_delta", nl), &rp, |b, rp| {
            b.iter(|| rp.replan_ilp(&committed, &opts, Some(8)).unwrap());
        });
        // Cold MILP of the identical re-costed instance — the baseline
        // the warm start is measured against.
        let scaled = rp.recost(&rp.load_ratios(&committed));
        let qs = queries();
        let cold_cfg = planner_cfg(levels);
        group.bench_with_input(BenchmarkId::new("cold_milp", nl), &scaled, |b, scaled| {
            b.iter(|| sonata_planner::plan_ilp(&qs, scaled, &cold_cfg, &opts).unwrap());
        });

        json.point(
            "greedy_resolve_us",
            nl,
            best_us(5, || rp.replan(&committed).unwrap()),
        );
        json.point(
            "warm_milp_us",
            nl,
            best_us(5, || rp.replan_ilp(&committed, &opts, None).unwrap()),
        );
        json.point(
            "warm_milp_delta_us",
            nl,
            best_us(5, || rp.replan_ilp(&committed, &opts, Some(8)).unwrap()),
        );
        json.point(
            "cold_milp_us",
            nl,
            best_us(5, || {
                sonata_planner::plan_ilp(&qs, &scaled, &cold_cfg, &opts).unwrap()
            }),
        );
    }
    group.finish();

    // ------------------------------------- loop overhead + swap cost
    let wl = workload();
    let drifted = wl.generate(SEED);
    let (plan, rp) = drifted_replanner(&[8, 32]);
    // Fresh untouched ring for the armed runtime — the runtime feeds
    // its own observations.
    let armed_rp = {
        let training = wl.training(SEED);
        let windows: Vec<&[Packet]> = training.windows(WINDOW_MS).map(|(_, p)| p).collect();
        Replanner::from_training(&queries(), &windows, planner_cfg(&[8, 32]), 4).unwrap()
    };
    drop(rp);

    let disabled_us = best_us(3, || {
        Runtime::new(&plan, RuntimeConfig::default())
            .unwrap()
            .process_trace(&drifted)
            .unwrap()
    });
    let armed_us = best_us(3, || {
        Runtime::new(
            &plan,
            RuntimeConfig {
                replan: ReplanConfig {
                    replanner: Some(armed_rp.clone()),
                    swap_delay: SWAP_DELAY,
                    ..ReplanConfig::default()
                },
                ..RuntimeConfig::default()
            },
        )
        .unwrap()
        .process_trace(&drifted)
        .unwrap()
    });
    json.point("run_us_replan_disabled", WINDOWS as f64, disabled_us);
    json.point("run_us_replan_armed", WINDOWS as f64, armed_us);

    // Swap-window vs steady-window cost, from one armed per-window run.
    let obs = ObsHandle::enabled();
    let mut rt = Runtime::new(
        &plan,
        RuntimeConfig {
            obs: obs.clone(),
            replan: ReplanConfig {
                replanner: Some(armed_rp),
                swap_delay: SWAP_DELAY,
                ..ReplanConfig::default()
            },
            ..RuntimeConfig::default()
        },
    )
    .unwrap();
    let mut per_window: Vec<(u64, f64)> = Vec::new();
    for (w, packets) in drifted.windows(WINDOW_MS) {
        let start = Instant::now();
        rt.process_window(w, packets).unwrap();
        per_window.push((w, start.elapsed().as_nanos() as f64 / 1_000.0));
    }
    let swap_window = obs
        .events()
        .iter()
        .find_map(|e| match &e.kind {
            EventKind::PlanSwap { window, .. } => Some(*window),
            _ => None,
        })
        .expect("the drifted run must swap");
    let swap_us = per_window
        .iter()
        .find(|(w, _)| *w == swap_window)
        .map(|(_, us)| *us)
        .unwrap();
    let mut steady: Vec<f64> = per_window
        .iter()
        .filter(|(w, _)| *w != swap_window)
        .map(|(_, us)| *us)
        .collect();
    steady.sort_by(f64::total_cmp);
    json.point("swap_window_us", swap_window as f64, swap_us);
    json.point(
        "steady_window_us",
        swap_window as f64,
        steady[steady.len() / 2],
    );

    json.write();
}

criterion_group!(benches, bench_replan_overhead);
criterion_main!(benches);
