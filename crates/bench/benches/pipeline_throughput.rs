//! Per-packet throughput of the PISA behavioral model: how fast the
//! simulated switch pushes packets through compiled query pipelines,
//! on both the decoded-packet fast path and the raw-bytes path (full
//! reconfigurable-parser work), how cost scales with the number of
//! concurrently installed queries, and how the sharded stream engine
//! scales with worker count on a reduce-heavy query.

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use sonata_bench::{time_per_iter, time_per_iter_batched, BenchJson};
use sonata_packet::{Packet, PacketArena};
use sonata_pisa::compile::{compile_pipeline, max_switch_units, table_specs, RegisterSizing};
use sonata_pisa::{PisaProgram, ReportBatch, Switch, SwitchConstraints, TaskId};
use sonata_query::catalog::{self, Thresholds};
use sonata_stream::testsupport::{batch_for, low_thresholds, seeded_packets};
use sonata_stream::ShardedEngine;
use sonata_traffic::{BackgroundConfig, Trace};

fn build_switch(n_queries: usize) -> Switch {
    let queries = catalog::top8(&Thresholds::default());
    let mut program = PisaProgram::default();
    let mut meta_base = 0;
    let mut reg_base = 0;
    for q in queries.iter().take(n_queries) {
        let mut branches: Vec<&sonata_query::Pipeline> = vec![&q.pipeline];
        if let Some(j) = &q.join {
            branches.push(&j.right);
        }
        for (b, pipeline) in branches.iter().enumerate() {
            let specs = table_specs(pipeline);
            let k = max_switch_units(&specs);
            let stateful = specs.iter().take(k).filter(|s| s.stateful).count();
            let mut stages = Vec::new();
            let mut cur = 0;
            for s in specs.iter().take(k) {
                stages.push(cur);
                cur += s.stage_cost;
            }
            let compiled = compile_pipeline(
                pipeline,
                TaskId {
                    query: q.id,
                    level: 32,
                    branch: b as u8,
                },
                &stages,
                &vec![
                    RegisterSizing {
                        slots: 4096,
                        arrays: 2,
                        ..Default::default()
                    };
                    stateful
                ],
                meta_base,
                reg_base,
            )
            .unwrap();
            meta_base = compiled.fragment.meta_slots.max(meta_base);
            reg_base += compiled.fragment.registers.len() as u32;
            program.merge(compiled.fragment);
        }
    }
    Switch::load(
        program,
        &SwitchConstraints {
            stateful_per_stage: 32,
            ..SwitchConstraints::default()
        },
    )
    .unwrap()
}

fn packets(n: usize) -> Vec<Packet> {
    Trace::background(
        &BackgroundConfig {
            packets: n,
            ..BackgroundConfig::small()
        },
        7,
    )
    .packets()
    .to_vec()
}

fn bench_process(c: &mut Criterion) {
    let pkts = packets(4_000);
    let mut group = c.benchmark_group("switch_process");
    group.throughput(Throughput::Elements(pkts.len() as u64));
    for n in [1usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("queries", n), &n, |b, &n| {
            let mut sw = build_switch(n);
            b.iter(|| {
                for p in &pkts {
                    std::hint::black_box(sw.process(p));
                }
                sw.end_window();
            });
        });
    }
    group.finish();
}

fn bench_process_batch(c: &mut Criterion) {
    let pkts = packets(4_000);
    let arena = PacketArena::from_packets(&pkts);
    let mut group = c.benchmark_group("switch_process_batch");
    group.throughput(Throughput::Elements(arena.len() as u64));
    for n in [1usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("queries", n), &n, |b, &n| {
            let mut sw = build_switch(n);
            let mut out = ReportBatch::new();
            b.iter(|| {
                sw.process_batch(&arena.batch(), &mut out);
                std::hint::black_box(out.total_reports());
                sw.end_window();
            });
        });
    }
    group.finish();
}

fn bench_process_bytes(c: &mut Criterion) {
    let pkts = packets(4_000);
    let wire: Vec<Vec<u8>> = pkts.iter().map(|p| p.encode()).collect();
    let mut group = c.benchmark_group("switch_process_bytes");
    group.throughput(Throughput::Elements(wire.len() as u64));
    group.bench_function("query1_wire_parse", |b| {
        let mut sw = build_switch(1);
        b.iter(|| {
            for (i, bytes) in wire.iter().enumerate() {
                std::hint::black_box(sw.process_bytes(bytes, i as u64));
            }
            sw.end_window();
        });
    });
    group.finish();
}

fn bench_reference_interpreter(c: &mut Criterion) {
    let pkts = packets(4_000);
    let q = catalog::newly_opened_tcp_conns(&Thresholds::default());
    let mut group = c.benchmark_group("reference_interpreter");
    group.throughput(Throughput::Elements(pkts.len() as u64));
    group.bench_function("query1_window", |b| {
        b.iter(|| std::hint::black_box(sonata_query::interpret::run_query(&q, &pkts).unwrap()));
    });
    group.finish();
}

fn bench_sharded_engine(c: &mut Criterion) {
    // Reduce-heavy stream job: DDoS (distinct + reduce on dIP) over
    // whole-window entry-0 tuples, across shard counts. The per-tuple
    // pipeline work dominates the split/merge overhead, so the shards
    // scale until the hash-split serial fraction takes over.
    let q = catalog::ddos(&low_thresholds());
    let pkts = seeded_packets(7, 30_000);
    let batch = batch_for(&q, &pkts);
    let mut group = c.benchmark_group("sharded_engine");
    group.throughput(Throughput::Elements(batch.tuple_count() as u64));
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("workers", workers), &workers, |b, &w| {
            let mut engine = ShardedEngine::new(w);
            engine.register(q.clone());
            // The runtime hands the engine owned batches; clone in
            // setup so every worker count measures the same work.
            b.iter_batched(
                || batch.clone(),
                |owned| std::hint::black_box(engine.submit_owned(q.id, owned).unwrap()),
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_process,
    bench_process_batch,
    bench_process_bytes,
    bench_reference_interpreter,
    bench_sharded_engine
);

/// Machine-readable baseline: the same switch and engine workloads
/// measured on the compiled fast path and on the forced reference
/// path, written as `results/pipeline_throughput.json`. The reference
/// series is the recorded before-optimization baseline the fast-path
/// speedup is judged against.
fn emit_json() {
    let mut json = BenchJson::new("pipeline_throughput");
    json.config_num("switch_packets", 4_000.0)
        .config_num("stream_tuples", 30_000.0);

    let pkts = packets(4_000);
    let arena = PacketArena::from_packets(&pkts);
    for n in [1usize, 4, 8] {
        for (series, force) in [("switch_fast_pps", false), ("switch_reference_pps", true)] {
            let mut sw = build_switch(n);
            sw.set_force_reference(force);
            let per_iter = time_per_iter(|| {
                for p in &pkts {
                    std::hint::black_box(sw.process(p));
                }
                sw.end_window()
            });
            json.point(series, n as f64, pkts.len() as f64 / per_iter);
        }
        let mut sw = build_switch(n);
        let mut out = ReportBatch::new();
        let per_iter = time_per_iter(|| {
            sw.process_batch(&arena.batch(), &mut out);
            std::hint::black_box(out.total_reports());
            sw.end_window()
        });
        json.point("switch_arena_pps", n as f64, pkts.len() as f64 / per_iter);
    }

    let q = catalog::ddos(&low_thresholds());
    let spkts = seeded_packets(7, 30_000);
    let batch = batch_for(&q, &spkts);
    for workers in [1usize, 2, 4, 8] {
        for (series, force) in [("engine_fast_tps", false), ("engine_reference_tps", true)] {
            let mut engine = ShardedEngine::with_config(
                workers,
                &sonata_obs::ObsHandle::disabled(),
                &sonata_faults::FaultInjector::disabled(),
                force,
            );
            engine.register(q.clone());
            let per_iter = time_per_iter_batched(
                || batch.clone(),
                |owned| engine.submit_owned(q.id, owned).unwrap(),
            );
            json.point(
                series,
                workers as f64,
                batch.tuple_count() as f64 / per_iter,
            );
        }
    }

    json.write();
}

fn main() {
    benches();
    if std::env::args().any(|a| a == "--bench") {
        emit_json();
    }
}
