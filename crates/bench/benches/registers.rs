//! Register micro-benchmarks: the cost of the d-array hash register
//! scheme per update, as `d` grows (the ablation DESIGN.md calls out:
//! collision mitigation buys accuracy at a small per-packet cost), and
//! dump/reset costs at window boundaries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sonata_pisa::HashRegisters;
use sonata_query::Agg;

fn bench_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("register_update");
    const N: u64 = 8_192;
    group.throughput(Throughput::Elements(N));
    for d in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("d", d), &d, |b, &d| {
            b.iter_batched(
                || HashRegisters::new(16_384, d, 32),
                |mut regs| {
                    for k in 0..N {
                        std::hint::black_box(regs.update(&[k % 4_096], Agg::Sum, 1));
                    }
                    regs
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn bench_update_under_pressure(c: &mut Criterion) {
    // Registers sized at half the key population: many cascades and
    // shunts — the worst case for the probe chain.
    let mut group = c.benchmark_group("register_update_overloaded");
    const N: u64 = 8_192;
    group.throughput(Throughput::Elements(N));
    for d in [1usize, 4] {
        group.bench_with_input(BenchmarkId::new("d", d), &d, |b, &d| {
            b.iter_batched(
                || HashRegisters::new(2_048, d, 32),
                |mut regs| {
                    for k in 0..N {
                        std::hint::black_box(regs.update(&[k], Agg::Sum, 1));
                    }
                    regs
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn bench_dump_reset(c: &mut Criterion) {
    let mut group = c.benchmark_group("register_window_boundary");
    group.bench_function("dump_8k_keys", |b| {
        let mut regs = HashRegisters::new(16_384, 2, 32);
        for k in 0..8_192u64 {
            regs.update(&[k], Agg::Sum, 1);
        }
        b.iter(|| std::hint::black_box(regs.dump()));
    });
    group.bench_function("reset_8k_keys", |b| {
        b.iter_batched(
            || {
                let mut regs = HashRegisters::new(16_384, 2, 32);
                for k in 0..8_192u64 {
                    regs.update(&[k], Agg::Sum, 1);
                }
                regs
            },
            |mut regs| {
                regs.reset();
                regs
            },
            criterion::BatchSize::LargeInput,
        );
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_update,
    bench_update_under_pressure,
    bench_dump_reset
);
criterion_main!(benches);
