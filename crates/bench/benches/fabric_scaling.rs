//! Fabric scaling: end-to-end window throughput as the same traffic
//! volume is spread over more switches. The trace is fixed; the N×M
//! topology fans it out over N flow-sticky partitions feeding M
//! collector shards, so the series shows what the per-switch protocol
//! machinery (endpoints, per-switch emitters, the cross-switch merge)
//! costs as N grows — on Loopback, so the wire itself is out of the
//! picture and the overhead measured is the fabric's own.
//!
//! Besides the Criterion series, the bench emits
//! `results/fabric_scaling.json` (uniform [`BenchJson`] schema):
//! `windows_per_s` keyed by switch count, for both 1 shard and
//! N/2 shards, so CI can diff fan-out regressions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sonata_bench::BenchJson;
use sonata_core::{Fabric, RuntimeConfig, TopologyConfig};
use sonata_packet::Packet;
use sonata_planner::costs::CostConfig;
use sonata_planner::{plan_queries, PlanMode, PlannerConfig};
use sonata_query::catalog::{self, Thresholds};
use sonata_traffic::trace::EvaluationTrace;
use std::time::Instant;

/// Topologies on the scaling axis: switches × shards.
const TOPOLOGIES: [(usize, usize); 5] = [(1, 1), (2, 1), (2, 2), (4, 2), (8, 4)];

fn bench_fabric_scaling(c: &mut Criterion) {
    let mut json = BenchJson::new("fabric_scaling");

    let ev = EvaluationTrace::generate(3, 2, 3_000, 0.1);
    let trace = ev.trace;
    let windows: Vec<&[Packet]> = trace.windows(3_000).map(|(_, p)| p).collect();
    let n_windows = windows.len();
    let queries = catalog::top8(&Thresholds::default());
    let cfg = PlannerConfig {
        mode: PlanMode::Sonata,
        cost: CostConfig {
            levels: Some(vec![8, 16, 24, 32]),
            ..Default::default()
        },
        ..PlannerConfig::default()
    };
    let plan = plan_queries(&queries, &windows, &cfg).unwrap();

    json.config_num("windows", n_windows as f64)
        .config_num("packets", trace.packets().len() as f64)
        .config_str("queries", "top8")
        .config_str("mode", "sonata")
        .config_str("transport", "loopback");

    let fabric_for = |(n, m): (usize, usize)| {
        Fabric::new(
            &plan,
            RuntimeConfig {
                topology: Some(TopologyConfig::new(n, m)),
                ..RuntimeConfig::default()
            },
        )
        .unwrap()
    };

    let mut group = c.benchmark_group("fabric_scaling");
    group.sample_size(10);
    group.throughput(Throughput::Elements(n_windows as u64));
    for topo in TOPOLOGIES {
        let (n, m) = topo;
        group.bench_with_input(
            BenchmarkId::new("trace", format!("{n}x{m}")),
            &topo,
            |b, &topo| {
                b.iter_batched(
                    || fabric_for(topo),
                    |mut fab| {
                        fab.process_trace(&trace).unwrap();
                        fab
                    },
                    criterion::BatchSize::LargeInput,
                );
            },
        );
        // One JSON point per topology: windows per second, best of a
        // few runs so first-touch allocation doesn't skew the series.
        let secs = (0..3)
            .map(|_| {
                let mut fab = fabric_for(topo);
                let start = Instant::now();
                fab.process_trace(&trace).unwrap();
                start.elapsed().as_secs_f64()
            })
            .fold(f64::INFINITY, f64::min);
        let series = if m == 1 {
            "windows_per_s_single_shard"
        } else {
            "windows_per_s_sharded"
        };
        json.point(series, n as f64, n_windows as f64 / secs);
    }
    group.finish();

    json.write();
}

criterion_group!(benches, bench_fabric_scaling);
criterion_main!(benches);
