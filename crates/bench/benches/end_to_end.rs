//! End-to-end window benchmark: the full runtime loop (switch →
//! emitter → stream engine → refinement update) per window, with all
//! eight queries installed — the simulated system's aggregate
//! throughput.

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use sonata_bench::{time_per_iter_batched, BenchJson};
use sonata_core::{IngestMode, Runtime, RuntimeConfig};
use sonata_packet::Packet;
use sonata_planner::costs::CostConfig;
use sonata_planner::{plan_queries, PlanMode, PlannerConfig};
use sonata_query::catalog::{self, Thresholds};
use sonata_traffic::trace::EvaluationTrace;

fn bench_runtime_window(c: &mut Criterion) {
    let ev = EvaluationTrace::generate(1, 2, 3_000, 0.1);
    let queries = catalog::top8(&Thresholds::default());
    let windows: Vec<&[Packet]> = ev.trace.windows(3_000).map(|(_, p)| p).collect();
    let pkts: Vec<Packet> = windows[0].to_vec();

    let mut group = c.benchmark_group("runtime_window");
    group.sample_size(10);
    group.throughput(Throughput::Elements(pkts.len() as u64));
    for mode in [PlanMode::AllSp, PlanMode::MaxDp, PlanMode::Sonata] {
        let cfg = PlannerConfig {
            mode,
            cost: CostConfig {
                levels: Some(vec![8, 16, 24, 32]),
                ..Default::default()
            },
            ..PlannerConfig::default()
        };
        let plan = plan_queries(&queries, &windows, &cfg).unwrap();
        group.bench_with_input(BenchmarkId::new("8q", mode.label()), &plan, |b, plan| {
            b.iter_batched(
                || Runtime::new(plan, RuntimeConfig::default()).unwrap(),
                |mut rt| {
                    rt.process_window(0, &pkts).unwrap();
                    rt
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_runtime_window);

/// Machine-readable baseline: the full runtime window on the compiled
/// fast paths vs. `force_reference_path` (the before-optimization
/// baseline), per plan mode, written as `results/end_to_end.json`.
/// `x` is packets/second through the whole window loop.
fn emit_json() {
    let ev = EvaluationTrace::generate(1, 2, 3_000, 0.1);
    let queries = catalog::top8(&Thresholds::default());
    let windows: Vec<&[Packet]> = ev.trace.windows(3_000).map(|(_, p)| p).collect();
    let pkts: Vec<Packet> = windows[0].to_vec();

    let mut json = BenchJson::new("end_to_end");
    json.config_num("window_packets", pkts.len() as f64)
        .config_str("queries", "top8");

    for (xi, mode) in [PlanMode::AllSp, PlanMode::MaxDp, PlanMode::Sonata]
        .into_iter()
        .enumerate()
    {
        let cfg = PlannerConfig {
            mode,
            cost: CostConfig {
                levels: Some(vec![8, 16, 24, 32]),
                ..Default::default()
            },
            ..PlannerConfig::default()
        };
        let plan = plan_queries(&queries, &windows, &cfg).unwrap();
        json.config_str(&format!("mode_{xi}"), mode.label());
        for (series, ingest, force) in [
            ("runtime_arena_pps", IngestMode::Arena, false),
            ("runtime_owned_pps", IngestMode::Owned, false),
            ("runtime_reference_pps", IngestMode::Owned, true),
        ] {
            let per_iter = time_per_iter_batched(
                || {
                    Runtime::new(
                        &plan,
                        RuntimeConfig {
                            ingest,
                            force_reference_path: force,
                            ..RuntimeConfig::default()
                        },
                    )
                    .unwrap()
                },
                |mut rt| {
                    rt.process_window(0, &pkts).unwrap();
                    rt
                },
            );
            json.point(series, xi as f64, pkts.len() as f64 / per_iter);
        }
    }

    json.write();
}

fn main() {
    benches();
    if std::env::args().any(|a| a == "--bench") {
        emit_json();
    }
}
