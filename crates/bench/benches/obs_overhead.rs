//! Observability overhead: the full runtime window loop with the
//! `ObsHandle` disabled vs enabled. The disabled path must stay within
//! a few percent of un-instrumented throughput — disabled handles are
//! unregistered atomic adds with no clock reads, so the two series
//! should be statistically indistinguishable; the enabled path pays
//! for timestamps, histogram bucketing, and the event ring.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sonata_core::{Runtime, RuntimeConfig};
use sonata_obs::ObsHandle;
use sonata_packet::Packet;
use sonata_planner::costs::CostConfig;
use sonata_planner::{plan_queries, PlanMode, PlannerConfig};
use sonata_query::catalog::{self, Thresholds};
use sonata_traffic::trace::EvaluationTrace;

fn bench_obs_overhead(c: &mut Criterion) {
    let ev = EvaluationTrace::generate(1, 2, 3_000, 0.1);
    let queries = catalog::top8(&Thresholds::default());
    let windows: Vec<&[Packet]> = ev.trace.windows(3_000).map(|(_, p)| p).collect();
    let pkts: Vec<Packet> = windows[0].to_vec();

    let cfg = PlannerConfig {
        mode: PlanMode::Sonata,
        cost: CostConfig {
            levels: Some(vec![8, 16, 24, 32]),
            ..Default::default()
        },
        ..PlannerConfig::default()
    };
    let plan = plan_queries(&queries, &windows, &cfg).unwrap();

    let mut group = c.benchmark_group("obs_overhead");
    group.sample_size(20);
    group.throughput(Throughput::Elements(pkts.len() as u64));
    for (label, enabled) in [("disabled", false), ("enabled", true)] {
        group.bench_with_input(BenchmarkId::new("window", label), &plan, |b, plan| {
            b.iter_batched(
                || {
                    let obs = if enabled {
                        ObsHandle::enabled()
                    } else {
                        ObsHandle::disabled()
                    };
                    Runtime::new(
                        plan,
                        RuntimeConfig {
                            obs,
                            ..RuntimeConfig::default()
                        },
                    )
                    .unwrap()
                },
                |mut rt| {
                    rt.process_window(0, &pkts).unwrap();
                    rt
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
