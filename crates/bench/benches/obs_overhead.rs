//! Observability overhead: the full runtime window loop with the
//! `ObsHandle` disabled vs enabled. The disabled path must stay within
//! a few percent of un-instrumented throughput — disabled handles are
//! unregistered atomic adds with no clock reads, so the two series
//! should be statistically indistinguishable; the enabled path pays
//! for timestamps, histogram bucketing, the event ring, and (since the
//! distributed-tracing work) per-window root spans plus a trace-tagged
//! wire header on every frame.
//!
//! Besides the Criterion series, the bench emits
//! `results/obs_overhead.json` (uniform [`BenchJson`] schema) so CI
//! can diff instrumentation regressions without parsing console
//! output. The `window_us_enabled` series runs with full tracing on —
//! root spans, stage spans, in-band trace context — and
//! `export_us_chrome_trace` prices turning a run's event ring into the
//! chrome://tracing JSON document.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sonata_bench::BenchJson;
use sonata_core::{Runtime, RuntimeConfig};
use sonata_obs::ObsHandle;
use sonata_packet::Packet;
use sonata_planner::costs::CostConfig;
use sonata_planner::{plan_queries, PlanMode, PlannerConfig};
use sonata_query::catalog::{self, Thresholds};
use sonata_traffic::trace::EvaluationTrace;
use std::time::Instant;

fn bench_obs_overhead(c: &mut Criterion) {
    let ev = EvaluationTrace::generate(1, 2, 3_000, 0.1);
    let queries = catalog::top8(&Thresholds::default());
    let windows: Vec<&[Packet]> = ev.trace.windows(3_000).map(|(_, p)| p).collect();
    let pkts: Vec<Packet> = windows[0].to_vec();

    let cfg = PlannerConfig {
        mode: PlanMode::Sonata,
        cost: CostConfig {
            levels: Some(vec![8, 16, 24, 32]),
            ..Default::default()
        },
        ..PlannerConfig::default()
    };
    let plan = plan_queries(&queries, &windows, &cfg).unwrap();

    let mut json = BenchJson::new("obs_overhead");
    json.config_num("packets_per_window", pkts.len() as f64)
        .config_str("queries", "top8")
        .config_str("mode", "sonata");

    let mut group = c.benchmark_group("obs_overhead");
    group.sample_size(20);
    group.throughput(Throughput::Elements(pkts.len() as u64));
    for (label, enabled) in [("disabled", false), ("enabled", true)] {
        group.bench_with_input(BenchmarkId::new("window", label), &plan, |b, plan| {
            b.iter_batched(
                || {
                    let obs = if enabled {
                        ObsHandle::enabled()
                    } else {
                        ObsHandle::disabled()
                    };
                    Runtime::new(
                        plan,
                        RuntimeConfig {
                            obs,
                            ..RuntimeConfig::default()
                        },
                    )
                    .unwrap()
                },
                |mut rt| {
                    rt.process_window(0, &pkts).unwrap();
                    rt
                },
                criterion::BatchSize::LargeInput,
            );
        });
        // One JSON point per mode: microseconds per window, best of a
        // few runs so allocator warm-up doesn't skew the series. The
        // enabled run carries the full tracing pipeline: a root span
        // per window, stage spans, and trace context on every frame.
        let us = (0..5)
            .map(|_| {
                let obs = if enabled {
                    ObsHandle::enabled()
                } else {
                    ObsHandle::disabled()
                };
                let mut rt = Runtime::new(
                    &plan,
                    RuntimeConfig {
                        obs,
                        ..RuntimeConfig::default()
                    },
                )
                .unwrap();
                let start = Instant::now();
                rt.process_window(0, &pkts).unwrap();
                start.elapsed().as_micros() as f64
            })
            .fold(f64::INFINITY, f64::min);
        json.point(&format!("window_us_{label}"), pkts.len() as f64, us);
    }
    group.finish();

    // Export cost: chrome-trace JSON from a fully traced window's
    // event ring (what the quickstart pays to write its artifacts).
    let obs = ObsHandle::enabled();
    let mut rt = Runtime::new(
        &plan,
        RuntimeConfig {
            obs: obs.clone(),
            ..RuntimeConfig::default()
        },
    )
    .unwrap();
    rt.process_window(0, &pkts).unwrap();
    let events = obs.events().len() as f64;
    let export_us = (0..5)
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(obs.chrome_trace());
            start.elapsed().as_micros() as f64
        })
        .fold(f64::INFINITY, f64::min);
    json.point("export_us_chrome_trace", events, export_us);

    json.write();
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
