//! Compiled-fast-path benchmark: the same workloads driven through
//! the compiled engines (switch `ExecPlan`, stream `BoundPipeline`)
//! and through the tree-walking reference interpreters that the fast
//! paths must reproduce bit-for-bit. The ratio between the two series
//! is the whole point of the "compiled hot paths" work, so this bench
//! emits both as machine-readable `results/exec_plan.json`.
//!
//! `cargo bench -p sonata-bench --bench exec_plan` measures and
//! writes the JSON; under `cargo test` each routine runs once as a
//! smoke test and nothing is written.

use sonata_bench::{time_per_iter, time_per_iter_batched, BenchJson};
use sonata_packet::{Packet, PacketArena};
use sonata_pisa::compile::{compile_pipeline, max_switch_units, table_specs, RegisterSizing};
use sonata_pisa::{PisaProgram, ReportBatch, Switch, SwitchConstraints, TaskId};
use sonata_query::catalog::{self, Thresholds};
use sonata_stream::testsupport::{batch_for, low_thresholds, seeded_packets};
use sonata_stream::MicroBatchEngine;
use sonata_traffic::{BackgroundConfig, Trace};

fn build_switch(n_queries: usize, force_reference: bool) -> Switch {
    let queries = catalog::top8(&Thresholds::default());
    let mut program = PisaProgram::default();
    let mut meta_base = 0;
    let mut reg_base = 0;
    for q in queries.iter().take(n_queries) {
        let mut branches: Vec<&sonata_query::Pipeline> = vec![&q.pipeline];
        if let Some(j) = &q.join {
            branches.push(&j.right);
        }
        for (b, pipeline) in branches.iter().enumerate() {
            let specs = table_specs(pipeline);
            let k = max_switch_units(&specs);
            let stateful = specs.iter().take(k).filter(|s| s.stateful).count();
            let mut stages = Vec::new();
            let mut cur = 0;
            for s in specs.iter().take(k) {
                stages.push(cur);
                cur += s.stage_cost;
            }
            let compiled = compile_pipeline(
                pipeline,
                TaskId {
                    query: q.id,
                    level: 32,
                    branch: b as u8,
                },
                &stages,
                &vec![
                    RegisterSizing {
                        slots: 4096,
                        arrays: 2,
                        ..Default::default()
                    };
                    stateful
                ],
                meta_base,
                reg_base,
            )
            .unwrap();
            meta_base = compiled.fragment.meta_slots.max(meta_base);
            reg_base += compiled.fragment.registers.len() as u32;
            program.merge(compiled.fragment);
        }
    }
    let mut sw = Switch::load(
        program,
        &SwitchConstraints {
            stateful_per_stage: 32,
            ..SwitchConstraints::default()
        },
    )
    .unwrap();
    sw.set_force_reference(force_reference);
    sw
}

fn packets(n: usize) -> Vec<Packet> {
    Trace::background(
        &BackgroundConfig {
            packets: n,
            ..BackgroundConfig::small()
        },
        7,
    )
    .packets()
    .to_vec()
}

/// Packets/second through the switch window loop.
fn switch_rate(n_queries: usize, pkts: &[Packet], force_reference: bool) -> f64 {
    let mut sw = build_switch(n_queries, force_reference);
    let per_iter = time_per_iter(|| {
        for p in pkts {
            std::hint::black_box(sw.process(p));
        }
        sw.end_window()
    });
    pkts.len() as f64 / per_iter
}

/// Packets/second through the zero-copy arena batch path: the trace
/// lives in one contiguous `PacketArena` and each window is executed
/// by `Switch::process_batch` into a reusable `ReportBatch`.
fn switch_arena_rate(n_queries: usize, pkts: &[Packet]) -> f64 {
    let mut sw = build_switch(n_queries, false);
    let arena = PacketArena::from_packets(pkts);
    let mut out = ReportBatch::new();
    let per_iter = time_per_iter(|| {
        sw.process_batch(&arena.batch(), &mut out);
        std::hint::black_box(out.total_reports());
        sw.end_window()
    });
    pkts.len() as f64 / per_iter
}

/// Tuples/second through one stream-engine window (whole window at
/// entry 0) for the given catalog query.
fn stream_rate(q: &sonata_query::Query, force_reference: bool) -> f64 {
    let pkts = seeded_packets(7, 30_000);
    let batch = batch_for(q, &pkts);
    let tuples = batch.tuple_count() as f64;
    let mut engine = MicroBatchEngine::new();
    engine.set_force_reference(force_reference);
    engine.register(q.clone());
    let per_iter = time_per_iter_batched(
        || batch.clone(),
        |owned| engine.submit_owned(q.id, owned).unwrap(),
    );
    tuples / per_iter
}

fn main() {
    let bench_mode = std::env::args().any(|a| a == "--bench");
    if !bench_mode {
        // Smoke: one tiny pass per engine so `cargo test` exercises
        // both code paths without timing anything.
        let pkts = packets(200);
        let mut fast = build_switch(1, false);
        let mut reference = build_switch(1, true);
        let mut arena_sw = build_switch(1, false);
        let arena = PacketArena::from_packets(&pkts);
        let mut out = ReportBatch::new();
        for p in &pkts {
            fast.process(p);
            reference.process(p);
        }
        arena_sw.process_batch(&arena.batch(), &mut out);
        let dump = fast.end_window();
        assert_eq!(dump, reference.end_window());
        assert_eq!(dump, arena_sw.end_window());
        println!("test exec_plan_smoke ... ok");
        return;
    }

    let mut json = BenchJson::new("exec_plan");
    json.config_num("switch_packets", 4_000.0)
        .config_num("stream_tuples", 30_000.0);

    let pkts = packets(4_000);
    for n in [1usize, 4, 8] {
        let arena = switch_arena_rate(n, &pkts);
        let owned = switch_rate(n, &pkts, false);
        let reference = switch_rate(n, &pkts, true);
        json.point("switch_arena_pps", n as f64, arena);
        json.point("switch_fast_pps", n as f64, owned);
        json.point("switch_reference_pps", n as f64, reference);
        println!(
            "switch/{n}q: arena {:.3} Mpkt/s, owned {:.3} Mpkt/s, reference {:.3} Mpkt/s (arena/owned {:.2}x, owned/ref {:.2}x)",
            arena / 1e6,
            owned / 1e6,
            reference / 1e6,
            arena / owned,
            owned / reference
        );
    }

    let t = low_thresholds();
    let stream_queries = [
        ("new_tcp", catalog::newly_opened_tcp_conns(&t)),
        ("ddos", catalog::ddos(&t)),
    ];
    for (xi, (name, q)) in stream_queries.iter().enumerate() {
        let fast = stream_rate(q, false);
        let reference = stream_rate(q, true);
        json.point("stream_fast_tps", xi as f64, fast);
        json.point("stream_reference_tps", xi as f64, reference);
        json.config_str(&format!("stream_query_{xi}"), name);
        println!(
            "stream/{name}: fast {:.3} Mtuple/s, reference {:.3} Mtuple/s ({:.2}x)",
            fast / 1e6,
            reference / 1e6,
            fast / reference
        );
    }

    json.write();
}
