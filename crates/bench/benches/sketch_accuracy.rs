//! Bits-for-accuracy: the count-min trade-off the sketch layouts buy.
//!
//! Three experiments, all emitted to `results/sketch_accuracy.json`
//! (uniform [`BenchJson`] schema):
//!
//! * **observed error vs bits** — a skewed (zipf-ish) stream pushed
//!   through count-min sketches of growing width; observed per-key
//!   overshoot (relative to the stream's L1 mass) must sit under the
//!   declared ε = e/width at every size.
//! * **throughput vs bits** — update cost per layout (count-min,
//!   Bloom admission, HLL) against the exact hash-map reference.
//! * **register-budget packing** — how many catalog queries fit a
//!   fixed per-window register budget when stateful units are sized
//!   exactly vs as sketches at ε = 5%. The sketch layouts must fit at
//!   least 2× as many (the paper's memory wall, Figure 8c, is the
//!   same effect measured end to end).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sonata_bench::{estimate_all, BenchJson, ExperimentCtx};
use sonata_planner::costs::SketchPolicy;
use sonata_query::catalog::{self, Thresholds};
use sonata_sketch::{cm_epsilon, mix64, BloomFilter, CmOp, CountMinSketch, HyperLogLog};
use std::collections::HashMap;
use std::time::Instant;

/// Deterministic zipf-ish weighted stream: key `r` appears with
/// weight ∝ 1/(r+1), keys shuffled through `mix64` so ranks don't
/// correlate with hash values.
fn skewed_stream(keys: usize, scale: u64) -> Vec<(u64, u64)> {
    let mut out = Vec::new();
    for r in 0..keys {
        let weight = (scale / (r as u64 + 1)).max(1);
        out.push((mix64(r as u64 ^ 0x5eed), weight));
    }
    out
}

fn time_per_op(iters: u64, mut f: impl FnMut()) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

fn bench_sketch_accuracy(c: &mut Criterion) {
    let mut json = BenchJson::new("sketch_accuracy");
    let stream = skewed_stream(4_096, 10_000);
    let mass: u64 = stream.iter().map(|&(_, v)| v).sum();
    let mut truth: HashMap<u64, u64> = HashMap::new();
    for &(k, v) in &stream {
        *truth.entry(k).or_default() += v;
    }

    // ------------------------------------------ observed error vs bits
    let depth = 4usize;
    for width in [64usize, 256, 1024, 4096] {
        let mut cm = CountMinSketch::new(width, depth, 0x5eed, CmOp::Add);
        for &(k, v) in &stream {
            cm.update(&[k], v);
        }
        let bits = cm.register_bits() as f64;
        let mut worst = 0.0f64;
        let mut total_over = 0u64;
        for (&k, &t) in &truth {
            let over = cm.estimate(&[k]) - t;
            total_over += over;
            worst = worst.max(over as f64 / mass as f64);
        }
        let mean = total_over as f64 / truth.len() as f64 / mass as f64;
        let declared = cm_epsilon(width);
        assert!(
            worst <= declared,
            "width {width}: observed error {worst:.5} above declared ε {declared:.5}"
        );
        json.point("cm_declared_epsilon_vs_bits", bits, declared);
        json.point("cm_observed_max_error_vs_bits", bits, worst);
        json.point("cm_observed_mean_error_vs_bits", bits, mean);
        println!(
            "cm width {width:>5} ({:>8} bits): ε declared {declared:.5}, observed max {worst:.5}, mean {mean:.6}",
            bits as u64
        );
    }

    // --------------------------------------------- throughput vs bits
    let mut group = c.benchmark_group("sketch_update");
    group.sample_size(20);
    for width in [256usize, 4096] {
        let mut cm = CountMinSketch::new(width, depth, 0x5eed, CmOp::Add);
        let mut i = 0usize;
        group.bench_with_input(BenchmarkId::new("count_min", width), &width, |b, _| {
            b.iter(|| {
                let (k, v) = stream[i % stream.len()];
                cm.update(&[k], v);
                i += 1;
            })
        });
        let bits = cm.register_bits() as f64;
        let mut j = 0usize;
        json.point(
            "cm_update_ns_vs_bits",
            bits,
            time_per_op(200_000, || {
                let (k, v) = stream[j % stream.len()];
                cm.update(&[k], v);
                j += 1;
            }),
        );
    }
    let mut bloom = BloomFilter::new(1 << 15, 4, 0x5eed);
    let mut hll = HyperLogLog::new(12, 0x5eed);
    let mut exact: HashMap<u64, u64> = HashMap::new();
    let mut i = 0usize;
    group.bench_function("bloom_insert", |b| {
        b.iter(|| {
            bloom.insert(&[stream[i % stream.len()].0]);
            i += 1;
        })
    });
    group.finish();
    let mut j = 0usize;
    json.point(
        "bloom_insert_ns",
        bloom.bits() as f64,
        time_per_op(200_000, || {
            bloom.insert(&[stream[j % stream.len()].0]);
            j += 1;
        }),
    );
    let mut j = 0usize;
    json.point(
        "hll_insert_ns",
        hll.register_bits() as f64,
        time_per_op(200_000, || {
            hll.insert(&[stream[j % stream.len()].0]);
            j += 1;
        }),
    );
    let mut j = 0usize;
    json.point(
        "exact_update_ns",
        0.0,
        time_per_op(200_000, || {
            let (k, v) = stream[j % stream.len()];
            *exact.entry(k).or_default() += v;
            j += 1;
        }),
    );

    // ------------------------------------- register-budget packing
    // Size every catalog query's finest-level stateful state from its
    // trace-estimated key counts, exactly vs under the ε = 5% sketch
    // policy, then greedily pack queries (catalog order) into a fixed
    // register budget.
    let ctx = ExperimentCtx::default();
    let trace = ctx.evaluation_trace();
    let queries = catalog::all(&Thresholds::default());
    let costs = estimate_all(&queries, &trace, &[32]);
    let exact_policy = SketchPolicy::default();
    let sketch_policy = SketchPolicy {
        enabled: true,
        epsilon: 0.05,
        delta: 0.05,
    };
    let query_bits = |policy: &SketchPolicy| -> Vec<u64> {
        costs
            .iter()
            .map(|qc| {
                let t = qc
                    .transitions
                    .get(&(None, qc.finest))
                    .or_else(|| qc.transitions.values().next())
                    .expect("estimated transition");
                t.branches
                    .iter()
                    .map(|bc| {
                        (0..bc.keys.len())
                            .map(|i| bc.register_bits_with(i, 1.5, 2, policy))
                            .sum::<u64>()
                    })
                    .sum::<u64>()
            })
            .collect()
    };
    let exact_bits = query_bits(&exact_policy);
    let sketch_bits = query_bits(&sketch_policy);
    let budget: u64 = 300_000; // 300 Kb of register SRAM
                               // Queries with no stateful switch state (0 bits) fit any budget
                               // vacuously; exclude them so the packing measures real state.
    let pack = |bits: &[u64]| -> usize {
        let mut used = 0u64;
        let mut n = 0usize;
        for &b in bits.iter().filter(|&&b| b > 0) {
            if used + b <= budget {
                used += b;
                n += 1;
            }
        }
        n
    };
    let fit_exact = pack(&exact_bits);
    let fit_sketch = pack(&sketch_bits);
    println!("budget {budget} bits: exact fits {fit_exact} queries, sketch fits {fit_sketch}");
    for (q, (e, s)) in queries.iter().zip(exact_bits.iter().zip(&sketch_bits)) {
        println!(
            "  {:<24} exact {:>10} bits, sketch {:>10} bits",
            q.name, e, s
        );
        json.point(
            &format!("query_bits_exact_{}", q.name),
            *e as f64,
            *e as f64,
        );
        json.point(
            &format!("query_bits_sketch_{}", q.name),
            *s as f64,
            *s as f64,
        );
    }
    json.config_num("budget_bits", budget as f64)
        .config_num("queries_fit_exact", fit_exact as f64)
        .config_num("queries_fit_sketch", fit_sketch as f64)
        .config_num("sketch_epsilon", sketch_policy.epsilon);
    assert!(fit_exact >= 1, "budget must admit at least one exact query");
    assert!(
        fit_sketch >= 2 * fit_exact,
        "sketch layouts must fit ≥2× the queries of exact sizing \
         (exact {fit_exact}, sketch {fit_sketch})"
    );

    json.write();
}

criterion_group!(benches, bench_sketch_accuracy);
criterion_main!(benches);
