//! Control-plane benchmarks: applying dynamic-refinement table updates
//! to the behavioral model (the mechanical cost, next to the paper's
//! *simulated* hardware latency which the update_overhead binary
//! reports), and end-to-end window-boundary cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sonata_packet::{PacketBuilder, TcpFlags};
use sonata_pisa::compile::{compile_pipeline, RegisterSizing};
use sonata_pisa::control::{ControlOp, UpdateCostModel};
use sonata_pisa::{Switch, SwitchConstraints, TaskId};
use sonata_query::catalog::{self, Thresholds};
use sonata_query::expr::{col, field, lit, Pred};
use sonata_query::{Agg, QueryId};
use std::collections::BTreeSet;

fn refined_switch() -> (Switch, String) {
    use sonata_packet::Field;
    let q = sonata_query::Query::builder("refined", 1)
        .filter(Pred::in_set(field(Field::Ipv4Dst).mask(8), BTreeSet::new()))
        .map([("dIP", field(Field::Ipv4Dst)), ("c", lit(1))])
        .reduce(&["dIP"], Agg::Sum, "c")
        .filter(col("c").gt(lit(10)))
        .build()
        .unwrap();
    let cp = compile_pipeline(
        &q.pipeline,
        TaskId {
            query: QueryId(1),
            level: 16,
            branch: 0,
        },
        &[0, 1, 2],
        &[RegisterSizing {
            slots: 4096,
            arrays: 2,
            ..Default::default()
        }],
        0,
        0,
    )
    .unwrap();
    let sw = Switch::load(cp.fragment, &SwitchConstraints::default()).unwrap();
    let table = sw.dyn_filter_tables()[0].0.clone();
    (sw, table)
}

fn bench_table_updates(c: &mut Criterion) {
    let model = UpdateCostModel::default();
    let mut group = c.benchmark_group("dyn_filter_update");
    for entries in [10usize, 100, 1000] {
        group.bench_with_input(
            BenchmarkId::new("entries", entries),
            &entries,
            |b, &entries| {
                let (mut sw, table) = refined_switch();
                let set: BTreeSet<u64> = (0..entries as u64).collect();
                let ops = [ControlOp::SetDynFilter {
                    table,
                    entries: set,
                }];
                b.iter(|| std::hint::black_box(model.apply(&mut sw, &ops).unwrap()));
            },
        );
    }
    group.finish();
}

fn bench_window_boundary(c: &mut Criterion) {
    // Full boundary: end_window (dump + reset) on a loaded register.
    let q = catalog::newly_opened_tcp_conns(&Thresholds::default());
    let cp = compile_pipeline(
        &q.pipeline,
        TaskId {
            query: QueryId(1),
            level: 32,
            branch: 0,
        },
        &[0, 1, 2],
        &[RegisterSizing {
            slots: 16_384,
            arrays: 2,
            ..Default::default()
        }],
        0,
        0,
    )
    .unwrap();
    let mut group = c.benchmark_group("window_boundary");
    group.sample_size(20);
    group.bench_function("end_window_8k_keys", |b| {
        b.iter_batched(
            || {
                let mut sw =
                    Switch::load(cp.fragment.clone(), &SwitchConstraints::default()).unwrap();
                for i in 0..8_192u32 {
                    sw.process(
                        &PacketBuilder::tcp_raw(1, 2, i, 80)
                            .flags(TcpFlags::SYN)
                            .build(),
                    );
                }
                sw
            },
            |mut sw| std::hint::black_box(sw.end_window()),
            criterion::BatchSize::LargeInput,
        );
    });
    group.finish();
}

criterion_group!(benches, bench_table_updates, bench_window_boundary);
criterion_main!(benches);
