//! Traffic-substrate benchmarks: background generation rate, attack
//! injection + sorted merge, wire encode/decode round-trip rates, and
//! trace file serialization.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sonata_packet::Packet;
use sonata_traffic::{Attack, BackgroundConfig, Trace};

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("traffic_generation");
    group.sample_size(10);
    let cfg = BackgroundConfig {
        packets: 50_000,
        ..BackgroundConfig::default()
    };
    group.throughput(Throughput::Elements(cfg.packets as u64));
    group.bench_function("background_50k", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            std::hint::black_box(Trace::background(&cfg, seed))
        });
    });
    group.finish();
}

fn bench_inject_merge(c: &mut Criterion) {
    let base = Trace::background(
        &BackgroundConfig {
            packets: 50_000,
            ..BackgroundConfig::default()
        },
        1,
    );
    let attack = Attack::SynFlood {
        victim: 0x63070019,
        port: 80,
        packets: 5_000,
        sources: 1_000,
        ack_fraction: 0.05,
        fin_fraction: 0.02,
        start_ms: 0,
        duration_ms: 2_500,
    };
    let mut group = c.benchmark_group("trace_ops");
    group.sample_size(10);
    group.bench_function("inject_5k_into_50k", |b| {
        b.iter_batched(
            || base.clone(),
            |mut t| {
                t.inject(&attack, 9);
                t
            },
            criterion::BatchSize::LargeInput,
        );
    });
    group.finish();
}

fn bench_wire_roundtrip(c: &mut Criterion) {
    let trace = Trace::background(
        &BackgroundConfig {
            packets: 10_000,
            ..BackgroundConfig::small()
        },
        2,
    );
    let pkts: Vec<Packet> = trace.packets().to_vec();
    let wire: Vec<Vec<u8>> = pkts.iter().map(|p| p.encode()).collect();
    let mut group = c.benchmark_group("packet_wire");
    group.throughput(Throughput::Elements(pkts.len() as u64));
    group.bench_function("encode_10k", |b| {
        b.iter(|| {
            for p in &pkts {
                std::hint::black_box(p.encode());
            }
        });
    });
    group.bench_function("decode_10k", |b| {
        b.iter(|| {
            for w in &wire {
                std::hint::black_box(Packet::decode(w).unwrap());
            }
        });
    });
    group.finish();
}

fn bench_trace_file(c: &mut Criterion) {
    let trace = Trace::background(
        &BackgroundConfig {
            packets: 20_000,
            ..BackgroundConfig::small()
        },
        3,
    );
    let mut buf = Vec::new();
    trace.write_to(&mut buf).unwrap();
    let mut group = c.benchmark_group("trace_file");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(buf.len() as u64));
    group.bench_function("write_20k", |b| {
        b.iter(|| {
            let mut out = Vec::with_capacity(buf.len());
            trace.write_to(&mut out).unwrap();
            std::hint::black_box(out)
        });
    });
    group.bench_function("read_20k", |b| {
        b.iter(|| std::hint::black_box(Trace::read_from(&mut &buf[..]).unwrap()));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_generation,
    bench_inject_merge,
    bench_wire_roundtrip,
    bench_trace_file
);
criterion_main!(benches);
