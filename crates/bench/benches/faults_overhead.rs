//! Fault-layer overhead: the full runtime window loop with the
//! injector disabled (`FaultPlan::none()`) vs armed. The disabled
//! path must stay within noise of the pre-fault-layer runtime — a
//! disabled injector is a `None` handle, so every fault site costs
//! one branch. The armed series shows the cost of per-report verdict
//! rolls, sequence numbering, and emitter dedup bookkeeping.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sonata_core::{Runtime, RuntimeConfig};
use sonata_faults::{FaultPlan, ReportFaults, WorkerFaults};
use sonata_packet::Packet;
use sonata_planner::costs::CostConfig;
use sonata_planner::{plan_queries, PlanMode, PlannerConfig};
use sonata_query::catalog::{self, Thresholds};
use sonata_traffic::trace::EvaluationTrace;

fn bench_faults_overhead(c: &mut Criterion) {
    let ev = EvaluationTrace::generate(1, 2, 3_000, 0.1);
    let queries = catalog::top8(&Thresholds::default());
    let windows: Vec<&[Packet]> = ev.trace.windows(3_000).map(|(_, p)| p).collect();
    let pkts: Vec<Packet> = windows[0].to_vec();

    let cfg = PlannerConfig {
        mode: PlanMode::Sonata,
        cost: CostConfig {
            levels: Some(vec![8, 16, 24, 32]),
            ..Default::default()
        },
        ..PlannerConfig::default()
    };
    let plan = plan_queries(&queries, &windows, &cfg).unwrap();

    // Low rates so the armed series measures decision overhead, not
    // the (intentional) cost of recovery paths like respawn.
    let armed = FaultPlan {
        seed: 7,
        report: ReportFaults {
            drop_per_mille: 5,
            duplicate_per_mille: 5,
            delay_per_mille: 5,
            ..ReportFaults::default()
        },
        worker: WorkerFaults {
            stall_per_mille: 1, // stall_ms defaults to 5
            ..WorkerFaults::default()
        },
        ..FaultPlan::default()
    };

    let mut group = c.benchmark_group("faults_overhead");
    group.sample_size(20);
    group.throughput(Throughput::Elements(pkts.len() as u64));
    for (label, faults) in [("disabled", FaultPlan::none()), ("armed", armed)] {
        group.bench_with_input(BenchmarkId::new("window", label), &plan, |b, plan| {
            b.iter_batched(
                || {
                    Runtime::new(
                        plan,
                        RuntimeConfig {
                            faults,
                            ..RuntimeConfig::default()
                        },
                    )
                    .unwrap()
                },
                |mut rt| {
                    rt.process_window(0, &pkts).unwrap();
                    rt
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_faults_overhead);
criterion_main!(benches);
