//! Wire-layer overhead: (1) raw codec throughput — encode/decode of a
//! per-packet report frame and a batched window-dump frame; (2) the
//! full runtime window loop over the in-process `Loopback` transport
//! vs real TCP sockets. Loopback is the default and must stay within
//! noise of the pre-wire runtime (one frame clone + a bounded-queue
//! push per message); the TCP series shows what crossing a socket
//! boundary actually costs.
//!
//! Besides the Criterion series, the bench emits
//! `results/net_overhead.json` (uniform [`BenchJson`] schema) so CI
//! can diff codec and transport regressions without parsing console
//! output.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sonata_bench::BenchJson;
use sonata_core::{Runtime, RuntimeConfig};
use sonata_net::{decode_frame, encode_frame, Frame, TransportKind};
use sonata_packet::{Packet, PacketBuilder, TcpFlags};
use sonata_pisa::{Report, ReportKind, TaskId, WindowDump};
use sonata_planner::costs::CostConfig;
use sonata_planner::{plan_queries, PlanMode, PlannerConfig};
use sonata_query::catalog::{self, Thresholds};
use sonata_query::QueryId;
use sonata_traffic::trace::EvaluationTrace;
use std::time::Instant;

/// A representative mirrored report: task id, two columns, and the
/// raw packet riding along (the worst per-packet case on the wire).
fn sample_report(seq: u64) -> Report {
    let pkt = PacketBuilder::tcp_raw(0x0a00_0001 + seq as u32, 33_000, 0x6307_0019, 80)
        .seq(seq as u32)
        .flags(TcpFlags(0x02))
        .build();
    let pkt = Packet::decode(&pkt.encode()).unwrap();
    Report {
        task: TaskId {
            query: QueryId(1),
            level: 32,
            branch: 0,
        },
        kind: ReportKind::Tuple,
        columns: vec![("ipv4.src".into(), 0x0a00_0001 + seq), ("count".into(), 1)],
        packet: Some(pkt),
        entry_op: None,
        seq,
    }
}

/// A representative end-of-window dump: 256 register tuples in one
/// batch frame (batch coalescing is the whole point of this frame).
fn sample_dump() -> Frame {
    let tuples = (0..256)
        .map(|i| Report {
            packet: None,
            kind: ReportKind::WindowDump,
            ..sample_report(i)
        })
        .collect();
    Frame::WindowDump {
        window: 3,
        dump: WindowDump {
            tuples,
            suppressed: 17,
            occupancy: 256,
            shunted_packets: 4,
            bounds: Vec::new(),
        },
    }
}

/// Median-free quick timing: ns per op over `iters` runs of `f`.
fn time_per_op(iters: u64, mut f: impl FnMut()) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

fn bench_net_overhead(c: &mut Criterion) {
    let mut json = BenchJson::new("net_overhead");

    // ---------------------------------------------------- codec series
    let report_frame = Frame::Report(sample_report(42));
    let dump_frame = sample_dump();
    let mut group = c.benchmark_group("net_codec");
    group.sample_size(20);
    for (label, frame) in [("report", &report_frame), ("window_dump", &dump_frame)] {
        let bytes = encode_frame(frame);
        group.throughput(Throughput::Bytes(bytes.len() as u64));
        group.bench_with_input(BenchmarkId::new("encode", label), frame, |b, frame| {
            b.iter(|| encode_frame(frame));
        });
        group.bench_with_input(BenchmarkId::new("decode", label), &bytes, |b, bytes| {
            b.iter(|| decode_frame(bytes).unwrap());
        });
        let iters = if bytes.len() > 4096 { 2_000 } else { 50_000 };
        json.point(
            "codec_encode_ns",
            bytes.len() as f64,
            time_per_op(iters, || {
                std::hint::black_box(encode_frame(frame));
            }),
        );
        json.point(
            "codec_decode_ns",
            bytes.len() as f64,
            time_per_op(iters, || {
                std::hint::black_box(decode_frame(&bytes).unwrap());
            }),
        );
    }
    group.finish();

    // ------------------------------------------- end-to-end transport
    let ev = EvaluationTrace::generate(1, 2, 3_000, 0.1);
    let queries = catalog::top8(&Thresholds::default());
    let windows: Vec<&[Packet]> = ev.trace.windows(3_000).map(|(_, p)| p).collect();
    let pkts: Vec<Packet> = windows[0].to_vec();

    let cfg = PlannerConfig {
        mode: PlanMode::Sonata,
        cost: CostConfig {
            levels: Some(vec![8, 16, 24, 32]),
            ..Default::default()
        },
        ..PlannerConfig::default()
    };
    let plan = plan_queries(&queries, &windows, &cfg).unwrap();

    json.config_num("packets_per_window", pkts.len() as f64)
        .config_str("queries", "top8")
        .config_str("mode", "sonata");

    let mut group = c.benchmark_group("net_overhead");
    group.sample_size(20);
    group.throughput(Throughput::Elements(pkts.len() as u64));
    for transport in [TransportKind::Loopback, TransportKind::Tcp] {
        group.bench_with_input(
            BenchmarkId::new("window", transport.name()),
            &plan,
            |b, plan| {
                b.iter_batched(
                    || {
                        Runtime::new(
                            plan,
                            RuntimeConfig {
                                transport,
                                ..RuntimeConfig::default()
                            },
                        )
                        .unwrap()
                    },
                    |mut rt| {
                        rt.process_window(0, &pkts).unwrap();
                        rt
                    },
                    criterion::BatchSize::LargeInput,
                );
            },
        );
        // One JSON point per backend: microseconds per window, best of
        // a few runs so a cold socket accept doesn't skew the series.
        let us = (0..5)
            .map(|_| {
                let mut rt = Runtime::new(
                    &plan,
                    RuntimeConfig {
                        transport,
                        ..RuntimeConfig::default()
                    },
                )
                .unwrap();
                let start = Instant::now();
                rt.process_window(0, &pkts).unwrap();
                start.elapsed().as_micros() as f64
            })
            .fold(f64::INFINITY, f64::min);
        json.point(
            &format!("window_us_{}", transport.name()),
            pkts.len() as f64,
            us,
        );
    }
    group.finish();

    json.write();
}

criterion_group!(benches, bench_net_overhead);
criterion_main!(benches);
