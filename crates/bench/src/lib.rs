//! # sonata-bench
//!
//! Experiment harnesses that regenerate every table and figure of the
//! paper's evaluation (Section 6), plus Criterion micro-benchmarks.
//!
//! One binary per artifact (`cargo run --release -p sonata-bench --bin <name>`):
//!
//! | binary | reproduces |
//! |---|---|
//! | `table3_queries` | Table 3 — the 11 queries and lines-of-code comparison |
//! | `fig3_collisions` | Figure 3 — collision rate vs. incoming keys for d = 1..4 |
//! | `fig5_refinement_costs` | Figure 5 — N/B costs per refinement transition (Query 1) |
//! | `fig7a_single_query` | Figure 7a — single-query tuples across the five plans |
//! | `fig7b_multi_query` | Figure 7b — tuples vs. number of concurrent queries |
//! | `fig8_constraints` | Figure 8a–d — tuples vs. stages / actions / memory / metadata |
//! | `fig9_case_study` | Figure 9 — the Zorro end-to-end detection timeline |
//! | `update_overhead` | Section 6.2 — dynamic-refinement update latency |
//! | `solver_behavior` | Section 6.1 — ILP solver behavior vs. the greedy planner |
//!
//! Each binary prints the series to stdout and writes a CSV under
//! `results/`. Scale factors keep laptop runtimes in seconds-to-
//! minutes; the *shape* of every series (who wins, by what factor,
//! where crossovers fall) is the reproduction target, per
//! EXPERIMENTS.md.

use sonata_core::{Runtime, RuntimeConfig, TelemetryReport};
use sonata_packet::Packet;
use sonata_planner::costs::{estimate_costs, CostConfig, QueryCosts};
use sonata_planner::{plan_with_costs, GlobalPlan, PlanMode, PlannerConfig};
use sonata_query::Query;
use sonata_traffic::Trace;
use std::io::Write;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Common experiment knobs, overridable via env vars
/// (`SONATA_SCALE`, `SONATA_WINDOWS`, `SONATA_SEED`).
#[derive(Debug, Clone)]
pub struct ExperimentCtx {
    /// Background-traffic scale factor (1.0 ≈ 100k pkts / 3 s window).
    pub scale: f64,
    /// Number of 3-second windows.
    pub windows: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ExperimentCtx {
    fn default() -> Self {
        let f = |k: &str, d: f64| {
            std::env::var(k)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(d)
        };
        ExperimentCtx {
            scale: f("SONATA_SCALE", 0.3),
            windows: f("SONATA_WINDOWS", 3.0) as u32,
            seed: f("SONATA_SEED", 1.0) as u64,
        }
    }
}

impl ExperimentCtx {
    /// The standard evaluation trace for this context.
    pub fn evaluation_trace(&self) -> Trace {
        sonata_traffic::trace::EvaluationTrace::generate(self.seed, self.windows, 3_000, self.scale)
            .trace
    }
}

/// Result of running one plan end to end.
#[derive(Debug, Clone)]
pub struct MeasuredRun {
    /// The mode that produced the plan.
    pub mode: PlanMode,
    /// Tuples delivered to the stream processor, whole trace.
    pub tuples: u64,
    /// Packets processed.
    pub packets: u64,
    /// Worst-case detection delay in windows.
    pub delay: usize,
    /// The full report, for deeper inspection.
    pub report: TelemetryReport,
}

/// Estimate costs for a query set once (they are constraint-independent
/// and reusable across sweep points).
pub fn estimate_all(queries: &[Query], trace: &Trace, levels: &[u8]) -> Vec<QueryCosts> {
    let windows: Vec<&[Packet]> = trace.windows(3_000).map(|(_, p)| p).collect();
    let cfg = CostConfig {
        levels: Some(levels.to_vec()),
        ..Default::default()
    };
    queries
        .iter()
        .map(|q| estimate_costs(q, &windows, &cfg).expect("cost estimation"))
        .collect()
}

/// Plan with a mode and measure the actual run.
pub fn measure(
    queries: &[Query],
    costs: &[QueryCosts],
    trace: &Trace,
    mode: PlanMode,
    planner_cfg: &PlannerConfig,
) -> MeasuredRun {
    let cfg = PlannerConfig {
        mode,
        ..planner_cfg.clone()
    };
    let plan: GlobalPlan = plan_with_costs(queries, costs, &cfg).expect("plan");
    let mut rt = Runtime::new(
        &plan,
        RuntimeConfig {
            constraints: cfg.constraints,
            ..RuntimeConfig::default()
        },
    )
    .expect("deployable plan");
    let report = rt.process_trace(trace).expect("clean run");
    MeasuredRun {
        mode,
        tuples: report.total_tuples(),
        packets: report.total_packets(),
        delay: plan.max_delay_windows(),
        report,
    }
}

/// Write a CSV under `results/`, creating the directory; returns the path.
pub fn write_csv(name: &str, header: &str, rows: &[String]) -> PathBuf {
    let dir =
        PathBuf::from(std::env::var("SONATA_RESULTS").unwrap_or_else(|_| "results".to_string()));
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).expect("create csv");
    writeln!(f, "{header}").unwrap();
    for row in rows {
        writeln!(f, "{row}").unwrap();
    }
    eprintln!("wrote {}", path.display());
    path
}

/// Machine-readable results writer: every experiment binary emits one
/// `results/<bench>.json` with the uniform schema
/// `{"bench": ..., "config": {...}, "series": [{"name", "points": [[x, y], ...]}]}`
/// alongside its CSV, so plotting scripts and CI diffing need no
/// per-binary parsing.
#[derive(Debug, Clone)]
pub struct BenchJson {
    bench: String,
    config: Vec<(String, ConfigValue)>,
    series: Vec<Series>,
}

#[derive(Debug, Clone)]
enum ConfigValue {
    Num(f64),
    Str(String),
}

#[derive(Debug, Clone)]
struct Series {
    name: String,
    points: Vec<(f64, f64)>,
}

impl BenchJson {
    /// Start a result set for `bench` (also the output file stem).
    pub fn new(bench: &str) -> Self {
        BenchJson {
            bench: bench.to_string(),
            config: Vec::new(),
            series: Vec::new(),
        }
    }

    /// Record a numeric configuration knob (scale, windows, seed, ...).
    pub fn config_num(&mut self, key: &str, value: f64) -> &mut Self {
        self.config.push((key.to_string(), ConfigValue::Num(value)));
        self
    }

    /// Record a textual configuration knob (mode names, query sets).
    pub fn config_str(&mut self, key: &str, value: &str) -> &mut Self {
        self.config
            .push((key.to_string(), ConfigValue::Str(value.to_string())));
        self
    }

    /// Append one `(x, y)` point to `series`, creating it on first use.
    pub fn point(&mut self, series: &str, x: f64, y: f64) -> &mut Self {
        match self.series.iter_mut().find(|s| s.name == series) {
            Some(s) => s.points.push((x, y)),
            None => self.series.push(Series {
                name: series.to_string(),
                points: vec![(x, y)],
            }),
        }
        self
    }

    /// Render the uniform schema.
    pub fn to_json(&self) -> String {
        let mut w = sonata_obs::json::JsonWriter::new();
        w.begin_object();
        w.key("bench");
        w.value_str(&self.bench);
        w.key("config");
        w.begin_object();
        for (k, v) in &self.config {
            w.key(k);
            match v {
                ConfigValue::Num(n) => w.value_f64(*n),
                ConfigValue::Str(s) => w.value_str(s),
            }
        }
        w.end_object();
        w.key("series");
        w.begin_array();
        for s in &self.series {
            w.begin_object();
            w.key("name");
            w.value_str(&s.name);
            w.key("points");
            w.begin_array();
            for &(x, y) in &s.points {
                w.begin_array();
                w.value_f64(x);
                w.value_f64(y);
                w.end_array();
            }
            w.end_array();
            w.end_object();
        }
        w.end_array();
        w.end_object();
        w.finish()
    }

    /// Write `results/<bench>.json` (same directory rules as
    /// [`write_csv`]); returns the path.
    pub fn write(&self) -> PathBuf {
        let dir = PathBuf::from(
            std::env::var("SONATA_RESULTS").unwrap_or_else(|_| "results".to_string()),
        );
        std::fs::create_dir_all(&dir).expect("create results dir");
        let path = dir.join(format!("{}.json", self.bench));
        std::fs::write(&path, self.to_json()).expect("write json");
        eprintln!("wrote {}", path.display());
        path
    }
}

/// Manual time-boxed measurement (~50 ms warmup, ~300 ms measured),
/// matching the vendored criterion harness's regime: returns seconds
/// per iteration. Bench binaries use it to produce the numbers they
/// emit as machine-readable [`BenchJson`] series alongside criterion's
/// console output (the vendored harness does not expose its
/// measurements to the caller).
pub fn time_per_iter<R>(mut routine: impl FnMut() -> R) -> f64 {
    let warm = Instant::now() + Duration::from_millis(50);
    while Instant::now() < warm {
        std::hint::black_box(routine());
    }
    let start = Instant::now();
    let deadline = start + Duration::from_millis(300);
    let mut iters = 0u64;
    loop {
        std::hint::black_box(routine());
        iters += 1;
        if Instant::now() >= deadline {
            break;
        }
    }
    start.elapsed().as_secs_f64() / iters as f64
}

/// [`time_per_iter`] with a per-iteration setup excluded from the
/// measurement, mirroring criterion's `iter_batched`.
pub fn time_per_iter_batched<I, R>(
    mut setup: impl FnMut() -> I,
    mut routine: impl FnMut(I) -> R,
) -> f64 {
    let warm = Instant::now() + Duration::from_millis(50);
    while Instant::now() < warm {
        std::hint::black_box(routine(setup()));
    }
    let mut total = Duration::ZERO;
    let mut iters = 0u64;
    while total < Duration::from_millis(300) {
        let input = setup();
        let start = Instant::now();
        std::hint::black_box(routine(input));
        total += start.elapsed();
        iters += 1;
    }
    total.as_secs_f64() / iters as f64
}

/// Format a tuple count the way the paper's log-scale plots read.
pub fn fmt_tuples(n: u64) -> String {
    if n >= 10_000_000 {
        format!("{:.1}e7", n as f64 / 1e7)
    } else if n >= 10_000 {
        format!("{:.0}k", n as f64 / 1e3)
    } else {
        n.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sonata_obs::json::{parse, JsonValue};

    #[test]
    fn bench_json_schema_round_trips() {
        let mut b = BenchJson::new("fig_test");
        b.config_num("scale", 0.3)
            .config_str("queries", "q1,q5")
            .point("sonata", 1.0, 120.0)
            .point("sonata", 2.0, 90.0)
            .point("all_sp", 1.0, 1000.0);
        let v = parse(&b.to_json()).expect("valid json");
        assert_eq!(v.get("bench").and_then(JsonValue::as_str), Some("fig_test"));
        assert_eq!(
            v.get("config")
                .and_then(|c| c.get("scale"))
                .and_then(JsonValue::as_f64),
            Some(0.3)
        );
        let series = v.get("series").and_then(JsonValue::as_array).unwrap();
        assert_eq!(series.len(), 2);
        assert_eq!(
            series[0].get("name").and_then(JsonValue::as_str),
            Some("sonata")
        );
        let pts = series[0]
            .get("points")
            .and_then(JsonValue::as_array)
            .unwrap();
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[1].as_array().unwrap()[1].as_f64(), Some(90.0));
    }
}
