//! Section 6.1, "Query planning": solver behavior on the joint
//! partitioning + refinement ILP.
//!
//! The paper notes that Gurobi finds near-optimal plans in 10–20
//! minutes but needs hours to prove optimality, so Sonata caps the
//! solver and takes the best feasible plan. This binary reproduces
//! that trade-off with our branch-and-bound MILP: it compares the ILP
//! optimum against the combinatorial (greedy + shortest-path) planner
//! on growing instances, and shows plan quality under shrinking node
//! budgets.

use sonata_bench::{write_csv, BenchJson, ExperimentCtx};
use sonata_ilp::SolveOptions;
use sonata_packet::Packet;
use sonata_planner::costs::{estimate_costs, CostConfig};
use sonata_planner::ilp_planner::instance_size;
use sonata_planner::{plan_ilp, plan_with_costs, PlannerConfig};
use sonata_query::catalog::{self, Thresholds};
use std::time::Instant;

fn main() {
    let ctx = ExperimentCtx::default();
    let trace = ctx.evaluation_trace();
    let windows: Vec<&[Packet]> = trace.windows(3_000).map(|(_, p)| p).collect();
    let queries = catalog::top8(&Thresholds::default());
    let cfg = PlannerConfig {
        cost: CostConfig {
            levels: Some(vec![8, 32]),
            ..Default::default()
        },
        max_delay: 3,
        ..PlannerConfig::default()
    };

    println!("# Section 6.1: ILP vs combinatorial planner");
    println!(
        "{:>7} | {:>6} | {:>10} | {:>10} | {:>8} | {:>8} | {:>6}",
        "queries", "vars", "ilp N/win", "greedy N", "ilp ms", "greedy µs", "nodes"
    );
    let mut json = BenchJson::new("solver_behavior");
    json.config_num("scale", ctx.scale)
        .config_num("seed", ctx.seed as f64)
        .config_num("max_nodes", 50_000.0);
    let mut rows = Vec::new();
    for n in 1..=4usize {
        let qs = &queries[..n];
        let costs: Vec<_> = qs
            .iter()
            .map(|q| estimate_costs(q, &windows, &cfg.cost).expect("estimable"))
            .collect();
        let (vars, _) = instance_size(&costs, cfg.constraints.stages);

        let t0 = Instant::now();
        let greedy = plan_with_costs(qs, &costs, &cfg).expect("greedy plan");
        let greedy_time = t0.elapsed();

        let t0 = Instant::now();
        let opts = SolveOptions {
            max_nodes: 50_000,
            time_limit: std::time::Duration::from_secs(120),
            ..Default::default()
        };
        let ilp = plan_ilp(qs, &costs, &cfg, &opts).expect("ilp plan");
        let ilp_time = t0.elapsed();

        println!(
            "{:>7} | {:>6} | {:>10.0} | {:>10.0} | {:>8.0} | {:>8.0} | {:>6}",
            n,
            vars,
            ilp.predicted_tuples,
            greedy.predicted_tuples,
            ilp_time.as_secs_f64() * 1000.0,
            greedy_time.as_secs_f64() * 1e6,
            "-"
        );
        rows.push(format!(
            "{n},{vars},{:.0},{:.0},{:.3},{:.3}",
            ilp.predicted_tuples,
            greedy.predicted_tuples,
            ilp_time.as_secs_f64() * 1000.0,
            greedy_time.as_secs_f64() * 1000.0
        ));
        json.point("vars", n as f64, vars as f64)
            .point("ilp_tuples", n as f64, ilp.predicted_tuples)
            .point("greedy_tuples", n as f64, greedy.predicted_tuples)
            .point("ilp_ms", n as f64, ilp_time.as_secs_f64() * 1000.0)
            .point("greedy_ms", n as f64, greedy_time.as_secs_f64() * 1000.0);
        // The exact ILP can never be worse than the greedy heuristic.
        assert!(
            ilp.predicted_tuples <= greedy.predicted_tuples + 1e-6,
            "n={n}: ilp {} vs greedy {}",
            ilp.predicted_tuples,
            greedy.predicted_tuples
        );
    }
    write_csv(
        "solver_behavior.csv",
        "queries,vars,ilp_n,greedy_n,ilp_ms,greedy_ms",
        &rows,
    );

    // Budget sensitivity: tiny node caps still yield feasible plans —
    // the paper's "report the best (possibly sub-optimal) solution".
    let qs = &queries[..2];
    let costs: Vec<_> = qs
        .iter()
        .map(|q| estimate_costs(q, &windows, &cfg.cost).expect("estimable"))
        .collect();
    println!("\nnode budget | predicted N/win");
    let mut prev = f64::INFINITY;
    for nodes in [50usize, 200, 2_000, 50_000] {
        let opts = SolveOptions {
            max_nodes: nodes,
            time_limit: std::time::Duration::from_secs(120),
            ..Default::default()
        };
        match plan_ilp(qs, &costs, &cfg, &opts) {
            Ok(plan) => {
                println!("{nodes:>11} | {:.0}", plan.predicted_tuples);
                json.point("budget_tuples", nodes as f64, plan.predicted_tuples);
                assert!(
                    plan.predicted_tuples <= prev + 1e-6 || nodes <= 200,
                    "bigger budgets must not hurt"
                );
                prev = plan.predicted_tuples;
            }
            Err(e) => println!("{nodes:>11} | no incumbent ({e})"),
        }
    }

    // The greedy planner must track the ILP closely (it is the default
    // for the large instances the ILP cannot chew).
    json.write();
    let greedy = plan_with_costs(qs, &costs, &cfg).expect("greedy");
    println!(
        "\n2-query optimum gap: greedy {:.0} vs ILP {:.0}",
        greedy.predicted_tuples, prev
    );
}
