//! Figure 5 (and the Section 3.3 worked example): the refinement
//! transition cost matrix for Query 1 — for each transition
//! `rᵢ → rᵢ₊₁`, the packets sent to the stream processor if only the
//! filter executes on the switch (N₁), if the reduce executes too
//! (N₂), and the register state it needs (B).
//!
//! Paper shape: filtering through a coarser level first slashes both
//! N₁ and B at the finer level (the 8→32 row needs a fraction of the
//! *→32 row's state), while N₂ stays tiny everywhere — that asymmetry
//! is exactly why the planner's chosen chain (*→8→32 in the paper)
//! beats both no-refinement and fixed one-level-at-a-time zooming.

use sonata_bench::{write_csv, BenchJson, ExperimentCtx};
use sonata_packet::Packet;
use sonata_planner::costs::{estimate_costs, CostConfig};
use sonata_query::catalog::{self, Thresholds};

fn main() {
    let ctx = ExperimentCtx::default();
    let trace = ctx.evaluation_trace();
    let windows: Vec<&[Packet]> = trace.windows(3_000).map(|(_, p)| p).collect();
    let q = catalog::newly_opened_tcp_conns(&Thresholds::default());
    let cfg = CostConfig {
        levels: Some(vec![8, 16, 32]),
        ..Default::default()
    };
    let costs = estimate_costs(&q, &windows, &cfg).expect("estimable");

    println!("# Figure 5: Query 1 refinement transition costs");
    println!(
        "{:>9} | {:>10} | {:>8} | {:>10}",
        "r_i→r_i+1", "N1 (pkts)", "N2", "B (Kb)"
    );
    println!("----------+------------+----------+-----------");
    let mut json = BenchJson::new("fig5_refinement_costs");
    json.config_num("scale", ctx.scale)
        .config_num("seed", ctx.seed as f64)
        .config_str("query", "newly_opened_tcp_conns");
    let mut rows = Vec::new();
    let mut table = std::collections::BTreeMap::new();
    for (&(prev, level), t) in &costs.transitions {
        let bc = &t.branches[0];
        // N1: everything except the reduce on the switch (the unit
        // just before the stateful one — uniform across transitions
        // whether or not a dynamic filter was prepended).
        let n1 = bc.n[bc.max_units - 1];
        let n2 = bc.n[bc.max_units]; // after the reduce (thresholded)
        let b_bits = bc.register_bits(0, 1.5, 2);
        let label = match prev {
            None => format!("*→{level}"),
            Some(p) => format!("{p}→{level}"),
        };
        println!(
            "{:>9} | {:>10.0} | {:>8.0} | {:>10.1}",
            label,
            n1,
            n2,
            b_bits as f64 / 1000.0
        );
        rows.push(format!("{label},{n1:.0},{n2:.0},{}", b_bits));
        // x = target level; transitions from * are one series, the
        // coarse-to-fine hops another.
        let series = match prev {
            None => "from_star",
            Some(_) => "from_coarse",
        };
        json.point(&format!("{series}_n1"), level as f64, n1)
            .point(&format!("{series}_n2"), level as f64, n2)
            .point(&format!("{series}_b_bits"), level as f64, b_bits as f64);
        table.insert((prev, level), (n1, n2, b_bits));
    }
    write_csv(
        "fig5_refinement_costs.csv",
        "transition,n1,n2,b_bits",
        &rows,
    );
    json.write();

    // Shape assertions against the paper's Figure 5 relationships.
    let star32 = table[&(None, 32u8)];
    let f8_32 = table[&(Some(8u8), 32u8)];
    let star8 = table[&(None, 8u8)];
    assert!(
        f8_32.0 < star32.0,
        "filtering via /8 must cut fine-level packets: {} vs {}",
        f8_32.0,
        star32.0
    );
    assert!(
        f8_32.2 < star32.2,
        "filtering via /8 must cut fine-level state: {} vs {}",
        f8_32.2,
        star32.2
    );
    assert!(
        star8.2 < star32.2 / 4,
        "coarse aggregation needs far less state"
    );
    assert!(star8.1 <= star8.0 && star32.1 <= star32.0, "N2 ≤ N1 always");

    // The Section 3.3 worked-example structure: full-query-on-switch
    // reports orders of magnitude fewer tuples than filter-only.
    assert!(
        star32.1 * 50.0 < star32.0,
        "reduce on switch must dominate filter-only: {} vs {}",
        star32.1,
        star32.0
    );
    println!("\nshape checks passed (coarse filtering slashes N1 and B downstream)");
}
