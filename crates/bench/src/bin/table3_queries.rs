//! Table 3: the eleven telemetry queries, with the lines-of-code
//! comparison — Sonata source vs. the code each task needs on the raw
//! targets (our generated P4 program and Spark-style stream plan).
//!
//! The paper's absolute numbers come from its hand-written P4/Spark
//! programs; ours come from this repository's code generators, so the
//! comparison target is the *shape*: every task fits in ≤ 20 lines of
//! Sonata while the per-target programs are one to two orders larger.

use sonata_bench::{write_csv, BenchJson};
use sonata_pisa::codegen::p4_loc;
use sonata_pisa::compile::{compile_pipeline, max_switch_units, table_specs, RegisterSizing};
use sonata_pisa::{PisaProgram, TaskId};
use sonata_query::catalog::{self, Thresholds};
use sonata_stream::stream_loc;

fn main() {
    let queries = catalog::all(&Thresholds::default());
    println!("# Table 3: Implemented Sonata queries (lines of code)");
    println!(
        "{:>2} | {:<22} | {:>6} | {:>4} | {:>6}",
        "#", "query", "Sonata", "P4", "Stream"
    );
    println!("---+------------------------+--------+------+-------");
    let mut json = BenchJson::new("table3_queries");
    json.config_str("thresholds", "default");
    let mut rows = Vec::new();
    for (i, q) in queries.iter().enumerate() {
        // Compile every branch at its maximum partition into one
        // program — the P4 Sonata would generate for this task.
        let mut program = PisaProgram::default();
        let mut branches: Vec<&sonata_query::Pipeline> = vec![&q.pipeline];
        if let Some(j) = &q.join {
            branches.push(&j.right);
        }
        let mut reg_base = 0;
        let mut meta_base = 0;
        for (b, pipeline) in branches.iter().enumerate() {
            let specs = table_specs(pipeline);
            let k = max_switch_units(&specs);
            let stateful = specs.iter().take(k).filter(|s| s.stateful).count();
            let mut stages = Vec::new();
            let mut cur = 0;
            for s in specs.iter().take(k) {
                stages.push(cur);
                cur += s.stage_cost;
            }
            let compiled = compile_pipeline(
                pipeline,
                TaskId {
                    query: q.id,
                    level: 32,
                    branch: b as u8,
                },
                &stages,
                &vec![RegisterSizing::default(); stateful],
                meta_base,
                reg_base,
            )
            .expect("catalog query compiles");
            meta_base = compiled.fragment.meta_slots.max(meta_base);
            reg_base += compiled.fragment.registers.len() as u32;
            program.merge(compiled.fragment);
        }
        let sonata = q.sonata_loc();
        let p4 = p4_loc(&program);
        let stream = stream_loc(q);
        println!(
            "{:>2} | {:<22} | {:>6} | {:>4} | {:>6}",
            i + 1,
            q.name,
            sonata,
            p4,
            stream
        );
        rows.push(format!("{},{},{},{},{}", i + 1, q.name, sonata, p4, stream));
        json.point("sonata_loc", (i + 1) as f64, sonata as f64)
            .point("p4_loc", (i + 1) as f64, p4 as f64)
            .point("stream_loc", (i + 1) as f64, stream as f64);
        assert!(sonata <= 20, "paper: every task under 20 Sonata lines");
        assert!(p4 > sonata * 3, "P4 must dwarf the Sonata source");
    }
    write_csv(
        "table3_queries.csv",
        "num,query,sonata_loc,p4_loc,stream_loc",
        &rows,
    );
    json.write();
}
