//! Figure 8a–d: how switch resource constraints shape the workload on
//! the stream processor, running all eight queries concurrently under
//! Max-DP, Fix-REF, and Sonata while sweeping one constraint at a time:
//!
//! * (a) pipeline stages `S` ∈ {1, 2, 4, 8, 12, 16, 32}
//! * (b) stateful actions per stage `A` ∈ {1, 2, 4, 8, 12, 16, 32}
//! * (c) register memory per stage `B` ∈ {0.5, 1, 2, 4, 8, 12, 16, 32} Mb
//! * (d) metadata size `M` ∈ {0.25, 0.5, 1, 2, 4, 8} KB
//!
//! Paper shape: more of any resource monotonically (within noise)
//! reduces the load; Sonata ≤ Fix-REF everywhere; tight constraints
//! push every plan toward the All-SP ceiling.

use sonata_bench::{estimate_all, fmt_tuples, measure, write_csv, BenchJson, ExperimentCtx};
use sonata_pisa::SwitchConstraints;
use sonata_planner::costs::{CostConfig, SketchPolicy};
use sonata_planner::{PlanMode, PlannerConfig};
use sonata_query::catalog::{self, Thresholds};

const MODES: [PlanMode; 3] = [PlanMode::MaxDp, PlanMode::FixRef, PlanMode::Sonata];

#[allow(clippy::too_many_arguments)]
fn sweep<F>(
    name: &str,
    points: &[f64],
    make: F,
    queries: &[sonata_query::Query],
    costs: &[sonata_planner::costs::QueryCosts],
    trace: &sonata_traffic::Trace,
    base_cfg: &PlannerConfig,
    json: &mut BenchJson,
) -> Vec<(f64, Vec<u64>)>
where
    F: Fn(f64) -> SwitchConstraints,
{
    println!("\n## Figure 8{name}");
    println!(
        "{:>8} | {:>10} {:>10} {:>10}",
        name, "Max-DP", "Fix-REF", "Sonata"
    );
    let mut rows = Vec::new();
    let mut out = Vec::new();
    for &p in points {
        let constraints = make(p);
        let mut cells = Vec::new();
        for mode in MODES {
            let cfg = PlannerConfig {
                mode,
                constraints,
                ..base_cfg.clone()
            };
            let run = measure(queries, costs, trace, mode, &cfg);
            json.point(&format!("{name}_{}", mode.label()), p, run.tuples as f64);
            cells.push(run.tuples);
        }
        println!(
            "{:>8} | {:>10} {:>10} {:>10}",
            p,
            fmt_tuples(cells[0]),
            fmt_tuples(cells[1]),
            fmt_tuples(cells[2])
        );
        rows.push(format!("{p},{},{},{}", cells[0], cells[1], cells[2]));
        out.push((p, cells));
    }
    write_csv(
        &format!("fig8{name}.csv"),
        &format!("{name},max_dp,fix_ref,sonata"),
        &rows,
    );
    out
}

/// Figure 8c with a fourth series: Sonata planning under the ε = 5%
/// sketch cost model (`sonata-sketch` layouts). Approximate registers
/// shrink stateful state dramatically, so the memory wall moves: the
/// sketch series should track (or beat) exact Sonata everywhere and
/// beat it clearly at the tight end of the sweep.
fn sweep_memory(
    points: &[f64],
    queries: &[sonata_query::Query],
    costs: &[sonata_planner::costs::QueryCosts],
    trace: &sonata_traffic::Trace,
    base_cfg: &PlannerConfig,
    json: &mut BenchJson,
) -> Vec<(f64, Vec<u64>)> {
    let name = "c_memory_mb";
    let d = SwitchConstraints::default();
    println!("\n## Figure 8{name}");
    println!(
        "{:>8} | {:>10} {:>10} {:>10} {:>10}",
        name, "Max-DP", "Fix-REF", "Sonata", "Sk-Sonata"
    );
    let mut rows = Vec::new();
    let mut out = Vec::new();
    for &mb in points {
        let constraints = SwitchConstraints {
            register_bits_per_stage: (mb * 1_000_000.0) as u64,
            max_bits_per_register: ((mb / 2.0) * 1_000_000.0).max(500_000.0) as u64,
            ..d
        };
        let mut cells = Vec::new();
        for mode in MODES {
            let cfg = PlannerConfig {
                mode,
                constraints,
                ..base_cfg.clone()
            };
            let run = measure(queries, costs, trace, mode, &cfg);
            json.point(&format!("{name}_{}", mode.label()), mb, run.tuples as f64);
            cells.push(run.tuples);
        }
        let sketch_cfg = PlannerConfig {
            mode: PlanMode::Sonata,
            constraints,
            cost: CostConfig {
                sketch: SketchPolicy {
                    enabled: true,
                    epsilon: 0.05,
                    delta: 0.05,
                },
                ..base_cfg.cost.clone()
            },
            ..base_cfg.clone()
        };
        let run = measure(queries, costs, trace, PlanMode::Sonata, &sketch_cfg);
        json.point(&format!("{name}_sonata_sketch"), mb, run.tuples as f64);
        cells.push(run.tuples);
        println!(
            "{:>8} | {:>10} {:>10} {:>10} {:>10}",
            mb,
            fmt_tuples(cells[0]),
            fmt_tuples(cells[1]),
            fmt_tuples(cells[2]),
            fmt_tuples(cells[3])
        );
        rows.push(format!(
            "{mb},{},{},{},{}",
            cells[0], cells[1], cells[2], cells[3]
        ));
        out.push((mb, cells));
    }
    write_csv(
        &format!("fig8{name}.csv"),
        &format!("{name},max_dp,fix_ref,sonata,sonata_sketch"),
        &rows,
    );
    out
}

fn main() {
    let ctx = ExperimentCtx::default();
    let trace = ctx.evaluation_trace();
    let queries = catalog::top8(&Thresholds::default());
    let levels = vec![8u8, 16, 24, 32];
    let base_cfg = PlannerConfig {
        cost: CostConfig {
            levels: Some(levels.clone()),
            ..Default::default()
        },
        ..PlannerConfig::default()
    };
    let costs = estimate_all(&queries, &trace, &levels);
    let d = SwitchConstraints::default();
    let mut json = BenchJson::new("fig8_constraints");
    json.config_num("scale", ctx.scale)
        .config_num("windows", ctx.windows as f64)
        .config_num("seed", ctx.seed as f64)
        .config_str("queries", "top8");

    let a = sweep(
        "a_stages",
        &[1.0, 2.0, 4.0, 8.0, 12.0, 16.0, 32.0],
        |s| SwitchConstraints {
            stages: s as usize,
            ..d
        },
        &queries,
        &costs,
        &trace,
        &base_cfg,
        &mut json,
    );
    let b = sweep(
        "b_actions",
        &[1.0, 2.0, 4.0, 8.0, 12.0, 16.0, 32.0],
        |a| SwitchConstraints {
            stateful_per_stage: a as usize,
            ..d
        },
        &queries,
        &costs,
        &trace,
        &base_cfg,
        &mut json,
    );
    let c = sweep_memory(
        &[0.5, 1.0, 2.0, 4.0, 8.0, 12.0, 16.0, 32.0],
        &queries,
        &costs,
        &trace,
        &base_cfg,
        &mut json,
    );
    let m = sweep(
        "d_metadata_kb",
        &[0.25, 0.5, 1.0, 2.0, 4.0, 8.0],
        |kb| SwitchConstraints {
            metadata_bits: (kb * 8.0 * 1024.0) as u64,
            ..d
        },
        &queries,
        &costs,
        &trace,
        &base_cfg,
        &mut json,
    );

    json.write();

    // Shape checks: relaxing a constraint never hurts much, and at the
    // loosest point Sonata beats its tightest point by a wide margin.
    for (label, series) in [
        ("stages", &a),
        ("actions", &b),
        ("memory", &c),
        ("metadata", &m),
    ] {
        let sonata_first = series.first().unwrap().1[2];
        let sonata_last = series.last().unwrap().1[2];
        assert!(
            sonata_last <= sonata_first,
            "{label}: more resources must not increase Sonata's load"
        );
        // Sonata ≤ Fix-REF at every point.
        for (p, cells) in series {
            assert!(
                cells[2] <= cells[1],
                "{label}@{p}: Sonata {} > Fix-REF {}",
                cells[2],
                cells[1]
            );
        }
    }
    // Sketch shape check: at the tight end of the memory sweep the
    // ε = 5% layouts must not lose to exact sizing — cheap registers
    // mean more units fit the switch, so the SP load can only drop.
    let (tight, cells) = c.first().unwrap();
    assert!(
        cells[3] <= cells[2],
        "memory@{tight}: sketch Sonata {} > exact Sonata {}",
        cells[3],
        cells[2]
    );
    println!("\nshape checks passed (load falls as each constraint relaxes; Sonata ≤ Fix-REF; sketch ≤ exact at the memory wall)");
}
