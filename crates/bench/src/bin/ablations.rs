//! Ablations of Sonata's design choices (the DESIGN.md §5 list):
//!
//! 1. **d — register arrays per stateful operator**: more arrays cut
//!    collision shunts but multiply register memory; the sweep shows
//!    the accuracy/memory trade the paper's planner balances.
//! 2. **Relaxed thresholds at coarse levels** (Section 4.1): disabling
//!    relaxation keeps correctness but lets more benign prefixes
//!    survive coarse levels, inflating downstream load.
//! 3. **Refinement level set R**: the paper: "we consider a maximum of
//!    eight refinement levels … additional levels offered only
//!    marginal improvements."
//! 4. **Window size W**: shorter windows detect faster but pay the
//!    per-window update overhead more often (Section 6.1's W = 3 s
//!    balance).

use sonata_bench::{estimate_all, measure, write_csv, BenchJson, ExperimentCtx};
use sonata_core::{Runtime, RuntimeConfig};
use sonata_packet::Packet;
use sonata_planner::costs::CostConfig;
use sonata_planner::{plan_queries, PlanMode, PlannerConfig};
use sonata_query::catalog::{self, Thresholds};

fn main() {
    let ctx = ExperimentCtx::default();
    let trace = ctx.evaluation_trace();
    let queries = catalog::top8(&Thresholds::default());
    let mut json = BenchJson::new("ablations");
    json.config_num("scale", ctx.scale)
        .config_num("windows", ctx.windows as f64)
        .config_num("seed", ctx.seed as f64)
        .config_str("queries", "top8");

    // ---- 1. d sweep -------------------------------------------------
    println!("# Ablation 1: register arrays d (8 queries, Sonata plan)");
    println!(
        "{:>2} | {:>10} | {:>8} | {:>12}",
        "d", "tuples→SP", "shunts", "reg bits"
    );
    let mut rows = Vec::new();
    let levels = vec![8u8, 16, 24, 32];
    let costs = estimate_all(&queries, &trace, &levels);
    for d in [1usize, 2, 4] {
        let cfg = PlannerConfig {
            d,
            cost: CostConfig {
                levels: Some(levels.clone()),
                ..Default::default()
            },
            ..PlannerConfig::default()
        };
        let run = measure(&queries, &costs, &trace, PlanMode::Sonata, &cfg);
        let shunts = run.report.total_shunts();
        // Register memory the deployed plan declares.
        let plan = sonata_planner::plan_with_costs(&queries, &costs, &cfg).unwrap();
        let deployed = sonata_core::driver::deploy(&plan).unwrap();
        let bits: u64 = deployed
            .program
            .registers
            .iter()
            .map(|r| r.total_bits())
            .sum();
        println!("{d:>2} | {:>10} | {:>8} | {:>12}", run.tuples, shunts, bits);
        rows.push(format!("{d},{},{shunts},{bits}", run.tuples));
        json.point("d_tuples", d as f64, run.tuples as f64)
            .point("d_shunts", d as f64, shunts as f64)
            .point("d_reg_bits", d as f64, bits as f64);
    }
    write_csv("ablation_d.csv", "d,tuples,shunts,reg_bits", &rows);

    // ---- 2. threshold relaxation on/off ------------------------------
    println!("\n# Ablation 2: relaxed thresholds at coarse levels (Fix-REF chains)");
    println!("{:>9} | {:>10}", "relax", "tuples→SP");
    let mut rows = Vec::new();
    let mut measured = Vec::new();
    for relax in [true, false] {
        let cfg = PlannerConfig {
            mode: PlanMode::FixRef,
            cost: CostConfig {
                levels: Some(vec![8, 16, 24, 32]),
                relax_thresholds: relax,
                ..Default::default()
            },
            ..PlannerConfig::default()
        };
        // Re-estimate: relaxation changes the cost tables themselves.
        let windows: Vec<&[Packet]> = trace.windows(3_000).map(|(_, p)| p).collect();
        let plan = plan_queries(&queries, &windows, &cfg).unwrap();
        let mut rt = Runtime::new(&plan, RuntimeConfig::default()).unwrap();
        let report = rt.process_trace(&trace).unwrap();
        println!("{:>9} | {:>10}", relax, report.total_tuples());
        rows.push(format!("{relax},{}", report.total_tuples()));
        json.point(
            "relaxation_tuples",
            if relax { 1.0 } else { 0.0 },
            report.total_tuples() as f64,
        );
        measured.push(report.total_tuples());
    }
    write_csv("ablation_relaxation.csv", "relax,tuples", &rows);
    assert!(
        measured[0] <= measured[1],
        "relaxation must not increase load: {} vs {}",
        measured[0],
        measured[1]
    );

    // ---- 3. refinement level sets ------------------------------------
    println!("\n# Ablation 3: candidate level sets R (Sonata plan)");
    println!("{:<22} | {:>10} | {:>6}", "R", "tuples→SP", "delay");
    let mut rows = Vec::new();
    let mut by_set = Vec::new();
    for (name, set) in [
        ("{32}", vec![32u8]),
        ("{16,32}", vec![16, 32]),
        ("{8,16,24,32}", vec![8, 16, 24, 32]),
        ("{4,8,...,32}", vec![4, 8, 12, 16, 20, 24, 28, 32]),
    ] {
        let cfg = PlannerConfig {
            cost: CostConfig {
                levels: Some(set.clone()),
                ..Default::default()
            },
            ..PlannerConfig::default()
        };
        let costs = estimate_all(&queries, &trace, &set);
        let run = measure(&queries, &costs, &trace, PlanMode::Sonata, &cfg);
        println!("{:<22} | {:>10} | {:>6}", name, run.tuples, run.delay);
        rows.push(format!("\"{name}\",{},{}", run.tuples, run.delay));
        json.point("levels_tuples", set.len() as f64, run.tuples as f64)
            .point("levels_delay", set.len() as f64, run.delay as f64);
        by_set.push(run.tuples);
    }
    write_csv("ablation_levels.csv", "levels,tuples,delay", &rows);
    // Paper: additional levels offer only marginal improvements.
    let four = by_set[2] as f64;
    let eight = by_set[3] as f64;
    assert!(
        (eight - four).abs() / four.max(1.0) < 0.5,
        "8 levels vs 4 levels should be marginal: {four} vs {eight}"
    );

    // ---- 4. window size ----------------------------------------------
    println!("\n# Ablation 4: window size W (Query 1, Sonata plan)");
    println!(
        "{:>6} | {:>12} | {:>14} | {:>10}",
        "W (ms)", "tuples/win", "update/window", "% of W"
    );
    let mut rows = Vec::new();
    for window_ms in [1_000u64, 3_000, 10_000] {
        let q = catalog::newly_opened_tcp_conns(&Thresholds {
            window_ms,
            ..Thresholds::default()
        });
        let windows: Vec<&[Packet]> = trace.windows(window_ms).map(|(_, p)| p).collect();
        let cfg = PlannerConfig {
            cost: CostConfig {
                levels: Some(vec![8, 32]),
                ..Default::default()
            },
            ..PlannerConfig::default()
        };
        let plan = plan_queries(&[q], &windows, &cfg).unwrap();
        let mut rt = Runtime::new(&plan, RuntimeConfig::default()).unwrap();
        let report = rt.process_trace(&trace).unwrap();
        let per_win = report.total_tuples() as f64 / report.windows.len().max(1) as f64;
        let upd = report.total_update_latency().as_secs_f64() / report.windows.len().max(1) as f64;
        let frac = upd / (window_ms as f64 / 1000.0) * 100.0;
        println!(
            "{:>6} | {:>12.1} | {:>12.1}ms | {:>9.2}%",
            window_ms,
            per_win,
            upd * 1000.0,
            frac
        );
        rows.push(format!(
            "{window_ms},{per_win:.1},{:.3},{frac:.3}",
            upd * 1000.0
        ));
        json.point("window_tuples_per_window", window_ms as f64, per_win)
            .point("window_update_pct", window_ms as f64, frac);
    }
    write_csv(
        "ablation_window.csv",
        "window_ms,tuples_per_window,update_ms,update_pct",
        &rows,
    );
    json.write();
    println!("\nablation checks passed");
}
