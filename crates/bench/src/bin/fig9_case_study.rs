//! Figure 9: the end-to-end Tofino case study — detecting a Zorro
//! telnet attack on victim 99.7.0.25 with a two-level refinement chain
//! (the paper uses * → /24 → /32).
//!
//! Timeline (paper): background traffic flows from t = 0; the attacker
//! starts brute-forcing telnet at t = 10 s; Sonata identifies the
//! victim within one refinement chain (two tuples cross to the stream
//! processor); at t = 13 s the stream processor starts seeing the
//! telnet payloads of the suspected victim only (~100 pps, not 1.5 M);
//! shell access at t = 20 s emits the "zorro" keyword and the attack
//! is confirmed at t = 21 s.

use sonata_bench::{write_csv, BenchJson, ExperimentCtx};
use sonata_core::{Runtime, RuntimeConfig};
use sonata_packet::{format_ipv4, Packet};
use sonata_planner::costs::CostConfig;
use sonata_planner::{plan_queries, PlanMode, PlannerConfig};
use sonata_query::catalog::{self, Thresholds};
use sonata_traffic::trace::actors;
use sonata_traffic::{Attack, BackgroundConfig, Trace};

fn main() {
    let ctx = ExperimentCtx::default();
    let thresholds = Thresholds {
        zorro_pkts: 6,
        zorro_payloads: 0,
        ..Thresholds::default()
    };
    let query = catalog::zorro(&thresholds);

    // 24 s of traffic; attack from t = 10 s, shell at t = 20 s.
    let mut trace = Trace::background(
        &BackgroundConfig {
            duration_ms: 24_000,
            packets: (800_000.0 * ctx.scale) as usize,
            ..BackgroundConfig::default()
        },
        ctx.seed,
    );
    trace.inject(
        &Attack::Zorro {
            victim: actors::ZORRO_VICTIM,
            attacker: actors::ZORRO_ATTACKER,
            telnet_packets: 600,
            packet_len: 32,
            start_ms: 10_000,
            shell_ms: 20_000,
            shell_packets: 5,
        },
        ctx.seed,
    );

    // Force the paper's two-level chain (* → /24 → /32) via Fix-REF on
    // exactly those levels.
    let windows: Vec<&[Packet]> = trace.windows(3_000).map(|(_, p)| p).collect();
    let cfg = PlannerConfig {
        mode: PlanMode::FixRef,
        cost: CostConfig {
            levels: Some(vec![24, 32]),
            ..Default::default()
        },
        ..PlannerConfig::default()
    };
    let plan = plan_queries(std::slice::from_ref(&query), &windows, &cfg).expect("plannable");
    let chain: Vec<u8> = plan.queries[0].levels.iter().map(|l| l.level).collect();
    println!("# Figure 9: Zorro case study (chain * → {chain:?})");
    assert_eq!(chain, vec![24, 32], "the paper's two-level chain");

    let mut rt = Runtime::new(&plan, RuntimeConfig::default()).expect("deployable");
    let report = rt.process_trace(&trace).expect("clean run");

    println!(
        "{:>5} | {:>10} | {:>9} | events",
        "t(s)", "rx switch", "to SP"
    );
    let mut json = BenchJson::new("fig9_case_study");
    json.config_num("scale", ctx.scale)
        .config_num("seed", ctx.seed as f64)
        .config_str("query", "zorro")
        .config_str("chain", "24,32");
    let mut rows = Vec::new();
    let mut victim_identified = None;
    let mut attack_confirmed = None;
    for w in &report.windows {
        let t_end = (w.window + 1) * 3;
        let mut events = Vec::new();
        if w.filter_entries_written > 0 && victim_identified.is_none() {
            victim_identified = Some(t_end);
            events.push("victim prefix identified".to_string());
        }
        for (_, tuples) in &w.alerts {
            for t in tuples {
                attack_confirmed.get_or_insert(t_end);
                events.push(format!(
                    "ATTACK CONFIRMED on {}",
                    format_ipv4(t.get(0).as_u64().unwrap_or(0))
                ));
            }
        }
        println!(
            "{:>5} | {:>10} | {:>9} | {}",
            t_end,
            w.packets,
            w.tuples_to_sp,
            events.join("; ")
        );
        rows.push(format!(
            "{},{},{},{}",
            t_end,
            w.packets,
            w.tuples_to_sp,
            events.join(";")
        ));
        json.point("rx_switch", t_end as f64, w.packets as f64)
            .point("to_sp", t_end as f64, w.tuples_to_sp as f64);
    }
    write_csv("fig9_case_study.csv", "t_s,rx_switch,to_sp,events", &rows);
    json.write();

    let _ = victim_identified; // coarse prefixes (incl. benign telnet servers) flow every window
    let ac = attack_confirmed.expect("attack confirmed");
    println!("\nattack confirmed at t = {ac}s (shell access at 20s, keyword right after)");
    // Paper: confirmed ~1 s after the keyword; our windows are 3 s, so
    // confirmation lands at the first boundary after t = 20 s.
    assert!(
        (21..=24).contains(&ac),
        "confirmation right after shell access, got {ac}"
    );
    // The victim's telnet traffic starts reaching the stream processor
    // once the /24 level flags it: tuples to the SP jump after the
    // attack begins (the paper's t = 13 s payload-processing onset).
    let pre: u64 = report.windows.iter().take(3).map(|w| w.tuples_to_sp).sum();
    let post: u64 = report
        .windows
        .iter()
        .skip(4)
        .take(3)
        .map(|w| w.tuples_to_sp)
        .sum();
    println!("tuples→SP before attack: {pre}; during attack: {post}");
    assert!(
        post > pre + pre / 4,
        "attack traffic must visibly reach the stream processor ({pre} → {post})"
    );
    // Needle-in-haystack: tuples to SP ≪ packets. Per-query
    // attribution accounts for every tuple (one query installed).
    let total: u64 = report.total_tuples();
    assert_eq!(total, report.tuples_for(query.id), "per-query attribution");
    let packets: u64 = report.total_packets();
    assert!(total * 20 < packets, "{total} tuples for {packets} packets");
    println!("{packets} packets → {total} tuples at the stream processor");
}
