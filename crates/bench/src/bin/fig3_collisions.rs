//! Figure 3: hash-collision rate as the number of unique incoming
//! keys (k) grows relative to the register sizing estimate (n), for
//! d = 1..4 register arrays.
//!
//! Paper shape: the rate climbs with k/n and drops as d grows; at
//! k/n ≲ 0.5 collisions are negligible for d ≥ 2, and by k/n = 2 the
//! d = 1 curve is far above the d = 4 curve.

use sonata_bench::{write_csv, BenchJson};
use sonata_pisa::registers::collision_rate;

fn main() {
    let n = 16_384;
    let ds = [1usize, 2, 3, 4];
    let trials = 5;
    println!("# Figure 3: collision rate vs. incoming keys (n = {n})");
    println!(
        "{:>5} | {:>8} {:>8} {:>8} {:>8}",
        "k/n", "d=1", "d=2", "d=3", "d=4"
    );
    let mut json = BenchJson::new("fig3_collisions");
    json.config_num("n", n as f64)
        .config_num("trials", trials as f64);
    let mut rows = Vec::new();
    let mut curve: Vec<Vec<f64>> = vec![Vec::new(); ds.len()];
    for step in 0..=20 {
        let ratio = step as f64 / 10.0; // 0.0 ..= 2.0
        let keys = (ratio * n as f64) as usize;
        let mut cells = Vec::new();
        for (di, &d) in ds.iter().enumerate() {
            let rate: f64 = (0..trials)
                .map(|t| collision_rate(n, d, keys, 1000 + t))
                .sum::<f64>()
                / trials as f64;
            json.point(&format!("d{d}"), ratio, rate);
            curve[di].push(rate);
            cells.push(rate);
        }
        println!(
            "{:>5.2} | {:>8.4} {:>8.4} {:>8.4} {:>8.4}",
            ratio, cells[0], cells[1], cells[2], cells[3]
        );
        rows.push(format!(
            "{:.2},{:.6},{:.6},{:.6},{:.6}",
            ratio, cells[0], cells[1], cells[2], cells[3]
        ));
    }
    write_csv("fig3_collisions.csv", "k_over_n,d1,d2,d3,d4", &rows);
    json.write();

    // Shape assertions matching the paper's figure.
    for c in &curve {
        assert!(c[0] == 0.0, "no keys, no collisions");
        // Monotone non-decreasing in load (within simulation noise).
        for w in c.windows(2) {
            assert!(w[1] >= w[0] - 1e-3, "rate must climb with load");
        }
    }
    // A single array collides heavily past the estimate; each extra
    // array cuts the rate by an order of magnitude at full load.
    assert!(
        curve[0].last().unwrap() > &0.3,
        "d=1 at k/n=2 should be high"
    );
    for w in curve.windows(2) {
        assert!(
            *w[1].last().unwrap() <= w[0].last().unwrap() * 0.5,
            "d+1 must collide far less"
        );
    }
    let half_load_d2 = curve[1][5]; // k/n = 0.5, d = 2
    assert!(
        half_load_d2 < 0.08,
        "d=2 at half load ≈ collision-free, got {half_load_d2}"
    );
    println!("\nshape checks passed (rates climb with k/n, fall with d)");
}
