//! Section 6.2, "Overhead of dynamic refinement": the control-plane
//! cost of the per-window updates. The paper's Tofino micro-benchmarks
//! measure ≈127 ms to update 200 filter-table entries and ≈4 ms to
//! reset registers — ≈131 ms total, about 5 % of the 3-second window.
//!
//! This binary reproduces the numbers from the calibrated cost model
//! and then measures the update sizes an actual 8-query run generates.

use sonata_bench::{estimate_all, measure, write_csv, BenchJson, ExperimentCtx};
use sonata_pisa::control::{ControlOp, UpdateCostModel};
use sonata_planner::costs::CostConfig;
use sonata_planner::{PlanMode, PlannerConfig};
use sonata_query::catalog::{self, Thresholds};
use std::collections::BTreeSet;

fn main() {
    let model = UpdateCostModel::default();
    println!("# Section 6.2: dynamic-refinement update overhead");
    println!(
        "{:>8} | {:>12} | {:>10}",
        "entries", "latency (ms)", "% of W=3s"
    );
    let mut json = BenchJson::new("update_overhead");
    json.config_str("model", "tofino-calibrated");
    let mut rows = Vec::new();
    for entries in [0usize, 25, 50, 100, 200, 400] {
        let set: BTreeSet<u64> = (0..entries as u64).collect();
        let latency = model.cost_of(&ControlOp::SetDynFilter {
            table: "t".into(),
            entries: set,
        }) + model.cost_of(&ControlOp::ResetRegisters);
        let frac = latency.as_secs_f64() / 3.0 * 100.0;
        println!(
            "{:>8} | {:>12.1} | {:>9.2}%",
            entries,
            latency.as_secs_f64() * 1000.0,
            frac
        );
        rows.push(format!(
            "{},{:.3},{:.3}",
            entries,
            latency.as_secs_f64() * 1000.0,
            frac
        ));
        json.point(
            "model_latency_ms",
            entries as f64,
            latency.as_secs_f64() * 1000.0,
        );
    }
    write_csv(
        "update_overhead_model.csv",
        "entries,latency_ms,pct_of_window",
        &rows,
    );

    // The paper's headline numbers.
    let paper = model.cost_of(&ControlOp::SetDynFilter {
        table: "t".into(),
        entries: (0..200u64).collect(),
    }) + model.cost_of(&ControlOp::ResetRegisters);
    let ms = paper.as_secs_f64() * 1000.0;
    println!("\n200 entries + register reset: {ms:.0} ms (paper: ≈131 ms)");
    assert!((125.0..140.0).contains(&ms));
    let frac = paper.as_secs_f64() / 3.0;
    assert!(
        (0.03..0.06).contains(&frac),
        "≈5% of the window, got {frac:.3}"
    );

    // Measured update sizes for a real 8-query Sonata run.
    let ctx = ExperimentCtx::default();
    let trace = ctx.evaluation_trace();
    let queries = catalog::top8(&Thresholds::default());
    let levels = vec![8u8, 16, 24, 32];
    let costs = estimate_all(&queries, &trace, &levels);
    let cfg = PlannerConfig {
        cost: CostConfig {
            levels: Some(levels),
            ..Default::default()
        },
        ..PlannerConfig::default()
    };
    let run = measure(&queries, &costs, &trace, PlanMode::Sonata, &cfg);
    let mut rows = Vec::new();
    println!("\nwindow | filter entries written | update latency");
    for w in &run.report.windows {
        println!(
            "{:>6} | {:>22} | {:?}",
            w.window, w.filter_entries_written, w.update_latency
        );
        rows.push(format!(
            "{},{},{:.3}",
            w.window,
            w.filter_entries_written,
            w.update_latency.as_secs_f64() * 1000.0
        ));
        json.point(
            "measured_entries",
            w.window as f64,
            w.filter_entries_written as f64,
        )
        .point(
            "measured_latency_ms",
            w.window as f64,
            w.update_latency.as_secs_f64() * 1000.0,
        );
        // Updates must stay well under the window (no missed windows).
        assert!(w.update_latency.as_secs_f64() < 0.5 * 3.0);
    }
    write_csv(
        "update_overhead_measured.csv",
        "window,entries,latency_ms",
        &rows,
    );
    json.write();
    println!(
        "\ntotal update latency across run: {:?}",
        run.report.total_update_latency()
    );
}
