//! Figure 7a: single-query workload on the stream processor — each of
//! the top-8 queries run alone under the five plans of Table 4.
//!
//! Paper shape (log scale): All-SP is the ceiling (every packet);
//! Filter-DP only helps queries that filter away most traffic (SSH
//! brute force) and tracks All-SP for broad queries (superspreader);
//! Max-DP and Sonata sit orders of magnitude below; Fix-REF matches
//! Sonata's tuple counts for most queries but pays extra windows of
//! delay.

use sonata_bench::{estimate_all, fmt_tuples, measure, write_csv, BenchJson, ExperimentCtx};
use sonata_planner::costs::CostConfig;
use sonata_planner::{PlanMode, PlannerConfig};
use sonata_query::catalog::{self, Thresholds};

fn main() {
    let ctx = ExperimentCtx::default();
    let trace = ctx.evaluation_trace();
    let queries = catalog::top8(&Thresholds::default());
    let levels = vec![4u8, 8, 12, 16, 20, 24, 28, 32];
    let planner_cfg = PlannerConfig {
        cost: CostConfig {
            levels: Some(levels.clone()),
            ..Default::default()
        },
        ..PlannerConfig::default()
    };

    println!("# Figure 7a: tuples at the stream processor, single query at a time");
    println!(
        "({} packets over {} windows, scale {})",
        trace.len(),
        ctx.windows,
        ctx.scale
    );
    println!(
        "{:<22} | {:>9} {:>9} {:>9} {:>9} {:>9} | delay(F/S)",
        "query", "All-SP", "Filter-DP", "Max-DP", "Fix-REF", "Sonata"
    );
    let mut json = BenchJson::new("fig7a_single_query");
    json.config_num("scale", ctx.scale)
        .config_num("windows", ctx.windows as f64)
        .config_num("seed", ctx.seed as f64)
        .config_str("queries", "top8");
    let mut rows = Vec::new();
    for (qi, q) in queries.iter().enumerate() {
        let qs = vec![q.clone()];
        let costs = estimate_all(&qs, &trace, &levels);
        let mut cells = Vec::new();
        let mut delays = (0usize, 0usize);
        for &mode in PlanMode::ALL {
            let run = measure(&qs, &costs, &trace, mode, &planner_cfg);
            if mode == PlanMode::FixRef {
                delays.0 = run.delay;
            }
            if mode == PlanMode::Sonata {
                delays.1 = run.delay;
            }
            json.point(mode.label(), qi as f64, run.tuples as f64);
            cells.push(run.tuples);
        }
        println!(
            "{:<22} | {:>9} {:>9} {:>9} {:>9} {:>9} | {}/{}",
            q.name,
            fmt_tuples(cells[0]),
            fmt_tuples(cells[1]),
            fmt_tuples(cells[2]),
            fmt_tuples(cells[3]),
            fmt_tuples(cells[4]),
            delays.0,
            delays.1
        );
        rows.push(format!(
            "{},{},{},{},{},{},{},{}",
            q.name, cells[0], cells[1], cells[2], cells[3], cells[4], delays.0, delays.1
        ));
        // Per-query shape checks.
        assert!(cells[4] <= cells[0], "{}: Sonata must beat All-SP", q.name);
        assert!(cells[1] <= cells[0], "{}: Filter-DP ≤ All-SP", q.name);
        assert!(cells[2] <= cells[1], "{}: Max-DP ≤ Filter-DP", q.name);
    }
    write_csv(
        "fig7a_single_query.csv",
        "query,all_sp,filter_dp,max_dp,fix_ref,sonata,fixref_delay,sonata_delay",
        &rows,
    );
    json.write();

    // Aggregate shape: Sonata buys orders of magnitude over All-SP.
    let parse = |r: &String, i: usize| r.split(',').nth(i).unwrap().parse::<u64>().unwrap();
    let total_allsp: u64 = rows.iter().map(|r| parse(r, 1)).sum();
    let total_sonata: u64 = rows.iter().map(|r| parse(r, 5)).sum();
    let factor = total_allsp as f64 / total_sonata.max(1) as f64;
    println!("\naggregate reduction Sonata vs All-SP: {factor:.0}×");
    assert!(
        factor > 100.0,
        "expect ≥2 orders of magnitude, got {factor:.0}×"
    );
}
