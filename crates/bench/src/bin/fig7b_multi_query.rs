//! Figure 7b: stream-processor workload as the number of concurrently
//! executing queries grows from 1 to 8, under the five plans.
//!
//! Paper shape (log scale): every plan's load grows with query count,
//! but Sonata stays orders of magnitude below All-SP/Filter-DP; Fix-REF
//! degrades fastest as the fixed chains exhaust switch resources.

use sonata_bench::{estimate_all, fmt_tuples, measure, write_csv, BenchJson, ExperimentCtx};
use sonata_planner::costs::CostConfig;
use sonata_planner::{PlanMode, PlannerConfig};
use sonata_query::catalog::{self, Thresholds};

fn main() {
    let ctx = ExperimentCtx::default();
    let trace = ctx.evaluation_trace();
    let queries = catalog::top8(&Thresholds::default());
    let levels = vec![4u8, 8, 12, 16, 20, 24, 28, 32];
    let planner_cfg = PlannerConfig {
        cost: CostConfig {
            levels: Some(levels.clone()),
            ..Default::default()
        },
        ..PlannerConfig::default()
    };
    // Costs are per query and constraint-independent: estimate once.
    let all_costs = estimate_all(&queries, &trace, &levels);

    println!("# Figure 7b: tuples at the stream processor vs. number of queries");
    println!(
        "{:>3} | {:>9} {:>9} {:>9} {:>9} {:>9}",
        "n", "All-SP", "Filter-DP", "Max-DP", "Fix-REF", "Sonata"
    );
    let mut json = BenchJson::new("fig7b_multi_query");
    json.config_num("scale", ctx.scale)
        .config_num("windows", ctx.windows as f64)
        .config_num("seed", ctx.seed as f64)
        .config_str("queries", "top8");
    let mut rows = Vec::new();
    let mut series: Vec<Vec<u64>> = vec![Vec::new(); PlanMode::ALL.len()];
    for n in 1..=queries.len() {
        let qs = &queries[..n];
        let costs = &all_costs[..n];
        let mut cells = Vec::new();
        for (mi, &mode) in PlanMode::ALL.iter().enumerate() {
            let run = measure(qs, costs, &trace, mode, &planner_cfg);
            json.point(mode.label(), n as f64, run.tuples as f64);
            series[mi].push(run.tuples);
            cells.push(run.tuples);
        }
        println!(
            "{:>3} | {:>9} {:>9} {:>9} {:>9} {:>9}",
            n,
            fmt_tuples(cells[0]),
            fmt_tuples(cells[1]),
            fmt_tuples(cells[2]),
            fmt_tuples(cells[3]),
            fmt_tuples(cells[4])
        );
        rows.push(format!(
            "{n},{},{},{},{},{}",
            cells[0], cells[1], cells[2], cells[3], cells[4]
        ));
    }
    write_csv(
        "fig7b_multi_query.csv",
        "queries,all_sp,filter_dp,max_dp,fix_ref,sonata",
        &rows,
    );
    json.write();

    // Shape checks.
    let last = series
        .iter()
        .map(|s| *s.last().unwrap())
        .collect::<Vec<_>>();
    let (all_sp, _filter, _max, fix_ref, sonata) = (last[0], last[1], last[2], last[3], last[4]);
    assert!(
        sonata * 100 <= all_sp,
        "8 queries: Sonata must sit ≥2 orders below All-SP ({sonata} vs {all_sp})"
    );
    assert!(sonata <= fix_ref, "Sonata ≤ Fix-REF under contention");
    // Load grows with query count for the data-plane plans.
    for s in &series[2..] {
        assert!(
            s.last().unwrap() >= s.first().unwrap(),
            "workload must grow with queries: {s:?}"
        );
    }
    println!(
        "\n8 queries: Sonata {} vs All-SP {} ({:.0}× reduction)",
        fmt_tuples(sonata),
        fmt_tuples(all_sp),
        all_sp as f64 / sonata.max(1) as f64
    );
}
