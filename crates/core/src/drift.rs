//! Plan-drift monitoring: reconcile the planner's committed tuple
//! budget against what each window actually delivered.
//!
//! The ILP/DP solver picked the deployed partitioning *because* its
//! trace-driven cost model predicted specific per-query tuple loads
//! at the stream processor (the paper's `N_{q,t}`). When live traffic
//! diverges from that prediction the plan is stale — the switch may
//! be shunting heavily, a query may be flooding the collector, or a
//! quiet query may be wasting switch stages. The monitor folds both
//! signals into one dimensionless *divergence* per window:
//!
//! ```text
//! divergence = max( max_q |observed_q − predicted_q| / max(predicted_q, floor),
//!                   (shunts / packets) / shunt_replan_fraction )
//! ```
//!
//! A divergence of 1.0 means "observed load is off by 100% of the
//! prediction" or equivalently "collision shunts hit the configured
//! re-plan fraction" — the two legacy ad-hoc triggers unified on one
//! scale. The monitor exports the live value as the
//! `sonata_plan_divergence` gauge (per-mille, so 1000 = 1.0) and
//! turns it into a *principled* re-plan trigger: the divergence must
//! exceed [`DriftConfig::threshold`] for [`DriftConfig::sustain`]
//! consecutive windows, and each sustained breach fires **exactly
//! one** [`sonata_obs::EventKind::ReplanTrigger`] until the
//! divergence drops back below the threshold and re-arms the monitor.
//! One noisy window no longer re-plans; a persistent shift re-plans
//! once, not every window.

use sonata_obs::{Gauge, ObsHandle};
use sonata_planner::PlanBudget;
use sonata_query::QueryId;

/// Sustained-threshold rule for the re-plan trigger.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftConfig {
    /// Divergence above which a window counts toward a breach. 1.0 =
    /// observed per-query load off by 100% of the prediction, or
    /// shunts at the configured re-plan fraction.
    pub threshold: f64,
    /// Consecutive breaching windows required before the trigger
    /// fires. 1 reproduces the legacy fire-on-first-breach behavior.
    pub sustain: u32,
    /// Absolute floor (in tuples) for the per-query denominator, so a
    /// query predicted at ~0 tuples doesn't turn a handful of stray
    /// tuples into infinite divergence.
    pub floor: f64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig {
            threshold: 1.0,
            sustain: 2,
            floor: 32.0,
        }
    }
}

/// One window's drift verdict.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowDrift {
    /// The window's divergence on the unified scale.
    pub divergence: f64,
    /// Whether this window completes a sustained breach (fires at
    /// most once per breach; re-arms when divergence drops below the
    /// threshold).
    pub replan: bool,
}

/// Per-run monitor state: the deploy-time budget, the sustained-breach
/// streak, and the exported gauge.
#[derive(Debug)]
pub struct DriftMonitor {
    budget: PlanBudget,
    cfg: DriftConfig,
    /// Consecutive windows with divergence above the threshold.
    streak: u32,
    /// Armed = the next sustained breach may fire. Disarmed after
    /// firing until a below-threshold window re-arms.
    armed: bool,
    /// `sonata_plan_divergence`, in per-mille (gauges are integers).
    gauge: Gauge,
}

impl DriftMonitor {
    /// Build a monitor for one deployed plan.
    pub fn new(budget: PlanBudget, cfg: DriftConfig, obs: &ObsHandle) -> Self {
        DriftMonitor {
            budget,
            cfg,
            streak: 0,
            armed: true,
            gauge: obs.gauge("sonata_plan_divergence", &[]),
        }
    }

    /// The budget being reconciled against.
    pub fn budget(&self) -> &PlanBudget {
        &self.budget
    }

    /// Re-arm the monitor against a swapped-in plan's budget. Windows
    /// after a swap are reconciled against what the *new* plan
    /// predicted — without this, the monitor would keep measuring live
    /// traffic against the stale budget it just re-planned away from
    /// and fire forever.
    pub fn rebase(&mut self, budget: PlanBudget) {
        self.budget = budget;
        self.streak = 0;
        self.armed = true;
    }

    /// A window's divergence, without advancing the trigger state.
    pub fn divergence(
        &self,
        tuples_per_query: &[(QueryId, u64)],
        packets: u64,
        shunts: u64,
        shunt_replan_fraction: f64,
    ) -> f64 {
        let mut worst = 0.0f64;
        for (query, predicted) in &self.budget.per_query {
            let observed = tuples_per_query
                .iter()
                .find(|(q, _)| q == query)
                .map(|(_, n)| *n as f64)
                .unwrap_or(0.0);
            let denom = predicted.max(self.cfg.floor);
            worst = worst.max((observed - predicted).abs() / denom);
        }
        // Queries the plan never budgeted for (shouldn't happen, but
        // attribution fallbacks can surface one) count in full against
        // the floor.
        for (query, observed) in tuples_per_query {
            if !self.budget.per_query.iter().any(|(q, _)| q == query) {
                worst = worst.max(*observed as f64 / self.cfg.floor);
            }
        }
        if packets > 0 && shunt_replan_fraction > 0.0 {
            let shunt_fraction = shunts as f64 / packets as f64;
            worst = worst.max(shunt_fraction / shunt_replan_fraction);
        }
        worst
    }

    /// Reconcile one window against the budget: update the gauge and
    /// the sustained-breach state, and decide whether to re-plan.
    pub fn observe(
        &mut self,
        tuples_per_query: &[(QueryId, u64)],
        packets: u64,
        shunts: u64,
        shunt_replan_fraction: f64,
    ) -> WindowDrift {
        let divergence = self.divergence(tuples_per_query, packets, shunts, shunt_replan_fraction);
        self.gauge.set((divergence * 1000.0) as u64);
        let mut replan = false;
        if divergence > self.cfg.threshold {
            self.streak = self.streak.saturating_add(1);
            if self.armed && self.streak >= self.cfg.sustain {
                replan = true;
                self.armed = false;
            }
        } else {
            self.streak = 0;
            self.armed = true;
        }
        WindowDrift { divergence, replan }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn budget() -> PlanBudget {
        PlanBudget {
            per_query: vec![(QueryId(1), 100.0), (QueryId(2), 10.0)],
            total: 110.0,
        }
    }

    fn monitor(cfg: DriftConfig) -> DriftMonitor {
        DriftMonitor::new(budget(), cfg, &ObsHandle::disabled())
    }

    #[test]
    fn on_budget_window_has_low_divergence() {
        let m = monitor(DriftConfig::default());
        let d = m.divergence(&[(QueryId(1), 100), (QueryId(2), 10)], 1_000, 0, 0.05);
        assert_eq!(d, 0.0);
    }

    #[test]
    fn missing_query_counts_as_full_shortfall() {
        let m = monitor(DriftConfig::default());
        // Query 1 predicted 100, observed 0: |0-100|/100 = 1.0.
        let d = m.divergence(&[(QueryId(2), 10)], 1_000, 0, 0.05);
        assert_eq!(d, 1.0);
    }

    #[test]
    fn floor_bounds_small_prediction_noise() {
        let m = monitor(DriftConfig::default());
        // Query 2 predicted 10 (< floor 32), observed 20: 10/32, not
        // 10/10.
        let d = m.divergence(&[(QueryId(1), 100), (QueryId(2), 20)], 1_000, 0, 0.05);
        assert!((d - 10.0 / 32.0).abs() < 1e-9);
    }

    #[test]
    fn shunt_pressure_reaches_one_at_the_replan_fraction() {
        let m = monitor(DriftConfig::default());
        let d = m.divergence(&[(QueryId(1), 100), (QueryId(2), 10)], 1_000, 50, 0.05);
        assert!((d - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fires_once_per_sustained_breach_and_rearms() {
        let mut m = monitor(DriftConfig {
            threshold: 1.0,
            sustain: 2,
            floor: 32.0,
        });
        let drifted = [(QueryId(1), 300u64)]; // |300-100|/100 = 2.0
        let calm = [(QueryId(1), 100u64), (QueryId(2), 10u64)];
        // First breaching window: streak 1, no fire.
        assert!(!m.observe(&drifted, 1_000, 0, 0.05).replan);
        // Second: sustained, fires exactly once.
        assert!(m.observe(&drifted, 1_000, 0, 0.05).replan);
        // Continued breach: still disarmed, silent.
        assert!(!m.observe(&drifted, 1_000, 0, 0.05).replan);
        assert!(!m.observe(&drifted, 1_000, 0, 0.05).replan);
        // Recovery re-arms…
        assert!(!m.observe(&calm, 1_000, 0, 0.05).replan);
        // …and a new sustained breach fires again.
        assert!(!m.observe(&drifted, 1_000, 0, 0.05).replan);
        assert!(m.observe(&drifted, 1_000, 0, 0.05).replan);
    }

    #[test]
    fn sustain_one_reproduces_legacy_first_breach_fire() {
        let mut m = monitor(DriftConfig {
            threshold: 1.0,
            sustain: 1,
            floor: 32.0,
        });
        // Shunts over the replan fraction: the legacy trigger.
        let on_budget = [(QueryId(1), 100u64), (QueryId(2), 10u64)];
        assert!(m.observe(&on_budget, 1_000, 200, 0.05).replan);
        assert!(!m.observe(&on_budget, 1_000, 200, 0.05).replan);
    }

    #[test]
    fn rebase_adopts_the_new_budget_and_rearms() {
        let mut m = monitor(DriftConfig {
            threshold: 1.0,
            sustain: 2,
            floor: 32.0,
        });
        let drifted = [(QueryId(1), 300u64)];
        assert!(!m.observe(&drifted, 1_000, 0, 0.05).replan);
        assert!(m.observe(&drifted, 1_000, 0, 0.05).replan);
        // The swap re-bases the monitor on the new plan's budget: the
        // same traffic is now on-budget, the streak clears, and the
        // monitor is armed for the *next* genuine drift.
        m.rebase(PlanBudget {
            per_query: vec![(QueryId(1), 300.0)],
            total: 300.0,
        });
        assert_eq!(m.observe(&drifted, 1_000, 0, 0.05).divergence, 0.0);
        let next_drift = [(QueryId(1), 900u64)];
        assert!(!m.observe(&next_drift, 1_000, 0, 0.05).replan);
        assert!(m.observe(&next_drift, 1_000, 0, 0.05).replan);
    }

    #[test]
    fn gauge_exports_divergence_in_per_mille() {
        let obs = ObsHandle::with_capacity(16);
        let mut m = DriftMonitor::new(budget(), DriftConfig::default(), &obs);
        m.observe(&[(QueryId(1), 250), (QueryId(2), 10)], 1_000, 0, 0.05);
        // |250-100|/100 = 1.5 → 1500 per-mille.
        assert_eq!(obs.snapshot().gauge("sonata_plan_divergence"), Some(1500));
    }
}
