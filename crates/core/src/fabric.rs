//! Multi-switch telemetry fabric: N switch instances feeding M
//! collector shards.
//!
//! A [`Fabric`] generalizes the one-switch↔one-collector [`Runtime`]
//! shape: a [`TopologyConfig`] drives N independent [`Switch`]
//! instances — each with its own deployed program, fault domain, and
//! `sonata-net` transport (Loopback or Tcp, reusing the `Hello`
//! plan-digest handshake per peer) — whose mirrored reports are
//! demultiplexed per switch and merged per window into one global
//! result processed by M collector shards.
//!
//! **Merge soundness.** Per-packet reports union trivially: the trace
//! partitioner is exhaustive and flow-sticky, so each packet's reports
//! come from exactly one switch and the union is the single-switch
//! multiset. Register dumps do not: a fabric switch holds only the
//! *partial* per-key aggregate of its traffic share, so applying a
//! dump threshold on the switch would drop keys whose fabric-wide sum
//! crosses it. Fabric switches therefore defer dump thresholds
//! (`Switch::set_defer_dump_thresholds`), dumps arrive raw in the
//! per-switch emitters' local stores, and the fabric replays each
//! task's switch-resident operators **once** over the union of every
//! switch's store — summing partials before thresholding, exactly the
//! computation the single switch performed.
//!
//! **Window alignment.** Windows ride the credit/lockstep protocol:
//! each collector shard drains its assigned switches to `WindowClose`
//! before the merge, and the fabric closes window *w* only after every
//! live switch closed it. A switch that fails to close (mid-window
//! loss, scheduled via [`SwitchOutage`]) is a *straggler*: its partial
//! is discarded wholesale — bounded staleness, never a stall — and the
//! window is marked degraded with the switch's bit set in
//! [`DegradedWindow::straggler_switches`]. On rejoin the switch
//! replays its session `Hello` (the collector re-verifies the plan
//! digest) and catches up on the last control batch the rest of the
//! fabric applied before opening its next window.
//!
//! [`Runtime`]: crate::runtime::Runtime

use crate::drift::DriftMonitor;
use crate::driver::{deploy, plan_digest, DeployedPlan, Deployment, QueryInstance};
use crate::emitter::Emitter;
use crate::runtime::{
    attribute_tuples, boundary_backoff_loop, build_feed_forward, collect_alerts,
    feed_forward_control, submit_with_recovery, DegradedWindow, FeedForward, ReplanState,
    RuntimeConfig, RuntimeError, RuntimeObs, SwitchArrival, TelemetryReport, WindowLatency,
    WindowReport, WindowRx,
};
use sonata_faults::{FaultInjector, FaultRecord};
use sonata_net::loopback::{loopback_pair, DEFAULT_CAPACITY};
use sonata_net::tcp::{tcp_pair, TcpOptions};
use sonata_net::{
    CollectorEndpoint, Frame, NetError, NetMetrics, SwitchEndpoint, Transport, TransportKind,
};
use sonata_obs::{Counter, EventKind, FabricSnapshot, ObsHandle, Stage, StageTimer, TraceContext};
use sonata_packet::{Packet, PacketArena};
use sonata_pisa::{ControlOp, ReportBatch, ReportKind, Switch, TaskId, UpdateCostModel};
use sonata_planner::{GlobalPlan, ReplanOutcome};
use sonata_query::{Operator, QueryId, Tuple};
use sonata_stream::{
    merge_window_batches, run_entries, MicroBatchEngine, ShardedEngine, SwitchPartial, WindowBatch,
};
use sonata_traffic::{Trace, TracePartitioner};
use std::collections::{BTreeMap, HashMap};
use std::time::Duration;

/// Shape of a telemetry fabric: how many switches split the tap, how
/// many collector shards process the merged stream, and how the two
/// tiers map onto each other.
#[derive(Debug, Clone)]
pub struct TopologyConfig {
    /// Switch instances the trace is split across (1–64; the
    /// straggler bitmask in [`DegradedWindow`] is a `u64`).
    pub switches: usize,
    /// Collector shards. Stream jobs are owned by *source* query
    /// (`source % shards`), keeping each refinement chain — and its
    /// feed-forward state — shard-local.
    pub shards: usize,
    /// Relative traffic share per switch (empty = uniform). Lets a
    /// topology model skew: one big border switch, small leaf
    /// switches.
    pub shares: Vec<f64>,
    /// Switch → shard window-alignment assignment (empty = round-robin
    /// `switch % shards`): the shard responsible for draining that
    /// switch's frames to `WindowClose` each window.
    pub assignment: Vec<usize>,
}

impl TopologyConfig {
    /// An `switches × shards` fabric with uniform shares and
    /// round-robin assignment.
    pub fn new(switches: usize, shards: usize) -> Self {
        TopologyConfig {
            switches: switches.max(1),
            shards: shards.max(1),
            shares: Vec::new(),
            assignment: Vec::new(),
        }
    }

    /// The shard that tracks `switch`'s window alignment.
    pub fn shard_for(&self, switch: usize) -> usize {
        self.assignment
            .get(switch)
            .copied()
            .unwrap_or(switch % self.shards)
    }

    /// The shard that owns a source query's stream jobs (its whole
    /// refinement chain).
    pub fn shard_for_query(&self, source: QueryId) -> usize {
        source.0 as usize % self.shards
    }

    /// The deterministic flow-sticky partitioner this topology splits
    /// traces with.
    pub fn partitioner(&self) -> TracePartitioner {
        if self.shares.is_empty() {
            TracePartitioner::uniform(self.switches)
        } else {
            TracePartitioner::weighted(&self.shares)
        }
    }

    /// Check internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.switches == 0 || self.switches > 64 {
            return Err(format!(
                "topology: switches must be 1–64, got {}",
                self.switches
            ));
        }
        if self.shards == 0 {
            return Err("topology: shards must be >= 1".into());
        }
        if !self.shares.is_empty() && self.shares.len() != self.switches {
            return Err(format!(
                "topology: {} shares for {} switches",
                self.shares.len(),
                self.switches
            ));
        }
        if !self.assignment.is_empty() {
            if self.assignment.len() != self.switches {
                return Err(format!(
                    "topology: {} assignments for {} switches",
                    self.assignment.len(),
                    self.switches
                ));
            }
            if let Some(bad) = self.assignment.iter().find(|&&a| a >= self.shards) {
                return Err(format!(
                    "topology: assignment to shard {bad} but only {} shards",
                    self.shards
                ));
            }
        }
        Ok(())
    }
}

impl Default for TopologyConfig {
    fn default() -> Self {
        Self::new(1, 1)
    }
}

/// A deterministic switch-loss schedule for chaos testing: during
/// `from_window` the switch feeds only its first `cut_after` packets
/// and then goes dark without closing the window (a straggler); it
/// stays dark until `rejoin_window`, where it replays its `Hello` and
/// catches up on control state before participating again.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwitchOutage {
    /// The switch that goes down.
    pub switch: u16,
    /// Window in which it dies mid-stream.
    pub from_window: u64,
    /// Packets of its partition it still processes in `from_window`.
    pub cut_after: usize,
    /// First window it participates in again.
    pub rejoin_window: u64,
}

/// What a switch does in one window under the outage schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Role {
    /// Full participation.
    Live,
    /// Mid-window loss after this many packets: straggler.
    Cut(usize),
    /// Fully down: skipped.
    Dark,
}

/// One switch instance: the PISA model, its control-plane cost model,
/// its scoped fault injector (egress seam), and its protocol endpoint.
struct FabricSwitch {
    switch: Switch,
    cost_model: UpdateCostModel,
    wire_mode: bool,
    /// Resolved batch-ingest decision (see
    /// [`crate::runtime::IngestMode`]): arena mode, not wire mode, not
    /// the reference path.
    ingest_batch: bool,
    /// Per-window packet arena, rebuilt in place (this switch's trace
    /// partition only).
    arena: PacketArena,
    /// Report arena filled by `process_batch`, reused across windows.
    report_batch: ReportBatch,
    faults: FaultInjector,
    link: SwitchEndpoint,
}

impl FabricSwitch {
    /// Batch ingest for this switch's share of the window: lay
    /// `packets` out in the arena and run the whole batch. Ship with
    /// [`Self::ship_batch`] once per packet index, in order.
    fn feed_batch(&mut self, packets: &[Packet]) {
        self.arena.rebuild_from_packets(packets);
        self.switch
            .process_batch(&self.arena.batch(), &mut self.report_batch);
    }

    /// Ship batch packet `i`'s reports — borrowed slices straight from
    /// the report arena on fault-free windows.
    fn ship_batch(&mut self, i: usize) -> Result<(), RuntimeError> {
        self.link
            .send_packet_reports_ref(&self.report_batch, i, self.arena.batch())?;
        Ok(())
    }
}

/// The collector side of one switch's wire: endpoint plus the
/// per-switch emitter that demultiplexes its reports.
struct FabricLink {
    /// The shard responsible for draining this switch each window.
    shard: usize,
    link: CollectorEndpoint,
    emitter: Emitter,
}

/// One collector shard: a sharded engine owning a subset of the
/// queries, plus its crash-fallback twin when faults are enabled.
struct Shard {
    engine: ShardedEngine,
    fallback: Option<MicroBatchEngine>,
}

/// Fabric-level metric handles: the runtime family plus per-switch and
/// per-shard labeled counters.
struct FabricObs {
    rt: RuntimeObs,
    /// `sonata_fabric_switch_packets{switch=...}`.
    switch_packets: Vec<Counter>,
    /// `sonata_fabric_switch_tuples{switch=...}` — tuples the switch's
    /// emitter forwarded directly (pre-merge).
    switch_tuples: Vec<Counter>,
    /// `sonata_fabric_stragglers{switch=...}`.
    switch_stragglers: Vec<Counter>,
    /// `sonata_fabric_shard_jobs{shard=...}`.
    shard_jobs: Vec<Counter>,
}

impl FabricObs {
    fn new(handle: &ObsHandle, switches: usize, shards: usize) -> Self {
        let per = |name: &'static str, label: &'static str, n: usize| -> Vec<Counter> {
            (0..n)
                .map(|i| handle.counter(name, &[(label, &i.to_string())]))
                .collect()
        };
        FabricObs {
            rt: RuntimeObs::new(handle),
            switch_packets: per("sonata_fabric_switch_packets", "switch", switches),
            switch_tuples: per("sonata_fabric_switch_tuples", "switch", switches),
            switch_stragglers: per("sonata_fabric_stragglers", "switch", switches),
            shard_jobs: per("sonata_fabric_shard_jobs", "shard", shards),
        }
    }
}

/// The assembled multi-switch system. Built from the same
/// [`GlobalPlan`] + [`RuntimeConfig`] pair as [`Runtime`]; the
/// topology comes from [`RuntimeConfig::topology`] (default 1×1).
///
/// [`Runtime`]: crate::runtime::Runtime
pub struct Fabric {
    topo: TopologyConfig,
    partitioner: TracePartitioner,
    switches: Vec<FabricSwitch>,
    links: Vec<FabricLink>,
    shards: Vec<Shard>,
    by_task: BTreeMap<TaskId, Deployment>,
    instances: Vec<QueryInstance>,
    feed_forward: Vec<FeedForward>,
    /// Fabric-level injector: worker and boundary seams (per-switch
    /// egress seams live in each [`FabricSwitch`]).
    faults: FaultInjector,
    shunt_replan_fraction: f64,
    drift: DriftMonitor,
    window_ms: u64,
    obs: FabricObs,
    cfg: RuntimeConfig,
    outages: Vec<(SwitchOutage, bool)>,
    /// Last control batch broadcast to the fabric, replayed to a
    /// rejoining switch so its dynamic filters are not stale.
    last_control: Vec<ControlOp>,
    /// Closed replanning loop (`None` when [`RuntimeConfig::replan`]
    /// is disabled). A swap reprograms *every* switch — live and dark
    /// alike — at one window boundary, so the whole fabric flips to
    /// the new epoch at the same window index and a rejoining switch
    /// comes back under the current plan.
    replan: Option<ReplanState>,
}

impl Fabric {
    /// Deploy a plan onto every switch of the topology and assemble
    /// the fabric.
    pub fn new(plan: &GlobalPlan, cfg: RuntimeConfig) -> Result<Self, RuntimeError> {
        let topo = cfg.topology.clone().unwrap_or_default();
        topo.validate().map_err(RuntimeError::Control)?;
        let DeployedPlan {
            program,
            deployments,
            instances,
        } = deploy(plan)?;
        let digest = plan_digest(&deployments);
        let faults = FaultInjector::from_plan(&cfg.faults);

        let mut switches = Vec::with_capacity(topo.switches);
        let mut links = Vec::with_capacity(topo.switches);
        for s in 0..topo.switches {
            let sid = s as u16;
            let node = format!("switch-{s}");
            // Each switch's wire gets its own labeled metric family
            // (`peer="switch-N"`), so fabric-wide snapshots attribute
            // queue depth, reconnects, and frame counts per peer.
            let metrics = NetMetrics::for_peer(&cfg.obs, &node);
            let inj = FaultInjector::for_switch(&cfg.faults, sid);
            let mut switch =
                Switch::load_with_sketch(program.clone(), &cfg.constraints, &cfg.obs, cfg.sketch)
                    .map_err(RuntimeError::Load)?;
            switch.set_force_reference(cfg.force_reference_path);
            // A fabric switch holds only the partial per-key aggregate
            // of its traffic share: dump thresholds are only sound
            // after the cross-switch merge, so defer them to the
            // collector-side replay.
            switch.set_defer_dump_thresholds(true);
            let (sw_t, sp_t): (Box<dyn Transport>, Box<dyn Transport>) = match cfg.transport {
                TransportKind::Loopback => {
                    let (a, b) = loopback_pair(DEFAULT_CAPACITY, &metrics);
                    (Box::new(a), Box::new(b))
                }
                TransportKind::Tcp => {
                    let opts = TcpOptions {
                        switch_id: sid,
                        ..TcpOptions::default()
                    };
                    let (client, collector) = tcp_pair(&metrics, opts)?;
                    (Box::new(client), Box::new(collector))
                }
            };
            let link = SwitchEndpoint::new(
                sw_t,
                inj.clone(),
                metrics.clone(),
                &node,
                digest,
                plan.epoch,
            )?;
            switches.push(FabricSwitch {
                switch,
                cost_model: cfg.cost_model,
                wire_mode: cfg.wire_mode,
                ingest_batch: cfg.ingest == crate::runtime::IngestMode::Arena
                    && !cfg.wire_mode
                    && !cfg.force_reference_path,
                arena: PacketArena::new(),
                report_batch: ReportBatch::new(),
                faults: inj.clone(),
                link,
            });
            links.push(FabricLink {
                shard: topo.shard_for(s),
                link: CollectorEndpoint::new(sp_t, metrics.clone(), digest, plan.epoch),
                emitter: Emitter::with_faults(&deployments, &inj),
            });
        }

        let mut shards = Vec::with_capacity(topo.shards);
        for j in 0..topo.shards {
            let mut engine = ShardedEngine::with_config(
                cfg.workers,
                &cfg.obs,
                &faults,
                cfg.force_reference_path,
            );
            let mut fallback = faults.is_enabled().then(|| {
                let mut eng = MicroBatchEngine::new();
                eng.set_force_reference(cfg.force_reference_path);
                eng
            });
            for inst in instances
                .iter()
                .filter(|i| topo.shard_for_query(i.source) == j)
            {
                engine.register(inst.refined.clone());
                if let Some(fb) = &mut fallback {
                    fb.register(inst.refined.clone());
                }
            }
            shards.push(Shard { engine, fallback });
        }

        let feed_forward = build_feed_forward(&deployments, &instances);
        let window_ms = cfg
            .window_ms
            .or_else(|| instances.first().map(|i| i.refined.window_ms))
            .unwrap_or(3_000);
        let obs = FabricObs::new(&cfg.obs, topo.switches, topo.shards);
        let partitioner = topo.partitioner();
        let by_task = deployments.iter().map(|d| (d.task, d.clone())).collect();
        let replan = ReplanState::from_config(&cfg.replan, plan);
        Ok(Fabric {
            partitioner,
            switches,
            links,
            shards,
            by_task,
            instances,
            feed_forward,
            faults,
            shunt_replan_fraction: cfg.shunt_replan_fraction,
            drift: DriftMonitor::new(plan.budget(), cfg.drift.clone(), &cfg.obs),
            window_ms,
            obs,
            topo,
            cfg,
            outages: Vec::new(),
            last_control: vec![ControlOp::ResetRegisters],
            replan,
        })
    }

    /// The topology in effect.
    pub fn topology(&self) -> &TopologyConfig {
        &self.topo
    }

    /// The window size in effect.
    pub fn window_ms(&self) -> u64 {
        self.window_ms
    }

    /// The deployed stream-job instances (identical on every switch).
    pub fn instances(&self) -> &[QueryInstance] {
        &self.instances
    }

    /// Epoch of the currently committed plan (identical on every
    /// collector link; bumped by each fabric-wide swap).
    pub fn epoch(&self) -> u64 {
        self.links.first().map(|l| l.link.epoch()).unwrap_or(0)
    }

    /// Schedule a deterministic switch outage (chaos testing).
    pub fn set_outage(&mut self, outage: SwitchOutage) -> Result<(), RuntimeError> {
        if usize::from(outage.switch) >= self.topo.switches {
            return Err(RuntimeError::Control(format!(
                "outage for switch {} but fabric has {}",
                outage.switch, self.topo.switches
            )));
        }
        if outage.rejoin_window <= outage.from_window {
            return Err(RuntimeError::Control(
                "outage must rejoin after it starts".into(),
            ));
        }
        self.outages.push((outage, false));
        Ok(())
    }

    fn role_of(&self, switch: usize, window: u64) -> Role {
        for (o, rejoined) in &self.outages {
            if usize::from(o.switch) != switch || *rejoined {
                continue;
            }
            if window == o.from_window {
                return Role::Cut(o.cut_after);
            }
            if window > o.from_window && window < o.rejoin_window {
                return Role::Dark;
            }
        }
        Role::Live
    }

    /// Run a whole trace through the fabric: each non-empty window of
    /// the *unsplit* trace (global window indices) is partitioned
    /// across the switches by the topology's flow-sticky partitioner
    /// and processed in lockstep.
    pub fn process_trace(&mut self, trace: &Trace) -> Result<TelemetryReport, RuntimeError> {
        let mut report = TelemetryReport::default();
        let windows: Vec<(u64, &[Packet])> = trace.windows(self.window_ms).collect();
        for (w, packets) in windows {
            let parts = self.partition_window(packets);
            report.windows.push(self.process_window(w, &parts)?);
        }
        report.metrics = self.cfg.obs.snapshot();
        Ok(report)
    }

    /// Split one window's packets across the switches, preserving
    /// capture order within each partition.
    pub fn partition_window(&self, packets: &[Packet]) -> Vec<Vec<Packet>> {
        let mut parts: Vec<Vec<Packet>> = vec![Vec::new(); self.topo.switches];
        for pkt in packets {
            parts[self.partitioner.assign(pkt)].push(pkt.clone());
        }
        parts
    }

    /// Rejoin procedure for a switch coming back from an outage:
    /// replay the session `Hello` (the collector re-verifies the plan
    /// digest), flush anything left over from the straggler window,
    /// and run one catch-up control turn replaying the last batch the
    /// rest of the fabric applied.
    fn rejoin_switch(&mut self, s: usize, window: u64) -> Result<(), RuntimeError> {
        let sw = &mut self.switches[s];
        let link = &mut self.links[s];
        sw.link.resend_hello()?;
        while link.link.try_recv_frame()?.is_some() {}
        link.link
            .send_control(window.saturating_sub(1), &self.last_control)?;
        let (w, ops) = sw.link.recv_control()?;
        let applied = sw
            .cost_model
            .apply(&mut sw.switch, &ops)
            .map_err(RuntimeError::Control)?;
        sw.link.send_ack(
            w,
            applied.entries_written as u64,
            applied.latency.as_nanos() as u64,
        )?;
        let _ = link.link.recv_ack()?;
        link.link.send_credit(w)?;
        sw.link.recv_credit()?;
        Ok(())
    }

    /// Run one window across the fabric: per-switch data planes, the
    /// cross-switch merge, sharded stream processing, one refinement
    /// feed-forward, and the broadcast control turn.
    pub fn process_window(
        &mut self,
        window: u64,
        parts: &[Vec<Packet>],
    ) -> Result<WindowReport, RuntimeError> {
        debug_assert_eq!(parts.len(), self.topo.switches);
        // Boundary poll of the replanning loop, *before* the rejoins:
        // a due re-solve swaps the whole fabric — live and dark
        // switches alike — at this one boundary, so a switch rejoining
        // in the same window comes back under the current epoch.
        self.poll_replan(window)?;
        // One-shot rejoins due before this window opens.
        for i in 0..self.outages.len() {
            let (o, rejoined) = self.outages[i];
            if !rejoined && window >= o.rejoin_window {
                self.rejoin_switch(usize::from(o.switch), window)?;
                self.outages[i].1 = true;
            }
        }
        let roles: Vec<Role> = (0..self.topo.switches)
            .map(|s| self.role_of(s, window))
            .collect();
        let live = |roles: &[Role]| -> Vec<usize> {
            roles
                .iter()
                .enumerate()
                .filter(|(_, r)| matches!(r, Role::Live))
                .map(|(i, _)| i)
                .collect()
        };
        let live_ids = live(&roles);
        self.faults.begin_window(window);
        let mut rxs: Vec<WindowRx> = (0..self.topo.switches)
            .map(|_| WindowRx::default())
            .collect();
        let mut straggler_mask = 0u64;

        // Data plane, switch by switch (deterministic order). Every
        // participating switch runs the full protocol turn even with
        // zero packets of its own. Each participating switch roots its
        // own span in the *shared* window trace (the trace id is a
        // function of the window alone), so the whole fabric's window
        // stitches under one trace with one root per switch.
        let handle = self.obs.rt.handle.clone();
        let mut roots: Vec<Option<StageTimer>> = (0..self.topo.switches).map(|_| None).collect();
        let mut loop_ns = vec![0u64; self.topo.switches];
        for s in 0..self.topo.switches {
            let limit = match roles[s] {
                Role::Dark => continue,
                Role::Cut(cut) => cut.min(parts[s].len()),
                Role::Live => parts[s].len(),
            };
            let name = format!("switch-{s}");
            let root = handle.root_span(window, s as u16, &name);
            self.switches[s].faults.begin_window(window);
            self.switches[s].link.set_ctx(root.ctx());
            self.switches[s]
                .link
                .open_window(window, parts[s].len() as u64)?;
            let t = handle.trace_span(Stage::PacketLoop, window, root.ctx(), &name);
            let slice = &parts[s][..limit];
            if self.switches[s].ingest_batch {
                self.switches[s].feed_batch(slice);
                for i in 0..slice.len() {
                    self.switches[s].ship_batch(i)?;
                    pump_link(&mut self.links[s], &mut rxs[s], &handle)?;
                }
            } else {
                for pkt in slice {
                    feed_switch(&mut self.switches[s], pkt)?;
                    pump_link(&mut self.links[s], &mut rxs[s], &handle)?;
                }
            }
            loop_ns[s] = t.finish();
            roots[s] = Some(root);
            if matches!(roles[s], Role::Cut(_)) {
                // Mid-window loss: the switch never closes the
                // window. Discard everything it produced — the
                // merge is all-or-nothing per switch — and reset
                // its registers so the rejoin starts clean.
                let _ = self.switches[s].switch.end_window();
                while self.links[s].link.try_recv_frame()?.is_some() {}
                let _ = self.links[s].emitter.take_partial();
                straggler_mask |= 1u64 << s;
                self.obs.switch_stragglers[s].inc();
            }
        }
        // Window boundary on every live switch: dump-encode and
        // transport are timed per switch, and the three switch-side
        // stage timings ride the `WindowClose` frame in-band.
        for &s in &live_ids {
            let name = format!("switch-{s}");
            let parent = roots[s]
                .as_ref()
                .map(StageTimer::ctx)
                .unwrap_or(TraceContext::NONE);
            let t = handle.trace_span(Stage::WindowDump, window, parent, &name);
            let dump = self.switches[s].switch.end_window();
            let dump_ns = t.finish();
            let t = handle.trace_span(Stage::Transport, window, parent, &name);
            self.switches[s].link.send_dump(window, dump)?;
            let transport_ns = t.finish();
            self.switches[s]
                .link
                .close_window(window, loop_ns[s], dump_ns, transport_ns)?;
        }
        // Window alignment: each collector shard drains its assigned
        // switches to `WindowClose` before the fabric merges. The
        // drain span's parent is learned from the drained frames
        // themselves, so it is reported after the fact.
        let drain_started = handle.now_ns();
        for shard in 0..self.topo.shards {
            let assigned: Vec<usize> = live_ids
                .iter()
                .copied()
                .filter(|&s| self.links[s].shard == shard)
                .collect();
            for s in assigned {
                while !rxs[s].closed {
                    let frame = self.links[s].link.recv_frame()?;
                    absorb_frame(&mut self.links[s], &mut rxs[s], frame, &handle)?;
                }
            }
        }
        let collector_drain_ns = handle.now_ns().saturating_sub(drain_started);
        let collector_parent = live_ids
            .first()
            .map(|&s| rxs[s].ctx)
            .unwrap_or(TraceContext::NONE);
        handle.record_span(
            Stage::CollectorDrain,
            window,
            collector_parent,
            collector_drain_ns,
            "collector",
        );

        // Cross-epoch merge refusal: every switch contributing to this
        // window must have executed it under the same plan epoch. The
        // swap is fabric-wide and boundary-atomic, so a mismatch is a
        // torn window — refuse the union rather than merge partials
        // computed by different plans.
        let epoch = live_ids
            .first()
            .map(|&s| rxs[s].epoch)
            .unwrap_or_else(|| self.links.first().map(|l| l.link.epoch()).unwrap_or(0));
        for &s in &live_ids {
            if rxs[s].epoch != epoch {
                return Err(RuntimeError::Net(NetError::StaleEpoch {
                    theirs: rxs[s].epoch.min(epoch),
                    ours: rxs[s].epoch.max(epoch),
                }));
            }
        }

        // Per-switch partials → fabric merge.
        let mut packets = 0u64;
        let mut shunts = 0u64;
        let mut shunts_per_task: BTreeMap<QueryId, u64> = BTreeMap::new();
        let mut duplicates_suppressed = 0u64;
        let mut partials: Vec<SwitchPartial> = Vec::with_capacity(live_ids.len());
        let mut local_union: BTreeMap<TaskId, BTreeMap<usize, Vec<Tuple>>> = BTreeMap::new();
        // Sketch bounds from every switch, folded once after the loop:
        // the fabric merge of a sketch register is the sketch of the
        // union stream, so per-switch relative guarantees survive the
        // merge (ε/δ take component-wise maxima, masses add).
        let mut all_bounds: Vec<sonata_pisa::SketchBound> = Vec::new();
        {
            let _t = handle.trace_span(Stage::EmitterReplay, window, collector_parent, "collector");
            for &s in &live_ids {
                debug_assert!(rxs[s].opened && rxs[s].closed, "window stream incomplete");
                if let Some(dump) = rxs[s].dump.take() {
                    all_bounds.extend(dump.bounds.iter().cloned());
                    self.links[s].emitter.ingest_dump(&dump);
                }
                packets += rxs[s].packets;
                shunts += rxs[s].shunts;
                for (job, n) in &rxs[s].shunts_per_task {
                    *shunts_per_task.entry(*job).or_default() += n;
                }
                let (direct, local) = self.links[s].emitter.take_partial();
                duplicates_suppressed += self.links[s].emitter.suppressed_last_window();
                let forwarded: u64 = direct.iter().map(|(_, b)| b.tuple_count() as u64).sum();
                self.obs.switch_packets[s].add(rxs[s].packets);
                self.obs.switch_tuples[s].add(forwarded);
                partials.push((s as u16, direct));
                for (task, entries) in local {
                    let slot = local_union.entry(task).or_default();
                    for (op, tuples) in entries {
                        slot.entry(op).or_default().extend(tuples);
                    }
                }
            }
        }
        let merge_ns;
        let batches = {
            let t = handle.trace_span(Stage::Merge, window, collector_parent, "collector");
            let mut merged: BTreeMap<QueryId, WindowBatch> =
                merge_window_batches(partials).into_iter().collect();
            // Cross-switch partial-aggregate merge: replay each task's
            // switch-resident operators once over the union of every
            // switch's local store, summing partial aggregates before
            // the deferred threshold applies.
            for (task, entries) in &local_union {
                let dep = self.by_task.get(task).expect("local store task");
                let distinct_at = dep
                    .local_ops
                    .iter()
                    .position(|op| matches!(op, Operator::Distinct));
                let filtered;
                let entries = if let Some(d) = distinct_at {
                    // The distinct-set dump recomputes every admitted
                    // key's downstream contribution, so shunt tuples
                    // that entered past the distinct (reduce-register
                    // collisions) are already represented: keep only
                    // entries at or before the distinct op.
                    filtered = entries
                        .iter()
                        .filter(|(op, _)| **op <= d)
                        .map(|(op, tuples)| (*op, tuples.clone()))
                        .collect::<BTreeMap<usize, Vec<Tuple>>>();
                    &filtered
                } else {
                    entries
                };
                let (_, survivors) = run_entries(&dep.local_ops, entries)?;
                let batch = merged.entry(dep.job).or_default();
                if dep.branch == 0 {
                    batch.push_left(dep.resume_op, survivors);
                } else {
                    batch.push_right(dep.resume_op, survivors);
                }
            }
            // A partition that *ends* in a distinct forwards first
            // occurrences per packet; across switches the same key can
            // be "first" more than once (per-packet report on one
            // switch, shunt replay on another), so dedup the merged
            // entries at its resume op. Post-distinct tuples are
            // unique within a window by definition, making exact-tuple
            // dedup lossless.
            for dep in self.by_task.values() {
                if !matches!(dep.local_ops.last(), Some(Operator::Distinct)) {
                    continue;
                }
                if let Some(batch) = merged.get_mut(&dep.job) {
                    let side = if dep.branch == 0 {
                        &mut batch.left
                    } else {
                        &mut batch.right
                    };
                    if let Some(tuples) = side.get_mut(&dep.resume_op) {
                        let mut seen: Vec<Tuple> = Vec::with_capacity(tuples.len());
                        tuples.retain(|t| {
                            if seen.contains(t) {
                                false
                            } else {
                                seen.push(t.clone());
                                true
                            }
                        });
                    }
                }
            }
            let batches = merged.into_iter().collect::<Vec<(QueryId, WindowBatch)>>();
            merge_ns = t.finish();
            batches
        };
        let tuples_to_sp: u64 = batches.iter().map(|(_, b)| b.tuple_count() as u64).sum();
        let tuples_per_query = attribute_tuples(&self.instances, &batches);

        // Stream processing: dispatch each job to its owning shard, in
        // job order (deterministic fault verdicts).
        let mut worker_retries = 0u64;
        let mut single_mode_fallbacks = 0u64;
        let mut outputs: HashMap<QueryId, sonata_stream::JobResult> = HashMap::new();
        let shard_execute_ns;
        {
            let t = handle.trace_span(Stage::ShardExecute, window, collector_parent, "collector");
            for (job, batch) in batches {
                let source = self
                    .instances
                    .iter()
                    .find(|i| i.job == job)
                    .map(|i| i.source)
                    .unwrap_or(job);
                let j = self.topo.shard_for_query(source);
                let shard = &mut self.shards[j];
                let result = if self.faults.is_enabled() {
                    submit_with_recovery(
                        &mut shard.engine,
                        shard.fallback.as_mut(),
                        job,
                        batch,
                        &mut worker_retries,
                        &mut single_mode_fallbacks,
                    )?
                } else {
                    shard.engine.submit_owned(job, batch)?
                };
                self.obs.shard_jobs[j].inc();
                outputs.insert(job, result);
            }
            shard_execute_ns = t.finish();
        }

        let alerts = collect_alerts(&self.instances, &outputs);

        // Refinement feed-forward: rewritten SP-side queries
        // re-register on their owning shard (and its fallback twin).
        let shards = &mut self.shards;
        let topo = &self.topo;
        let mut control_ops = feed_forward_control(
            &self.feed_forward,
            &mut self.instances,
            &outputs,
            |refined| {
                let source = QueryId(refined.id.0 / 1000);
                let shard = &mut shards[topo.shard_for_query(source)];
                shard.engine.register(refined.clone());
                if let Some(fb) = &mut shard.fallback {
                    fb.register(refined.clone());
                }
            },
        );
        control_ops.push(ControlOp::ResetRegisters);

        // Boundary update through the fabric-level injector, then
        // broadcast the identical control batch to every live switch.
        let (boundary_retries, boundary_backoff, boundary_skipped);
        {
            let _t =
                handle.trace_span(Stage::DynFilterWrite, window, collector_parent, "collector");
            (boundary_retries, boundary_backoff, boundary_skipped) =
                boundary_backoff_loop(&self.faults);
            let ops: &[ControlOp] = if boundary_skipped {
                // ResetRegisters is the last op pushed above.
                &control_ops[control_ops.len() - 1..]
            } else {
                &control_ops
            };
            for &s in &live_ids {
                self.links[s].link.send_control(window, ops)?;
            }
            self.last_control = ops.to_vec();
        }
        // Control turn on every live switch. The acks are identical
        // across switches — the deterministic cost model applied the
        // same batch to identically deployed programs — so the merged
        // report carries the first live switch's.
        let mut ack: Option<(u64, u64)> = None;
        for &s in &live_ids {
            let sw = &mut self.switches[s];
            let (w, ops) = sw.link.recv_control()?;
            let applied = sw
                .cost_model
                .apply(&mut sw.switch, &ops)
                .map_err(RuntimeError::Control)?;
            sw.link.send_ack(
                w,
                applied.entries_written as u64,
                applied.latency.as_nanos() as u64,
            )?;
            let got = self.links[s].link.recv_ack()?;
            debug_assert!(
                ack.is_none_or(|a| a == got),
                "divergent control acks across switches"
            );
            ack.get_or_insert(got);
        }
        let (entries_written, latency_ns) = ack.unwrap_or((0, 0));
        let update_latency = Duration::from_nanos(latency_ns) + boundary_backoff;
        // Reconcile the merged window against the plan's committed
        // tuple budget; the sustained-threshold rule decides
        // re-planning, exactly as on the single-switch runtime.
        let tuples_per_query: Vec<(QueryId, u64)> = tuples_per_query.into_iter().collect();
        let drift = self.drift.observe(
            &tuples_per_query,
            packets,
            shunts,
            self.shunt_replan_fraction,
        );
        let replan_triggered = drift.replan;

        // Metrics and events, mirroring the single-switch runtime.
        let alert_count: u64 = alerts.values().map(|t| t.len() as u64).sum();
        let o = &self.obs.rt;
        o.windows.inc();
        o.shunts.add(shunts);
        o.alerts.add(alert_count);
        o.filter_entries.set(entries_written);
        o.update_latency.observe(update_latency.as_nanos() as u64);
        if replan_triggered {
            o.replans.inc();
            o.handle.event(EventKind::ReplanTrigger {
                window,
                divergence: drift.divergence,
            });
        }
        o.handle.event(EventKind::BoundaryUpdate {
            window,
            entries: entries_written,
            latency_ns: update_latency.as_nanos() as u64,
        });
        o.handle.event(EventKind::FabricMerge {
            window,
            switches: live_ids.len() as u64,
            stragglers: straggler_mask,
        });

        // Degradation marker: per-switch egress records, the
        // fabric-level worker/boundary record, and the straggler
        // bitmask.
        let mut injected = FaultRecord::default();
        for &s in &live_ids {
            injected.merge(&self.switches[s].faults.take_window_record());
        }
        injected.merge(&self.faults.take_window_record());
        let faults_active =
            self.faults.is_enabled() || self.switches.iter().any(|s| s.faults.is_enabled());
        let degraded = if faults_active || straggler_mask != 0 {
            let marker = DegradedWindow {
                injected,
                duplicates_suppressed,
                worker_retries,
                single_mode_fallbacks,
                boundary_retries,
                boundary_update_skipped: boundary_skipped,
                straggler_switches: straggler_mask,
            };
            if marker.is_clean() {
                None
            } else {
                for ((kind, n), counter) in injected.pairs().zip(&o.faults_injected) {
                    if n > 0 {
                        counter.add(n);
                        o.handle.event(EventKind::FaultInjected {
                            window,
                            kind: kind.name().to_string(),
                            count: n,
                        });
                    }
                }
                o.degraded_windows.inc();
                o.handle.event(EventKind::WindowDegraded {
                    window,
                    faults: injected.total(),
                });
                Some(marker)
            }
        } else {
            None
        };

        o.handle.event(EventKind::WindowClose {
            window,
            tuples_to_sp,
            shunts,
        });
        for &s in &live_ids {
            self.links[s].link.send_credit(window)?;
            self.switches[s].link.recv_credit()?;
        }

        // The waterfall: switch-side stages sum across the switches
        // that made it into the merge; arrivals attribute stragglers.
        let mut latency = WindowLatency {
            collector_drain_ns,
            shard_execute_ns,
            merge_ns,
            ..WindowLatency::default()
        };
        for &s in &live_ids {
            latency.packet_loop_ns += rxs[s].packet_loop_ns;
            latency.dump_encode_ns += rxs[s].dump_encode_ns;
            latency.transport_ns += rxs[s].transport_ns;
            // Arrivals only when the clock ran: a disabled-obs report
            // stays bit-identical to `WindowLatency::default`.
            if o.handle.is_enabled() {
                latency.arrivals.push(SwitchArrival {
                    switch: s as u16,
                    close_ns: rxs[s].close_ns,
                });
            }
        }

        let report = WindowReport {
            window,
            epoch,
            packets,
            tuples_to_sp,
            shunts,
            tuples_per_query,
            shunts_per_query: crate::runtime::attribute_shunts(&self.instances, &shunts_per_task)
                .into_iter()
                .collect(),
            alerts: alerts.into_iter().collect(),
            filter_entries_written: entries_written as usize,
            update_latency,
            replan_triggered,
            latency,
            degraded,
            error_bounds: crate::runtime::fold_error_bounds(&all_bounds),
        };
        if let Some(rs) = &mut self.replan {
            rs.note_window(&report);
        }
        Ok(report)
    }

    /// Join a due re-solve and swap it in at the boundary before
    /// `window` opens (fabric-wide). No-op when the loop is disabled,
    /// nothing is due, or the re-solve failed.
    fn poll_replan(&mut self, window: u64) -> Result<(), RuntimeError> {
        let Some((outcome, solve_wall_ns)) =
            self.replan.as_mut().and_then(|rs| rs.take_due(window))
        else {
            return Ok(());
        };
        self.apply_swap(window, outcome, solve_wall_ns)
    }

    /// Swap a re-solved plan across the whole fabric at one window
    /// boundary. Every switch — live or dark — is reprogrammed and
    /// re-keyed to the new digest/epoch, every collector link commits
    /// the epoch *before* its switch's fresh `Hello` goes out, every
    /// shard re-registers the new instances, and the drift monitor
    /// re-bases on the new budget. `window` is the first window the
    /// whole fabric executes under the new plan.
    fn apply_swap(
        &mut self,
        window: u64,
        outcome: ReplanOutcome,
        solve_wall_ns: u64,
    ) -> Result<(), RuntimeError> {
        let warm = outcome.solution.as_ref().map(|s| s.warm).unwrap_or(false);
        let plan = outcome.plan;
        let DeployedPlan {
            program,
            deployments,
            instances,
        } = deploy(&plan)?;
        let digest = plan_digest(&deployments);
        for s in 0..self.topo.switches {
            let mut switch = Switch::load_with_sketch(
                program.clone(),
                &self.cfg.constraints,
                &self.cfg.obs,
                self.cfg.sketch,
            )
            .map_err(RuntimeError::Load)?;
            switch.set_force_reference(self.cfg.force_reference_path);
            switch.set_defer_dump_thresholds(true);
            self.switches[s].switch = switch;
            self.links[s].emitter = Emitter::with_faults(&deployments, &self.switches[s].faults);
        }
        // Collector side first: each link must already judge frames
        // against the new plan when its switch's `Hello` arrives.
        for link in &mut self.links {
            link.link.set_plan(digest, plan.epoch);
        }
        for sw in &mut self.switches {
            sw.link.set_plan(digest, plan.epoch)?;
        }
        for j in 0..self.topo.shards {
            let mut engine = ShardedEngine::with_config(
                self.cfg.workers,
                &self.cfg.obs,
                &self.faults,
                self.cfg.force_reference_path,
            );
            let mut fallback = self.shards[j].fallback.is_some().then(|| {
                let mut eng = MicroBatchEngine::new();
                eng.set_force_reference(self.cfg.force_reference_path);
                eng
            });
            for inst in instances
                .iter()
                .filter(|i| self.topo.shard_for_query(i.source) == j)
            {
                engine.register(inst.refined.clone());
                if let Some(fb) = &mut fallback {
                    fb.register(inst.refined.clone());
                }
            }
            self.shards[j] = Shard { engine, fallback };
        }
        self.feed_forward = build_feed_forward(&deployments, &instances);
        self.by_task = deployments.iter().map(|d| (d.task, d.clone())).collect();
        self.instances = instances;
        // The old plan's dynamic filters are meaningless under the new
        // deployment; a rejoin before the next boundary replays only
        // the register reset.
        self.last_control = vec![ControlOp::ResetRegisters];
        self.drift.rebase(plan.budget());
        self.obs.rt.swaps.inc();
        self.obs.rt.handle.event(EventKind::PlanSwap {
            window,
            epoch: plan.epoch,
            plan_digest: digest,
            warm,
            solve_wall_ns,
        });
        if let Some(rs) = &mut self.replan {
            rs.committed = plan;
        }
        Ok(())
    }

    /// Fabric-wide metrics snapshot: the shared registry decomposed
    /// into per-source parts (`switch-N` / `shard-N` / `collector`)
    /// by each series' identifying label. Join snapshots from several
    /// fabrics (or export one run) with [`FabricSnapshot::merge`] —
    /// the join is commutative, associative, and idempotent, so
    /// export order never changes the fabric-wide document.
    pub fn fabric_snapshot(&self) -> FabricSnapshot {
        FabricSnapshot::from_labeled(&self.cfg.obs.snapshot())
    }

    /// The observability handle this fabric reports into.
    pub fn obs(&self) -> &ObsHandle {
        &self.cfg.obs
    }
}

/// Push one packet through a switch's pipeline and ship its mirrored
/// reports through the egress fault seam.
fn feed_switch(sw: &mut FabricSwitch, pkt: &Packet) -> Result<(), RuntimeError> {
    let reports = if sw.wire_mode {
        sw.switch.process_bytes(&pkt.encode(), pkt.ts_nanos)
    } else {
        sw.switch.process(pkt)
    };
    sw.link.send_packet_reports(reports)?;
    Ok(())
}

/// Drain every frame already buffered on one switch's collector link.
fn pump_link(
    link: &mut FabricLink,
    rx: &mut WindowRx,
    obs: &ObsHandle,
) -> Result<(), RuntimeError> {
    while let Some(frame) = link.link.try_recv_frame()? {
        absorb_frame(link, rx, frame, obs)?;
    }
    Ok(())
}

/// Fold one received frame into a switch's window accumulator.
fn absorb_frame(
    link: &mut FabricLink,
    rx: &mut WindowRx,
    frame: Frame,
    obs: &ObsHandle,
) -> Result<(), RuntimeError> {
    match frame {
        Frame::WindowOpen { window, packets } => {
            rx.window = window;
            rx.packets = packets;
            rx.opened = true;
            rx.ctx = link.link.last_ctx();
            rx.epoch = link.link.last_epoch();
        }
        Frame::Report(r) => {
            if r.kind == ReportKind::Shunt {
                rx.shunts += 1;
                *rx.shunts_per_task.entry(r.task.query).or_default() += 1;
            }
            link.emitter.ingest(&r);
        }
        Frame::WindowDump { dump, .. } => rx.dump = Some(dump),
        Frame::WindowClose {
            packet_loop_ns,
            dump_ns,
            transport_ns,
            ..
        } => {
            rx.packet_loop_ns = packet_loop_ns;
            rx.dump_encode_ns = dump_ns;
            rx.transport_ns = transport_ns;
            rx.close_ns = obs.now_ns();
            rx.ctx = link.link.last_ctx();
            rx.epoch = link.link.last_epoch();
            rx.closed = true;
        }
        _ => {
            return Err(RuntimeError::Net(NetError::Protocol(
                "unexpected frame in window stream",
            )))
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::Runtime;
    use sonata_packet::{PacketBuilder, TcpFlags};
    use sonata_planner::{plan_queries, PlanMode, PlannerConfig};
    use sonata_query::catalog::{self, Thresholds};

    #[test]
    fn topology_validation_and_mappings() {
        assert!(TopologyConfig::new(0, 0).validate().is_ok()); // clamped to 1×1
        assert!(TopologyConfig {
            switches: 65,
            ..TopologyConfig::new(1, 1)
        }
        .validate()
        .is_err());
        assert!(TopologyConfig {
            shares: vec![1.0],
            ..TopologyConfig::new(2, 1)
        }
        .validate()
        .is_err());
        assert!(TopologyConfig {
            assignment: vec![0, 2],
            ..TopologyConfig::new(2, 2)
        }
        .validate()
        .is_err());
        let t = TopologyConfig::new(4, 2);
        assert_eq!(t.shard_for(0), 0);
        assert_eq!(t.shard_for(3), 1);
        assert_eq!(t.partitioner().switches(), 4);
        let custom = TopologyConfig {
            assignment: vec![1, 1, 0, 0],
            ..TopologyConfig::new(4, 2)
        };
        assert!(custom.validate().is_ok());
        assert_eq!(custom.shard_for(0), 1);
        assert_eq!(custom.shard_for(3), 0);
    }

    fn syn(src: u32, dst: u32, ts_ms: u64) -> Packet {
        PacketBuilder::tcp_raw(src, 9, dst, 80)
            .flags(TcpFlags::SYN)
            .ts_nanos(ts_ms * 1_000_000)
            .build()
    }

    fn trace(windows: u64) -> Trace {
        let mut pkts = Vec::new();
        for w in 0..windows {
            let base = w * 3_000;
            for i in 0..30u32 {
                pkts.push(syn(100 + i, 0x63070019, base + i as u64));
            }
            for host in 0..40u32 {
                pkts.push(syn(
                    7,
                    ((host % 20 + 1) << 24) | host,
                    base + 100 + host as u64,
                ));
            }
        }
        Trace::new(pkts)
    }

    fn plan_for(mode: PlanMode, queries: &[sonata_query::Query], tr: &Trace) -> GlobalPlan {
        let windows: Vec<&[Packet]> = tr.windows(3_000).map(|(_, p)| p).collect();
        let cfg = PlannerConfig {
            mode,
            cost: sonata_planner::costs::CostConfig {
                levels: Some(vec![8, 32]),
                ..Default::default()
            },
            ..Default::default()
        };
        plan_queries(queries, &windows, &cfg).unwrap()
    }

    fn q1() -> sonata_query::Query {
        catalog::newly_opened_tcp_conns(&Thresholds {
            new_tcp: 10,
            ..Thresholds::default()
        })
    }

    #[test]
    fn fabric_matches_single_runtime_across_topologies() {
        let tr = trace(2);
        let q = q1();
        let plan = plan_for(PlanMode::MaxDp, std::slice::from_ref(&q), &tr);
        let baseline = {
            let mut rt = Runtime::new(&plan, RuntimeConfig::default()).unwrap();
            rt.process_trace(&tr).unwrap()
        };
        for (n, m) in [(1, 1), (2, 1), (3, 2)] {
            let mut fab = Fabric::new(
                &plan,
                RuntimeConfig {
                    topology: Some(TopologyConfig::new(n, m)),
                    ..RuntimeConfig::default()
                },
            )
            .unwrap();
            let got = fab.process_trace(&tr).unwrap();
            assert_eq!(got.windows.len(), baseline.windows.len(), "{n}x{m}");
            for (b, g) in baseline.windows.iter().zip(&got.windows) {
                assert_eq!(b.alerts, g.alerts, "{n}x{m} window {}", b.window);
                assert_eq!(b.packets, g.packets, "{n}x{m} window {}", b.window);
                assert_eq!(
                    b.tuples_to_sp, g.tuples_to_sp,
                    "{n}x{m} window {}",
                    b.window
                );
                assert_eq!(
                    b.tuples_per_query, g.tuples_per_query,
                    "{n}x{m} window {}",
                    b.window
                );
            }
        }
    }

    #[test]
    fn straggler_switch_degrades_window_without_stalling() {
        let tr = trace(3);
        let q = q1();
        let plan = plan_for(PlanMode::MaxDp, std::slice::from_ref(&q), &tr);
        let mut fab = Fabric::new(
            &plan,
            RuntimeConfig {
                topology: Some(TopologyConfig::new(2, 1)),
                ..RuntimeConfig::default()
            },
        )
        .unwrap();
        fab.set_outage(SwitchOutage {
            switch: 1,
            from_window: 1,
            cut_after: 3,
            rejoin_window: 2,
        })
        .unwrap();
        let report = fab.process_trace(&tr).unwrap();
        assert_eq!(report.windows.len(), 3);
        // Window 1 is degraded with switch 1's straggler bit set …
        let d = report.windows[1].degraded.as_ref().expect("degraded");
        assert_eq!(d.straggler_switches, 0b10);
        // … windows 0 and 2 are clean.
        assert!(report.windows[0].degraded.is_none());
        assert!(report.windows[2].degraded.is_none());
        // The degraded window only saw switch 0's packets.
        assert!(report.windows[1].packets < report.windows[0].packets);
        assert_eq!(report.windows[2].packets, report.windows[0].packets);
    }
}
