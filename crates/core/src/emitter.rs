//! The emitter: the software shim between the switch's monitoring
//! port and the stream processor (Section 5).
//!
//! During a window it consumes mirrored report packets, demultiplexes
//! them by task (`qid`), and buffers. Per-packet tuple reports and
//! switch-finalized window dumps are forwarded straight into the
//! stream-job batches. Collision shunts and *raw* dumps (registers
//! whose task shunted this window) go to the emitter's **local
//! key-value store** instead: at window end it replays the task's
//! switch-resident operators over them — re-aggregating shunted keys,
//! merging them with the register dump, and applying the merged
//! threshold — and forwards only the surviving tuples. This is exactly
//! the paper's emitter: "it stores the output of stateful operators in
//! a local key-value data store \[and\] reads the aggregated value for
//! each key … from the data-plane registers before sending the output
//! tuples to the stream processor."

use crate::driver::Deployment;
use sonata_faults::FaultInjector;
use sonata_packet::Value;
use sonata_pisa::{Report, ReportKind, TaskId, WindowDump};
use sonata_query::{ColName, QueryId, Schema, Tuple};
use sonata_stream::{run_entries, StreamError, WindowBatch};
use std::collections::{BTreeMap, HashMap, HashSet};

/// Converts switch reports into per-job window batches.
#[derive(Debug)]
pub struct Emitter {
    by_task: HashMap<TaskId, Deployment>,
    /// Accumulating batches, keyed by stream job.
    batches: HashMap<QueryId, WindowBatch>,
    /// Local key-value store: per task, tuples awaiting the
    /// end-of-window merge, keyed by their pipeline entry op.
    local: HashMap<TaskId, BTreeMap<usize, Vec<Tuple>>>,
    /// Tuples already forwarded this window (per-packet reports and
    /// finalized dumps).
    forwarded_this_window: u64,
    /// Reports received from the switch this window (includes shunts
    /// and raw dumps that the local store absorbs).
    received_this_window: u64,
    /// Cumulative tuples forwarded to the stream processor.
    pub total_tuples: u64,
    /// Cumulative switch→emitter reports.
    pub total_received: u64,
    /// Duplicate suppression, active only when fault injection is on:
    /// per-task `(window, seq)` sets keyed on the switch-assigned
    /// report sequence number — an injected duplicate repeats a seq, a
    /// legitimately identical tuple never does, so fault-free
    /// behaviour is untouched.
    dedup: Option<HashMap<TaskId, HashSet<u64>>>,
    suppressed_this_window: u64,
    suppressed_last_window: u64,
    /// Cumulative duplicate reports suppressed.
    pub total_suppressed: u64,
}

impl Emitter {
    /// Build from the deployed plan's per-task bookkeeping.
    pub fn new(deployments: &[Deployment]) -> Self {
        Self::with_faults(deployments, &FaultInjector::disabled())
    }

    /// [`Self::new`] with a fault injector: an enabled injector turns
    /// on duplicate-report suppression (the graceful-degradation
    /// response to injected report duplication).
    pub fn with_faults(deployments: &[Deployment], faults: &FaultInjector) -> Self {
        Emitter {
            by_task: deployments.iter().map(|d| (d.task, d.clone())).collect(),
            batches: HashMap::new(),
            local: HashMap::new(),
            forwarded_this_window: 0,
            received_this_window: 0,
            total_tuples: 0,
            total_received: 0,
            dedup: faults.is_enabled().then(HashMap::new),
            suppressed_this_window: 0,
            suppressed_last_window: 0,
            total_suppressed: 0,
        }
    }

    /// Convert a report's named columns into a tuple laid out by
    /// `schema` (columns the report lacks read as zero, mirroring
    /// uninitialized metadata).
    fn tuple_for(schema: &Schema, columns: &[(ColName, u64)]) -> Tuple {
        let values = schema
            .columns()
            .iter()
            .enumerate()
            .map(|(i, c)| {
                // Switch reports lay columns out in schema order, so
                // the positional probe almost always hits; fall back
                // to a scan for partial or reordered reports.
                match columns.get(i) {
                    Some((n, v)) if n == c => Value::U64(*v),
                    _ => columns
                        .iter()
                        .find(|(n, _)| n == c)
                        .map(|(_, v)| Value::U64(*v))
                        .unwrap_or(Value::U64(0)),
                }
            })
            .collect();
        Tuple::new(values)
    }

    fn forward(&mut self, dep_job: QueryId, branch: u8, entry_op: usize, tuple: Tuple) {
        let batch = self.batches.entry(dep_job).or_default();
        if branch == 0 {
            batch.push_left(entry_op, [tuple]);
        } else {
            batch.push_right(entry_op, [tuple]);
        }
        self.forwarded_this_window += 1;
    }

    /// Bulk hand-off: one `WindowBatch` append per (job, entry) —
    /// used by the end-of-window drain so the merged survivors move
    /// into the batch as a whole vector instead of tuple by tuple.
    fn forward_many(&mut self, dep_job: QueryId, branch: u8, entry_op: usize, tuples: Vec<Tuple>) {
        self.forwarded_this_window += tuples.len() as u64;
        let batch = self.batches.entry(dep_job).or_default();
        if branch == 0 {
            batch.append_left(entry_op, tuples);
        } else {
            batch.append_right(entry_op, tuples);
        }
    }

    /// Ingest one mirrored report.
    pub fn ingest(&mut self, report: &Report) {
        let Some(dep) = self.by_task.get(&report.task).cloned() else {
            return; // stale task after a plan change
        };
        self.received_this_window += 1;
        if let Some(dedup) = &mut self.dedup {
            // `(task, window, seq)` identifies one logical report
            // (seqs are per-task, per-window); a repeat is an
            // injected duplicate and is suppressed, not re-applied.
            if !dedup.entry(report.task).or_default().insert(report.seq) {
                self.suppressed_this_window += 1;
                return;
            }
        }
        match report.kind {
            ReportKind::Shunt | ReportKind::WindowDumpRaw => {
                // Into the local store for the end-of-window merge.
                let entry = report.entry_op.expect("shunt/raw reports carry entry op");
                let schema = dep
                    .entry_schemas
                    .get(&entry)
                    .expect("entry schema recorded at deploy time");
                let tuple = Self::tuple_for(schema, &report.columns);
                self.local
                    .entry(report.task)
                    .or_default()
                    .entry(entry)
                    .or_default()
                    .push(tuple);
            }
            ReportKind::Tuple | ReportKind::WindowDump => {
                let tuple = if dep.report_packet {
                    let pkt = report
                        .packet
                        .as_ref()
                        .expect("packet report carries the packet");
                    Tuple::from_packet(pkt)
                } else {
                    Self::tuple_for(&dep.resume_schema, &report.columns)
                };
                self.forward(dep.job, dep.branch, dep.resume_op, tuple);
            }
        }
    }

    /// Ingest the end-of-window register dump.
    pub fn ingest_dump(&mut self, dump: &WindowDump) {
        for report in &dump.tuples {
            self.ingest(report);
        }
    }

    /// Close the window: merge the local store (replaying each task's
    /// switch-side operators over shunts + raw dumps, which applies
    /// the thresholds the switch had to skip), forward survivors, and
    /// hand out the accumulated batches.
    pub fn close_window(&mut self) -> Result<Vec<(QueryId, WindowBatch)>, StreamError> {
        let pending: Vec<(TaskId, BTreeMap<usize, Vec<Tuple>>)> = self.local.drain().collect();
        for (task, entries) in pending {
            let dep = self.by_task.get(&task).cloned().expect("local store task");
            let (_, survivors) = run_entries(&dep.local_ops, &entries)?;
            self.forward_many(dep.job, dep.branch, dep.resume_op, survivors);
        }
        Ok(self.roll_window())
    }

    /// Close the window on one *fabric* switch's emitter: hand out the
    /// directly forwarded batches plus the raw local store (shunts and
    /// raw dumps, pre-replay, in task order), without running the
    /// switch-operator replay. A fabric must union the local stores of
    /// every switch first and replay the operators once over the
    /// union — per-switch replay would apply thresholds to partial
    /// per-switch aggregates and drop keys whose fabric-wide sum
    /// crosses the threshold.
    #[allow(clippy::type_complexity)]
    pub fn take_partial(
        &mut self,
    ) -> (
        Vec<(QueryId, WindowBatch)>,
        Vec<(TaskId, BTreeMap<usize, Vec<Tuple>>)>,
    ) {
        let mut local: Vec<(TaskId, BTreeMap<usize, Vec<Tuple>>)> = self.local.drain().collect();
        local.sort_by_key(|(task, _)| *task);
        (self.roll_window(), local)
    }

    /// End-of-window counter roll shared by both close paths.
    fn roll_window(&mut self) -> Vec<(QueryId, WindowBatch)> {
        self.total_tuples += self.forwarded_this_window;
        self.total_received += self.received_this_window;
        self.forwarded_this_window = 0;
        self.received_this_window = 0;
        if let Some(dedup) = &mut self.dedup {
            dedup.clear(); // seqs restart next window
        }
        self.total_suppressed += self.suppressed_this_window;
        self.suppressed_last_window = self.suppressed_this_window;
        self.suppressed_this_window = 0;
        let mut out: Vec<(QueryId, WindowBatch)> = self.batches.drain().collect();
        out.sort_by_key(|(job, _)| *job);
        out
    }

    /// Tuples forwarded toward the stream processor in the current
    /// window so far (pre-merge).
    pub fn window_tuples(&self) -> u64 {
        self.forwarded_this_window
    }

    /// Switch→emitter reports in the current window so far.
    pub fn window_received(&self) -> u64 {
        self.received_this_window
    }

    /// Duplicate reports suppressed in the most recently closed
    /// window.
    pub fn suppressed_last_window(&self) -> u64 {
        self.suppressed_last_window
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sonata_packet::Field;
    use sonata_packet::PacketBuilder;
    use sonata_query::expr::{col, field, lit};
    use sonata_query::{Agg, QueryId};

    /// Query-1-shaped ops: filter, map, reduce, threshold filter.
    fn q1_ops(th: u64) -> Vec<sonata_query::Operator> {
        sonata_query::Query::builder("x", 1)
            .filter(field(Field::TcpFlags).eq(lit(2)))
            .map([("dIP", field(Field::Ipv4Dst)), ("count", lit(1))])
            .reduce(&["dIP"], Agg::Sum, "count")
            .filter(col("count").gt(lit(th)))
            .build()
            .unwrap()
            .pipeline
            .ops
    }

    fn deployment(task: TaskId, job: u32) -> Deployment {
        Deployment {
            task,
            job: QueryId(job),
            branch: task.branch,
            resume_op: 4,
            report_packet: false,
            resume_schema: Schema::new(["dIP", "count"]),
            entry_schemas: [(2usize, Schema::new(["dIP", "count"]))]
                .into_iter()
                .collect(),
            local_ops: q1_ops(2),
            dynfilter_table: None,
        }
    }

    fn task(q: u32, branch: u8) -> TaskId {
        TaskId {
            query: QueryId(q),
            level: 32,
            branch,
        }
    }

    fn report(
        task: TaskId,
        kind: ReportKind,
        cols: Vec<(ColName, u64)>,
        entry: Option<usize>,
    ) -> Report {
        report_seq(task, kind, cols, entry, 0)
    }

    fn report_seq(
        task: TaskId,
        kind: ReportKind,
        cols: Vec<(ColName, u64)>,
        entry: Option<usize>,
        seq: u64,
    ) -> Report {
        Report {
            task,
            kind,
            columns: cols,
            packet: None,
            entry_op: entry,
            seq,
        }
    }

    #[test]
    fn finalized_dumps_forward_directly() {
        let mut e = Emitter::new(&[deployment(task(1, 0), 10)]);
        e.ingest(&report(
            task(1, 0),
            ReportKind::WindowDump,
            vec![("count".into(), 7), ("dIP".into(), 42)],
            None,
        ));
        assert_eq!(e.window_tuples(), 1);
        let batches = e.close_window().unwrap();
        let t = &batches[0].1.left[&4][0];
        // Columns reordered into the resume schema.
        assert_eq!(t.get(0), &Value::U64(42));
        assert_eq!(t.get(1), &Value::U64(7));
    }

    #[test]
    fn shunts_merge_with_raw_dump_and_threshold_applies() {
        let mut e = Emitter::new(&[deployment(task(1, 0), 10)]);
        // Raw dump: key 0xaa aggregated 2 on the switch (≤ threshold 2).
        e.ingest(&report(
            task(1, 0),
            ReportKind::WindowDumpRaw,
            vec![("dIP".into(), 0xaa), ("count".into(), 2)],
            Some(2),
        ));
        // Two shunted packets of the same key: merged count 4 > 2.
        for _ in 0..2 {
            e.ingest(&report(
                task(1, 0),
                ReportKind::Shunt,
                vec![("dIP".into(), 0xaa), ("count".into(), 1)],
                Some(2),
            ));
        }
        // A different shunted key with too few packets: filtered out.
        e.ingest(&report(
            task(1, 0),
            ReportKind::Shunt,
            vec![("dIP".into(), 0xbb), ("count".into(), 1)],
            Some(2),
        ));
        assert_eq!(e.window_tuples(), 0); // nothing forwarded yet
        assert_eq!(e.window_received(), 4);
        let batches = e.close_window().unwrap();
        let tuples = &batches[0].1.left[&4];
        assert_eq!(tuples.len(), 1, "{tuples:?}");
        assert_eq!(tuples[0].get(0), &Value::U64(0xaa));
        assert_eq!(tuples[0].get(1), &Value::U64(4));
        // Accounting: 4 received, 1 forwarded.
        assert_eq!(e.total_received, 4);
        assert_eq!(e.total_tuples, 1);
    }

    #[test]
    fn raw_dump_below_threshold_without_shunts_is_dropped() {
        let mut e = Emitter::new(&[deployment(task(1, 0), 10)]);
        e.ingest(&report(
            task(1, 0),
            ReportKind::WindowDumpRaw,
            vec![("dIP".into(), 0xcc), ("count".into(), 1)],
            Some(2),
        ));
        let batches = e.close_window().unwrap();
        assert!(batches.is_empty() || batches[0].1.tuple_count() == 0);
    }

    #[test]
    fn branches_route_left_and_right() {
        let mut e = Emitter::new(&[deployment(task(1, 0), 10), deployment(task(1, 1), 10)]);
        let mk = |branch| {
            report(
                task(1, branch),
                ReportKind::Tuple,
                vec![("dIP".into(), 1)],
                None,
            )
        };
        e.ingest(&mk(0));
        e.ingest(&mk(1));
        let batches = e.close_window().unwrap();
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].1.left.len(), 1);
        assert_eq!(batches[0].1.right.len(), 1);
        assert_eq!(batches[0].1.tuple_count(), 2);
    }

    #[test]
    fn packet_reports_become_packet_tuples() {
        let pkt = PacketBuilder::tcp_raw(5, 6, 7, 80).build();
        let mut e = Emitter::new(&[{
            let mut d = deployment(task(1, 0), 10);
            d.report_packet = true;
            d.resume_op = 0;
            d.resume_schema = Schema::packet();
            d
        }]);
        e.ingest(&Report {
            task: task(1, 0),
            kind: ReportKind::Tuple,
            columns: vec![],
            packet: Some(pkt),
            entry_op: None,
            seq: 0,
        });
        let batches = e.close_window().unwrap();
        let t = &batches[0].1.left[&0][0];
        assert_eq!(t.len(), Schema::packet().len());
    }

    fn dedup_emitter(deployments: &[Deployment]) -> Emitter {
        use sonata_faults::{FaultPlan, ReportFaults};
        let inj = FaultInjector::from_plan(&FaultPlan {
            seed: 1,
            report: ReportFaults {
                duplicate_per_mille: 1,
                ..ReportFaults::default()
            },
            ..FaultPlan::default()
        });
        Emitter::with_faults(deployments, &inj)
    }

    #[test]
    fn duplicate_seqs_are_suppressed_when_faults_enabled() {
        let mut e = dedup_emitter(&[deployment(task(1, 0), 10)]);
        let r = report_seq(
            task(1, 0),
            ReportKind::WindowDump,
            vec![("count".into(), 7), ("dIP".into(), 42)],
            None,
            5,
        );
        e.ingest(&r);
        e.ingest(&r); // injected duplicate: same (task, window, seq)
        assert_eq!(e.window_tuples(), 1);
        assert_eq!(e.window_received(), 2);
        let batches = e.close_window().unwrap();
        assert_eq!(batches[0].1.tuple_count(), 1);
        assert_eq!(e.suppressed_last_window(), 1);
        assert_eq!(e.total_suppressed, 1);
        // Seqs restart per window: the same seq next window is fresh.
        e.ingest(&report_seq(
            task(1, 0),
            ReportKind::WindowDump,
            vec![("count".into(), 9), ("dIP".into(), 42)],
            None,
            5,
        ));
        assert_eq!(e.window_tuples(), 1);
        let batches = e.close_window().unwrap();
        assert_eq!(batches[0].1.tuple_count(), 1);
        assert_eq!(e.suppressed_last_window(), 0);
    }

    #[test]
    fn identical_tuples_with_distinct_seqs_both_pass() {
        let mut e = dedup_emitter(&[deployment(task(1, 0), 10)]);
        for seq in [0, 1] {
            e.ingest(&report_seq(
                task(1, 0),
                ReportKind::Shunt,
                vec![("dIP".into(), 0xaa), ("count".into(), 1)],
                Some(2),
                seq,
            ));
        }
        assert_eq!(e.window_received(), 2);
        assert_eq!(e.suppressed_this_window, 0);
    }

    #[test]
    fn stale_tasks_are_dropped() {
        let mut e = Emitter::new(&[deployment(task(1, 0), 10)]);
        e.ingest(&report(task(99, 0), ReportKind::Tuple, vec![], None));
        assert_eq!(e.window_received(), 0);
        assert!(e.close_window().unwrap().is_empty());
    }
}
