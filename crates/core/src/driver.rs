//! Drivers: compile a [`GlobalPlan`] to its two targets.
//!
//! The data-plane driver turns every (query × level × branch) into a
//! compiled task in one merged [`PisaProgram`] — allocating metadata
//! slots and register ids globally so tasks never collide — and
//! records, per task, where the stream processor resumes and which
//! dynamic-filter table feeds it. The streaming driver registers each
//! level's refined query with the micro-batch engine under a synthetic
//! job id.

use sonata_pisa::compile::{compile_pipeline, CompileError};
use sonata_pisa::{PisaProgram, TaskId};
use sonata_planner::GlobalPlan;
use sonata_query::query::PipelineRef;
use sonata_query::{ColName, Operator, Pipeline, Query, QueryId, Schema};
use std::collections::BTreeMap;

/// One deployed branch task.
#[derive(Debug, Clone)]
pub struct Deployment {
    /// The switch task.
    pub task: TaskId,
    /// The stream job this task feeds.
    pub job: QueryId,
    /// Branch index (0 = left, 1 = right).
    pub branch: u8,
    /// Operator index where per-packet reports and window dumps enter.
    pub resume_op: usize,
    /// Whether per-packet reports carry the original packet.
    pub report_packet: bool,
    /// Schema at the resume entry point.
    pub resume_schema: Schema,
    /// Schemas at every shunt/merge entry point (stateful operator
    /// indices), for reconstructing tuples from report columns.
    pub entry_schemas: BTreeMap<usize, Schema>,
    /// The branch's switch-resident operator prefix — the emitter's
    /// local key-value store replays it to merge collision shunts with
    /// register dumps before thresholding (Section 5).
    pub local_ops: Vec<Operator>,
    /// Name of this branch's dynamic filter table, when the level has
    /// a predecessor.
    pub dynfilter_table: Option<String>,
}

/// One stream job: a (query, level) instance.
#[derive(Debug, Clone)]
pub struct QueryInstance {
    /// Synthetic job id (`query.id × 1000 + level`).
    pub job: QueryId,
    /// The original query id.
    pub source: QueryId,
    /// The refinement level.
    pub level: u8,
    /// The preceding level in the chain.
    pub prev: Option<u8>,
    /// The refined query registered with the engine.
    pub refined: Query,
    /// Output column carrying the (masked) refinement key.
    pub out_col: Option<ColName>,
    /// Whether this is the chain's final level (its outputs are user
    /// results; coarser levels only steer refinement).
    pub is_finest: bool,
}

/// The result of compiling a plan for deployment.
#[derive(Debug, Clone)]
pub struct DeployedPlan {
    /// The merged data-plane program.
    pub program: PisaProgram,
    /// Per-branch deployments.
    pub deployments: Vec<Deployment>,
    /// Per-(query, level) stream jobs.
    pub instances: Vec<QueryInstance>,
}

/// Deployment failure.
#[derive(Debug)]
pub enum DeployError {
    /// A branch prefix failed to compile (planner bug: it validated
    /// the partition).
    Compile {
        /// The task that failed.
        task: TaskId,
        /// The underlying error.
        error: CompileError,
    },
}

impl std::fmt::Display for DeployError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeployError::Compile { task, error } => {
                write!(f, "compiling task {task} failed: {error}")
            }
        }
    }
}

impl std::error::Error for DeployError {}

/// Synthetic stream-job id for a (query, level) pair.
///
/// The `source × 1000 + level` shape is load-bearing beyond
/// uniqueness: `sonata_faults::FaultPlan::target_query` scopes faults
/// to one source query by inverting this mapping, so refinement jobs
/// inherit their source's fault targeting.
pub fn job_id(query: QueryId, level: u8) -> QueryId {
    QueryId(query.0 * 1000 + level as u32)
}

/// Schema after the first `k` operators of a pipeline.
fn schema_at(pipeline: &Pipeline, k: usize) -> Schema {
    let mut schema = Schema::packet();
    for op in pipeline.ops.iter().take(k) {
        schema = op.output_schema(&schema).unwrap_or(schema);
    }
    schema
}

/// Deterministic digest of a deployed plan's task set, exchanged in
/// the transport `Hello` so a switch and a collector refuse to talk
/// across mismatched deployments (plan/registration sync). Folds each
/// deployment's `(query, level, branch, job)` identity through a
/// splitmix64-style mixer; deployment order is deterministic, so both
/// sides of a wire derive the same value from the same plan.
pub fn plan_digest(deployments: &[Deployment]) -> u64 {
    let mut digest: u64 = 0x9e37_79b9_7f4a_7c15;
    let mut mix = |v: u64| {
        digest = digest.wrapping_add(v).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        digest ^= digest >> 31;
    };
    for d in deployments {
        mix(u64::from(d.task.query.0));
        mix(u64::from(d.task.level));
        mix(u64::from(d.task.branch));
        mix(u64::from(d.job.0));
    }
    digest
}

/// Compile a plan into a deployable program plus bookkeeping.
pub fn deploy(plan: &GlobalPlan) -> Result<DeployedPlan, DeployError> {
    let mut program = PisaProgram::default();
    let mut deployments = Vec::new();
    let mut instances = Vec::new();
    let mut meta_base = 0usize;
    let mut reg_base = 0u32;

    for qp in &plan.queries {
        let chain_len = qp.levels.len();
        for (li, lp) in qp.levels.iter().enumerate() {
            let job = job_id(qp.query.id, lp.level);
            let mut refined = lp.refined.clone();
            // The engine job id must be unique per instance.
            refined.id = job;
            instances.push(QueryInstance {
                job,
                source: qp.query.id,
                level: lp.level,
                prev: lp.prev,
                refined: refined.clone(),
                out_col: qp.query.refinement.as_ref().map(|h| h.out_col.clone()),
                is_finest: li + 1 == chain_len,
            });
            for bp in &lp.branches {
                let task = TaskId {
                    query: qp.query.id,
                    level: lp.level,
                    branch: bp.branch,
                };
                let pipeline: &Pipeline = match bp.branch {
                    0 => &refined.pipeline,
                    _ => &refined.join.as_ref().expect("branch 1 implies join").right,
                };
                let compiled =
                    compile_pipeline(pipeline, task, &bp.stages, &bp.sizings, meta_base, reg_base)
                        .map_err(|error| DeployError::Compile { task, error })?;
                meta_base = compiled.fragment.meta_slots.max(meta_base);
                reg_base += compiled.fragment.registers.len() as u32;
                let dynfilter_table = compiled
                    .fragment
                    .tables
                    .iter()
                    .find(|t| matches!(t.kind, sonata_pisa::TableKind::DynFilter { .. }))
                    .map(|t| t.name.clone());
                let mut entry_schemas = BTreeMap::new();
                for (op, _) in &compiled.shunt_entries {
                    entry_schemas.insert(*op, schema_at(pipeline, *op));
                }
                deployments.push(Deployment {
                    task,
                    job,
                    branch: bp.branch,
                    resume_op: compiled.sp_resume_op,
                    report_packet: compiled.report_packet,
                    resume_schema: schema_at(pipeline, compiled.sp_resume_op),
                    entry_schemas,
                    local_ops: pipeline.ops[..compiled.sp_resume_op].to_vec(),
                    dynfilter_table,
                });
                program.merge(compiled.fragment);
            }
        }
    }
    Ok(DeployedPlan {
        program,
        deployments,
        instances,
    })
}

/// The pipeline ops of a branch within a query (helper for tests and
/// the emitter).
pub fn branch_pipeline(q: &Query, branch: u8) -> &Pipeline {
    match branch {
        0 => &q.pipeline,
        _ => &q.join.as_ref().expect("branch 1 implies join").right,
    }
}

/// Which [`PipelineRef`] a branch index denotes.
pub fn branch_ref(branch: u8) -> PipelineRef {
    if branch == 0 {
        PipelineRef::Left
    } else {
        PipelineRef::Right
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sonata_packet::{Packet, PacketBuilder, TcpFlags};
    use sonata_pisa::{Switch, SwitchConstraints};
    use sonata_planner::{plan_queries, PlanMode, PlannerConfig};
    use sonata_query::catalog::{self, Thresholds};

    fn syn(src: u32, dst: u32, ts: u64) -> Packet {
        PacketBuilder::tcp_raw(src, 9, dst, 80)
            .flags(TcpFlags::SYN)
            .ts_nanos(ts)
            .build()
    }

    fn window() -> Vec<Packet> {
        let mut pkts = Vec::new();
        for i in 0..30 {
            pkts.push(syn(100 + i, 0x63070019, i as u64));
        }
        for host in 0..40u32 {
            pkts.push(syn(7, ((host % 20 + 1) << 24) | host, 1000 + host as u64));
        }
        pkts
    }

    fn cfg(mode: PlanMode) -> PlannerConfig {
        PlannerConfig {
            mode,
            cost: sonata_planner::costs::CostConfig {
                levels: Some(vec![8, 32]),
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn deploys_single_query_sonata_plan() {
        let w = window();
        let q = catalog::newly_opened_tcp_conns(&Thresholds {
            new_tcp: 10,
            ..Thresholds::default()
        });
        let plan = plan_queries(&[q], &[&w], &cfg(PlanMode::Sonata)).unwrap();
        let deployed = deploy(&plan).unwrap();
        // One deployment per (level, branch); loads onto the switch.
        assert_eq!(deployed.deployments.len(), plan.queries[0].levels.len());
        let sw = Switch::load(deployed.program.clone(), &SwitchConstraints::default());
        assert!(sw.is_ok(), "{:?}", sw.err());
        // Finest instance flagged.
        let finest: Vec<_> = deployed.instances.iter().filter(|i| i.is_finest).collect();
        assert_eq!(finest.len(), 1);
        assert_eq!(finest[0].level, 32);
        // Later levels carry a dynamic filter.
        if plan.queries[0].levels.len() > 1 {
            let with_filter = deployed
                .deployments
                .iter()
                .filter(|d| d.dynfilter_table.is_some())
                .count();
            assert!(with_filter >= 1);
        }
    }

    #[test]
    fn deploys_eight_queries_without_collisions() {
        let w = window();
        let queries = catalog::top8(&Thresholds::default());
        let plan = plan_queries(&queries, &[&w], &cfg(PlanMode::Sonata)).unwrap();
        let deployed = deploy(&plan).unwrap();
        // Job ids unique per instance.
        let mut jobs: Vec<u32> = deployed.instances.iter().map(|i| i.job.0).collect();
        jobs.sort_unstable();
        let before = jobs.len();
        jobs.dedup();
        assert_eq!(jobs.len(), before);
        // Register ids unique.
        let mut regs: Vec<u32> = deployed.program.registers.iter().map(|r| r.id.0).collect();
        regs.sort_unstable();
        let before = regs.len();
        regs.dedup();
        assert_eq!(regs.len(), before);
        // The merged program respects the default constraints.
        Switch::load(deployed.program, &SwitchConstraints::default()).unwrap();
    }

    #[test]
    fn join_query_deploys_two_branch_tasks_per_level() {
        let w = window();
        let q = catalog::tcp_syn_flood(&Thresholds {
            syn_flood: 5,
            ..Thresholds::default()
        });
        let plan = plan_queries(&[q], &[&w], &cfg(PlanMode::MaxDp)).unwrap();
        let deployed = deploy(&plan).unwrap();
        assert_eq!(deployed.deployments.len(), 2);
        let branches: Vec<u8> = deployed.deployments.iter().map(|d| d.branch).collect();
        assert!(branches.contains(&0) && branches.contains(&1));
        // Both branches feed the same stream job.
        assert_eq!(deployed.deployments[0].job, deployed.deployments[1].job);
        // Entry schemas recorded for the reduce merge points.
        for d in &deployed.deployments {
            assert!(!d.entry_schemas.is_empty());
            assert_eq!(d.local_ops.len(), d.resume_op);
        }
    }

    #[test]
    fn refinement_levels_get_distinct_dynfilter_tables() {
        let w = window();
        let q = catalog::newly_opened_tcp_conns(&Thresholds {
            new_tcp: 10,
            ..Thresholds::default()
        });
        let cfg = PlannerConfig {
            mode: PlanMode::FixRef,
            cost: sonata_planner::costs::CostConfig {
                levels: Some(vec![8, 16, 32]),
                ..Default::default()
            },
            ..PlannerConfig::default()
        };
        let plan = plan_queries(&[q], &[&w], &cfg).unwrap();
        let deployed = deploy(&plan).unwrap();
        // Levels 16 and 32 carry dynamic filters; level 8 does not.
        let mut with = Vec::new();
        for d in &deployed.deployments {
            if let Some(t) = &d.dynfilter_table {
                with.push((d.task.level, t.clone()));
            } else {
                assert_eq!(d.task.level, 8);
            }
        }
        let mut levels: Vec<u8> = with.iter().map(|(l, _)| *l).collect();
        levels.sort_unstable();
        assert_eq!(levels, vec![16, 32]);
        // Table names are distinct.
        let mut names: Vec<String> = with.into_iter().map(|(_, t)| t).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 2);
    }

    #[test]
    fn job_ids_are_stable_and_recoverable() {
        use sonata_query::QueryId;
        assert_eq!(job_id(QueryId(3), 8), QueryId(3008));
        assert_eq!(job_id(QueryId(3), 32), QueryId(3032));
        assert_ne!(job_id(QueryId(3), 8), job_id(QueryId(4), 8));
    }

    #[test]
    fn all_sp_plan_has_no_tables_but_reports_everything() {
        let w = window();
        let q = catalog::newly_opened_tcp_conns(&Thresholds::default());
        let plan = plan_queries(&[q], &[&w], &cfg(PlanMode::AllSp)).unwrap();
        let deployed = deploy(&plan).unwrap();
        assert!(deployed.program.tables.is_empty());
        assert_eq!(deployed.deployments[0].resume_op, 0);
        assert!(deployed.deployments[0].report_packet);
        let mut sw = Switch::load(deployed.program, &SwitchConstraints::default()).unwrap();
        let reports = sw.process(&syn(1, 2, 0));
        assert_eq!(reports.len(), 1);
    }
}
