//! The runtime orchestration loop.
//!
//! Per window: push every packet through the switch, collect mirrored
//! reports in the emitter; at the window boundary, poll the registers
//! (window dump), run each stream job on its batch, surface the
//! finest-level outputs as alerts, and push each coarser level's
//! output keys into the next level's dynamic filter table through the
//! control API — paying the measured update latency (Section 6.2).

use crate::drift::{DriftConfig, DriftMonitor};
use crate::driver::{deploy, plan_digest, DeployError, DeployedPlan, Deployment, QueryInstance};
use crate::emitter::Emitter;
use crate::fabric::TopologyConfig;
use sonata_faults::{FaultInjector, FaultKind, FaultPlan, FaultRecord};
use sonata_net::loopback::{loopback_pair, DEFAULT_CAPACITY};
use sonata_net::tcp::{tcp_pair, TcpOptions};
use sonata_net::{
    CollectorEndpoint, Frame, NetError, NetMetrics, SwitchEndpoint, Transport, TransportKind,
};
use sonata_obs::{
    Counter, EventKind, Gauge, Histogram, MetricsSnapshot, ObsHandle, Stage, TraceContext,
};
use sonata_packet::{Packet, PacketArena, Value};
use sonata_pisa::{
    ControlOp, ReportBatch, SketchConfig, StateLayout, Switch, SwitchConstraints, UpdateCostModel,
    WindowDump,
};
use sonata_planner::{GlobalPlan, ReplanOutcome, Replanner, SolveOptions};
use sonata_query::{QueryId, Tuple};
use sonata_stream::{MicroBatchEngine, ShardedEngine, StreamError, WindowBatch};
use sonata_traffic::Trace;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::time::Duration;

/// How many times a boundary write may fail (first attempt plus
/// retries) before the runtime gives up, skips the filter update for
/// the window, and marks it degraded. Each failure adds a simulated
/// doubling backoff (1 ms, 2 ms, ...) to the window's update latency.
pub(crate) const MAX_BOUNDARY_ATTEMPTS: u64 = 3;

/// Packet-ingest strategy for the data-plane window loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IngestMode {
    /// Zero-copy batched ingest (the default): each window's packets
    /// are laid out in a contiguous [`PacketArena`] and executed
    /// through [`Switch::process_batch`] — PHV slots resolved once per
    /// batch, hoisted leading filters evaluated columnar over the
    /// whole window, reports appended to a reusable arena and shipped
    /// as borrowed slices. Bit-identical to `Owned` (asserted by
    /// `tests/differential_ingest.rs`). Wire mode and the
    /// reference-path knob override this: both force per-packet
    /// execution, since they exist to oracle exactly that path.
    #[default]
    Arena,
    /// Per-packet owned ingest: clone-and-process one [`Packet`] at a
    /// time. The pre-batch behavior, kept as the reference shape for
    /// the differential suite and benchmarks.
    Owned,
}

/// Runtime configuration.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Switch resource limits (the deployed program is validated
    /// against them at load).
    pub constraints: SwitchConstraints,
    /// Control-plane latency model.
    pub cost_model: UpdateCostModel,
    /// Window size in milliseconds (defaults to the first query's).
    pub window_ms: Option<u64>,
    /// Re-planning trigger: when shunted packets exceed this fraction
    /// of a window's packets, the window counts as diverged
    /// (Section 5: "when it detects too many hash collisions, the
    /// runtime triggers the query planner"). Folded — together with
    /// the per-query budget reconciliation — into the plan-drift
    /// monitor's divergence scale; see [`DriftConfig`].
    pub shunt_replan_fraction: f64,
    /// Sustained-threshold rule turning plan divergence into the
    /// re-plan trigger ([`crate::drift::DriftMonitor`]).
    pub drift: DriftConfig,
    /// Wire mode: serialize every packet and drive the switch through
    /// its raw-bytes path (reconfigurable parser over wire bytes, as
    /// hardware would see them) instead of the decoded fast path.
    /// Slower; bit-for-bit equivalent (asserted by integration tests).
    pub wire_mode: bool,
    /// Stream-processor worker threads. 1 (the default) runs windows
    /// inline; N > 1 hash-partitions each window by the query's group
    /// key across N engine shards with byte-identical results (the
    /// differential suite in `sonata-stream` asserts this).
    pub workers: usize,
    /// Observability sink threaded through the switch, planner, and
    /// stream engine. Disabled (near-zero overhead) by default; enable
    /// with [`ObsHandle::enabled`] to collect metrics, events, and
    /// per-stage timings.
    pub obs: ObsHandle,
    /// Deterministic fault-injection plan threaded through the
    /// transport egress seam, the stream engine, and the
    /// boundary-write path. [`FaultPlan::none`] (the default) disables
    /// the layer entirely: the runtime is byte-identical to one built
    /// before the fault layer existed. A non-empty plan makes every
    /// fault a pure function of `(seed, window, site)`, and every
    /// injected fault is paired with a graceful-degradation response
    /// recorded in the window's [`WindowReport::degraded`] marker.
    pub faults: FaultPlan,
    /// Transport carrying the switch↔collector boundary traffic
    /// (reports, window dumps, control batches).
    /// [`TransportKind::Loopback`] (the default) passes frames
    /// in-process over bounded queues and is bit-identical to the
    /// pre-wire runtime; [`TransportKind::Tcp`] sends every frame
    /// through the versioned binary codec over localhost sockets.
    pub transport: TransportKind,
    /// Debug knob: force the tree-walking reference interpreters on
    /// both sides of the wire instead of the compiled fast paths
    /// (switch `ExecPlan`, stream `BoundPipeline`). The fast paths are
    /// bit-identical to the reference (asserted by the differential
    /// suite in `tests/differential_fastpath.rs`); this flag exists to
    /// verify exactly that claim and to bisect any future divergence.
    pub force_reference_path: bool,
    /// Multi-switch fabric topology. `None` (the default) runs the
    /// classic one-switch↔one-collector [`Runtime`] shape. `Some`
    /// topologies are consumed by [`crate::fabric::Fabric`], which
    /// splits the trace across N switch instances and merges their
    /// per-window partials across M collector shards.
    pub topology: Option<TopologyConfig>,
    /// Closed-loop replanning: what the runtime *does* when the drift
    /// monitor fires. Disabled by default — triggers are still
    /// reported on the window, but no re-solve runs and no swap
    /// happens, keeping replan-free runs bit-identical to earlier
    /// seeds.
    pub replan: ReplanConfig,
    /// Approximate data-plane state ([`sonata_pisa::SketchConfig`]):
    /// which register layout family stateful tasks use (exact
    /// key-value arrays, count-min, Bloom, HyperLogLog). The default
    /// (`StateLayout::Exact`) is an off-path no-op — runs are
    /// bit-identical to pre-sketch builds, asserted by
    /// `tests/differential_sketch.rs`. Non-exact layouts attach
    /// per-query [`crate::ErrorBoundReport`]s to every
    /// [`WindowReport`].
    pub sketch: SketchConfig,
    /// Packet-ingest strategy (see [`IngestMode`]). `Arena` (the
    /// default) batches each window through the packet arena;
    /// `Owned` keeps the per-packet path.
    pub ingest: IngestMode,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            constraints: SwitchConstraints::default(),
            cost_model: UpdateCostModel::default(),
            window_ms: None,
            shunt_replan_fraction: 0.05,
            drift: DriftConfig::default(),
            wire_mode: false,
            workers: 1,
            obs: ObsHandle::disabled(),
            faults: FaultPlan::none(),
            transport: TransportKind::Loopback,
            force_reference_path: false,
            topology: None,
            replan: ReplanConfig::default(),
            sketch: SketchConfig::default(),
            ingest: IngestMode::default(),
        }
    }
}

/// Configuration of the closed replanning loop: how the runtime acts
/// on a fired [`EventKind::ReplanTrigger`].
///
/// With a [`Replanner`] installed, a sustained drift breach enqueues
/// an incremental re-solve on a planner thread (re-cost from observed
/// loads, warm-start from the committed plan), and the epoch-bumped
/// result is swapped in atomically at the first window boundary at
/// least [`ReplanConfig::swap_delay`] windows after the trigger. The
/// swap commits the collector endpoint first, replays the switch
/// session `Hello` under the new digest, and re-bases the drift
/// monitor on the new plan's budget; every [`WindowReport`] carries
/// the epoch it executed under, so no window ever mixes plans.
///
/// Only the interleaved drivers ([`Runtime::process_window`] /
/// [`Runtime::process_trace`] and the fabric analogues) swap; the
/// threaded driver ([`Runtime::process_trace_threaded`]) reports
/// triggers but never swaps — its switch half is pinned on its own
/// thread for the whole run.
#[derive(Debug, Clone)]
pub struct ReplanConfig {
    /// The incremental re-solver, built from the same queries and
    /// training windows the initial plan was solved against (e.g. via
    /// [`Replanner::from_training`]). `None` disables the loop.
    pub replanner: Option<Replanner>,
    /// Windows between the trigger firing and the swap taking effect
    /// — the planner thread gets this much window-time off the hot
    /// path before the boundary poll joins it. Clamped to ≥ 1: a swap
    /// can never land on the window that triggered it.
    pub swap_delay: u64,
    /// Re-solve with the warm-started MILP ([`Replanner::replan_ilp`])
    /// instead of the greedy combinatorial planner.
    pub use_ilp: bool,
    /// Churn bound for the warm-started MILP: at most this many
    /// partition/refinement decision flips from the committed plan.
    pub delta: Option<usize>,
}

impl Default for ReplanConfig {
    fn default() -> Self {
        ReplanConfig {
            replanner: None,
            swap_delay: 2,
            use_ilp: false,
            delta: None,
        }
    }
}

impl ReplanConfig {
    /// Whether the closed loop is active.
    pub fn enabled(&self) -> bool {
        self.replanner.is_some()
    }
}

/// Per-window degradation marker: what was injected and how the
/// runtime absorbed it. Attached to [`WindowReport::degraded`] only
/// when something actually fired, so a fault-enabled run over a lucky
/// seed still reports `None` everywhere.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DegradedWindow {
    /// Per-kind injected-fault counts for the window.
    pub injected: FaultRecord,
    /// Duplicate reports the emitter's suppression dropped.
    pub duplicates_suppressed: u64,
    /// Stream jobs retried after an injected worker crash (the dead
    /// worker was respawned first).
    pub worker_retries: u64,
    /// Stream jobs that crashed again on retry and ran on the safe
    /// single-mode fallback engine instead.
    pub single_mode_fallbacks: u64,
    /// Boundary-write attempts that failed and were retried with
    /// backoff.
    pub boundary_retries: u64,
    /// Whether the dynamic-filter update was skipped after exhausting
    /// [`MAX_BOUNDARY_ATTEMPTS`] (registers were still reset).
    pub boundary_update_skipped: bool,
    /// Fabric runs only: bitmask of switch ids that failed to close
    /// the window (outage or mid-window loss). Their partials were
    /// discarded wholesale — bounded staleness, never a stall — so the
    /// merged window reflects only the switches that completed.
    /// Always 0 on single-switch runs.
    pub straggler_switches: u64,
}

impl DegradedWindow {
    /// True when nothing was injected and no degradation path fired.
    pub fn is_clean(&self) -> bool {
        self.injected.is_empty()
            && self.duplicates_suppressed == 0
            && self.worker_retries == 0
            && self.single_mode_fallbacks == 0
            && self.boundary_retries == 0
            && !self.boundary_update_skipped
            && self.straggler_switches == 0
    }
}

/// When one switch's `WindowClose` reached the collector, on the
/// collector's clock — the raw material for straggler attribution in
/// fabric runs (the last arrival gates the merge).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SwitchArrival {
    /// Switch id.
    pub switch: u16,
    /// Collector-clock nanoseconds when the close marker arrived
    /// (0 when observability is disabled).
    pub close_ns: u64,
}

/// Wall-clock waterfall of one window across the pipeline: the
/// switch-side stages arrive in-band on the `WindowClose` frame
/// (INT-style), the collector-side stages are measured locally. Every
/// field is the *same number* the `sonata_stage_ns{stage=...}`
/// profiler histogram observed — the waterfall and the profiler
/// reconcile exactly by construction. All zeros when observability is
/// disabled, so disabled-obs reports stay bit-identical.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WindowLatency {
    /// Switch packet loop (summed across switches in fabric runs).
    pub packet_loop_ns: u64,
    /// Register dump + encode at the window boundary (summed across
    /// switches).
    pub dump_encode_ns: u64,
    /// Shipping the window dump onto the wire (summed across
    /// switches).
    pub transport_ns: u64,
    /// Collector blocking on the close marker(s).
    pub collector_drain_ns: u64,
    /// Stream-job execution across the engine.
    pub shard_execute_ns: u64,
    /// Cross-switch partial-aggregate merge (fabric runs only; 0 on
    /// single-switch runs).
    pub merge_ns: u64,
    /// Per-switch close-marker arrival times, for straggler
    /// attribution.
    pub arrivals: Vec<SwitchArrival>,
}

impl WindowLatency {
    /// Sum of every stage in the waterfall.
    pub fn total_ns(&self) -> u64 {
        self.packet_loop_ns
            + self.dump_encode_ns
            + self.transport_ns
            + self.collector_drain_ns
            + self.shard_execute_ns
            + self.merge_ns
    }

    /// The switch whose close marker arrived last (the window's
    /// straggler), when arrivals were recorded.
    pub fn straggler(&self) -> Option<SwitchArrival> {
        self.arrivals.iter().copied().max_by_key(|a| a.close_ns)
    }
}

/// Per-window execution record.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowReport {
    /// Window index.
    pub window: u64,
    /// Epoch of the plan this window executed under (0 for an initial
    /// plan; bumped by each mid-run swap). Every window executes under
    /// exactly one epoch — the swap happens only between windows — and
    /// the fabric refuses to merge per-switch partials whose epochs
    /// disagree.
    pub epoch: u64,
    /// Packets the switch processed.
    pub packets: u64,
    /// Tuples delivered to the stream processor (the headline metric).
    pub tuples_to_sp: u64,
    /// Collision shunts within those tuples.
    pub shunts: u64,
    /// Tuples delivered per *source* query (refinement levels of one
    /// query fold into its entry), sorted by query id; sums to
    /// `tuples_to_sp`.
    pub tuples_per_query: Vec<(QueryId, u64)>,
    /// Collision shunts per *source* query, sorted by query id; sums
    /// to `shunts`. Like `shunts` itself this is switch-local physics:
    /// it depends on which keys share a register, so it is exact for a
    /// single switch and merely the per-switch sum across a fabric.
    /// Together with `tuples_per_query` it gives the replanner the
    /// observed *channel* load per query — the quantity the cost
    /// model's per-branch `n` actually predicts.
    pub shunts_per_query: Vec<(QueryId, u64)>,
    /// Final (finest-level) query results: `(query, tuples)`.
    pub alerts: Vec<(QueryId, Vec<Tuple>)>,
    /// Dynamic-refinement filter entries written at the boundary.
    pub filter_entries_written: usize,
    /// Simulated control-plane latency of the boundary update.
    pub update_latency: Duration,
    /// Whether plan divergence completed a sustained breach and fired
    /// the re-plan trigger ([`crate::drift::DriftMonitor`]).
    pub replan_triggered: bool,
    /// Wall-clock stage waterfall (all zeros when observability is
    /// disabled).
    pub latency: WindowLatency,
    /// Degradation marker: present iff faults were injected (or a
    /// degradation path fired) in this window. Always `None` when
    /// [`RuntimeConfig::faults`] is [`FaultPlan::none`].
    pub degraded: Option<DegradedWindow>,
    /// Per-query approximation guarantees, one entry per source query
    /// with at least one sketch-layout register this window. Always
    /// empty under [`StateLayout::Exact`] (the default), which keeps
    /// exact runs byte-identical to pre-sketch builds.
    pub error_bounds: Vec<ErrorBoundReport>,
}

/// Folded approximation guarantee for one query's window results.
///
/// Registers report per-task [`sonata_pisa::SketchBound`]s in the
/// window dump; the collector folds them per *source* query (and the
/// fabric folds again across switches): ε and δ are component-wise
/// maxima — a merged sketch of the union stream keeps each side's
/// relative guarantee — while mass and update counts add and
/// saturation ORs.
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorBoundReport {
    /// Source query the guarantee covers.
    pub query: QueryId,
    /// Layout of the loosest (max-ε) contributing register.
    pub layout: StateLayout,
    /// Relative error vs the window's L1 update mass: for count-min,
    /// every reported aggregate overestimates the true value by at
    /// most `⌈epsilon × mass⌉` with probability ≥ 1 − `delta`.
    pub epsilon: f64,
    /// Failure probability of the `epsilon` guarantee (0 for Bloom
    /// admission, where false negatives are impossible).
    pub delta: f64,
    /// Total L1 update mass over contributing registers.
    pub mass: u64,
    /// Updates applied (distinct first-touch keys for Bloom).
    pub updates: u64,
    /// Some contributing register exceeded its design capacity — the
    /// declared ε no longer holds and the planner should resize.
    pub saturated: bool,
}

/// Fold per-register sketch bounds into per-query reports, sorted by
/// query id. Empty input (every register exact) yields an empty vec.
pub(crate) fn fold_error_bounds(bounds: &[sonata_pisa::SketchBound]) -> Vec<ErrorBoundReport> {
    let mut per_query: std::collections::BTreeMap<QueryId, ErrorBoundReport> =
        std::collections::BTreeMap::new();
    for b in bounds {
        let e = per_query
            .entry(b.task.query)
            .or_insert_with(|| ErrorBoundReport {
                query: b.task.query,
                layout: b.layout,
                epsilon: 0.0,
                delta: 0.0,
                mass: 0,
                updates: 0,
                saturated: false,
            });
        if b.epsilon > e.epsilon {
            e.epsilon = b.epsilon;
            e.layout = b.layout;
        }
        e.delta = e.delta.max(b.delta);
        e.mass += b.mass;
        e.updates += b.updates;
        e.saturated |= b.saturated;
    }
    per_query.into_values().collect()
}

/// Aggregated run results.
#[derive(Debug, Clone, Default)]
pub struct TelemetryReport {
    /// Per-window records.
    pub windows: Vec<WindowReport>,
    /// Metrics snapshot taken when the run finished (empty when the
    /// runtime's [`ObsHandle`] is disabled).
    pub metrics: MetricsSnapshot,
}

impl TelemetryReport {
    /// Total packets processed.
    pub fn total_packets(&self) -> u64 {
        self.windows.iter().map(|w| w.packets).sum()
    }

    /// Total tuples at the stream processor.
    pub fn total_tuples(&self) -> u64 {
        self.windows.iter().map(|w| w.tuples_to_sp).sum()
    }

    /// Total collision shunts across windows.
    pub fn total_shunts(&self) -> u64 {
        self.windows.iter().map(|w| w.shunts).sum()
    }

    /// Total tuples one source query (all its refinement levels)
    /// delivered to the stream processor.
    pub fn tuples_for(&self, query: QueryId) -> u64 {
        self.windows
            .iter()
            .flat_map(|w| &w.tuples_per_query)
            .filter(|(q, _)| *q == query)
            .map(|(_, n)| n)
            .sum()
    }

    /// All alerts for one query across windows: `(window, tuple)`.
    pub fn alerts_for(&self, query: QueryId) -> Vec<(u64, Tuple)> {
        let mut out = Vec::new();
        for w in &self.windows {
            for (q, tuples) in &w.alerts {
                if *q == query {
                    out.extend(tuples.iter().map(|t| (w.window, t.clone())));
                }
            }
        }
        out
    }

    /// The run's aggregate latency waterfall: per-stage sums across
    /// every window. Each field reconciles exactly with the `sum` of
    /// the matching `sonata_stage_ns{stage=...}` histogram in
    /// [`Self::metrics`] (per-window arrivals stay on the windows).
    pub fn window_latency(&self) -> WindowLatency {
        let mut total = WindowLatency::default();
        for w in &self.windows {
            total.packet_loop_ns += w.latency.packet_loop_ns;
            total.dump_encode_ns += w.latency.dump_encode_ns;
            total.transport_ns += w.latency.transport_ns;
            total.collector_drain_ns += w.latency.collector_drain_ns;
            total.shard_execute_ns += w.latency.shard_execute_ns;
            total.merge_ns += w.latency.merge_ns;
        }
        total
    }

    /// Total refinement-update latency.
    pub fn total_update_latency(&self) -> Duration {
        self.windows.iter().map(|w| w.update_latency).sum()
    }

    /// Windows that carry a degradation marker.
    pub fn degraded_windows(&self) -> usize {
        self.windows.iter().filter(|w| w.degraded.is_some()).count()
    }

    /// Per-kind injected-fault totals across every window.
    pub fn total_faults(&self) -> FaultRecord {
        let mut total = FaultRecord::default();
        for w in &self.windows {
            if let Some(d) = &w.degraded {
                total.merge(&d.injected);
            }
        }
        total
    }
}

/// Runtime failure.
#[derive(Debug)]
pub enum RuntimeError {
    /// Deployment failed.
    Deploy(DeployError),
    /// The program violates the switch constraints (planner bug).
    Load(sonata_pisa::ResourceError),
    /// A stream job failed.
    Stream(StreamError),
    /// A control update failed.
    Control(String),
    /// The switch↔collector transport failed.
    Net(NetError),
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::Deploy(e) => write!(f, "deploy: {e}"),
            RuntimeError::Load(e) => write!(f, "load: {e}"),
            RuntimeError::Stream(e) => write!(f, "stream: {e}"),
            RuntimeError::Control(e) => write!(f, "control: {e}"),
            RuntimeError::Net(e) => write!(f, "net: {e}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

impl From<DeployError> for RuntimeError {
    fn from(e: DeployError) -> Self {
        RuntimeError::Deploy(e)
    }
}

impl From<StreamError> for RuntimeError {
    fn from(e: StreamError) -> Self {
        RuntimeError::Stream(e)
    }
}

impl From<NetError> for RuntimeError {
    fn from(e: NetError) -> Self {
        RuntimeError::Net(e)
    }
}

/// The assembled system, split along the wire: the switch half and
/// the stream-processor half talk only through a [`Transport`] — the
/// same frame vocabulary whether the backend is the in-process
/// loopback or localhost TCP.
pub struct Runtime {
    sw: SwitchHalf,
    sp: SpHalf,
    cfg: RuntimeConfig,
    window_ms: u64,
    /// Closed replanning loop (`None` when [`RuntimeConfig::replan`]
    /// is disabled).
    replan: Option<ReplanState>,
}

/// The switch side of the wire: the PISA model, the control-plane
/// cost model, and the switch protocol endpoint (which owns the
/// egress report-fault seam).
struct SwitchHalf {
    switch: Switch,
    cost_model: UpdateCostModel,
    wire_mode: bool,
    /// Resolved batch-ingest decision: `IngestMode::Arena`, not wire
    /// mode, and not the reference path (those two exist to oracle
    /// per-packet execution).
    ingest_batch: bool,
    /// Window packet arena, rebuilt in place per window (allocations
    /// retained across windows).
    arena: PacketArena,
    /// Report arena filled by [`Switch::process_batch`], reused across
    /// windows.
    report_batch: ReportBatch,
    faults: FaultInjector,
    link: SwitchEndpoint,
    obs: ObsHandle,
}

/// The stream-processor side of the wire: emitter, sharded engine,
/// refinement feed-forward state, and the collector endpoint.
struct SpHalf {
    emitter: Emitter,
    engine: ShardedEngine,
    /// Safe single-mode engine the runtime falls back to when a job
    /// keeps crashing after a respawn-and-retry; kept registration-
    /// synchronised with the sharded engine. Only built when faults
    /// are enabled — the fault-free path never pays for it.
    fallback: Option<MicroBatchEngine>,
    faults: FaultInjector,
    instances: Vec<QueryInstance>,
    /// `(job of level ℓ, its dynfilter tables, out_col)` per chain
    /// link: output of job feeds the tables of the *next* level.
    feed_forward: Vec<FeedForward>,
    shunt_replan_fraction: f64,
    drift: DriftMonitor,
    link: CollectorEndpoint,
    obs: RuntimeObs,
}

/// Collector-side accumulator for one in-flight window's frames.
#[derive(Default)]
pub(crate) struct WindowRx {
    pub(crate) window: u64,
    /// Plan epoch stamped on the window's frames (read off the wire
    /// header at `WindowOpen`/`WindowClose`).
    pub(crate) epoch: u64,
    pub(crate) packets: u64,
    pub(crate) opened: bool,
    pub(crate) shunts: u64,
    /// Shunts by the *task* (per-level job) that emitted them; folded
    /// to source queries at window completion.
    pub(crate) shunts_per_task: BTreeMap<QueryId, u64>,
    pub(crate) dump: Option<WindowDump>,
    pub(crate) closed: bool,
    /// Trace context of the last data frame — the switch's window
    /// root, propagated in-band; parents the collector-side spans.
    pub(crate) ctx: TraceContext,
    /// Switch-side stage waterfall carried on the `WindowClose` frame.
    pub(crate) packet_loop_ns: u64,
    pub(crate) dump_encode_ns: u64,
    pub(crate) transport_ns: u64,
    /// Collector-clock arrival of the close marker.
    pub(crate) close_ns: u64,
    /// Wall time the collector spent blocking on the close marker.
    pub(crate) collector_drain_ns: u64,
}

/// Everything the collector computed for a window between sending the
/// control batch and receiving the switch's ack.
struct PendingWindow {
    window: u64,
    epoch: u64,
    packets: u64,
    shunts: u64,
    tuples_to_sp: u64,
    tuples_per_query: Vec<(QueryId, u64)>,
    shunts_per_query: Vec<(QueryId, u64)>,
    alerts: Vec<(QueryId, Vec<Tuple>)>,
    worker_retries: u64,
    single_mode_fallbacks: u64,
    boundary_retries: u64,
    boundary_skipped: bool,
    boundary_backoff: Duration,
    latency: WindowLatency,
    error_bounds: Vec<ErrorBoundReport>,
}

/// Pre-resolved runtime-level metric handles: the per-window path only
/// touches atomics, never the registry lock.
pub(crate) struct RuntimeObs {
    pub(crate) handle: ObsHandle,
    pub(crate) windows: Counter,
    pub(crate) shunts: Counter,
    pub(crate) alerts: Counter,
    pub(crate) replans: Counter,
    pub(crate) swaps: Counter,
    pub(crate) filter_entries: Gauge,
    pub(crate) update_latency: Histogram,
    pub(crate) degraded_windows: Counter,
    /// One counter per [`FaultKind`], in [`FaultKind::ALL`] order —
    /// registered eagerly so every kind appears in snapshots (at zero)
    /// even on runs that never injected it.
    pub(crate) faults_injected: Vec<Counter>,
}

impl RuntimeObs {
    pub(crate) fn new(handle: &ObsHandle) -> Self {
        RuntimeObs {
            handle: handle.clone(),
            windows: handle.counter("sonata_runtime_windows_total", &[]),
            shunts: handle.counter("sonata_runtime_shunts_total", &[]),
            alerts: handle.counter("sonata_runtime_alerts_total", &[]),
            replans: handle.counter("sonata_runtime_replans_total", &[]),
            swaps: handle.counter("sonata_runtime_plan_swaps_total", &[]),
            filter_entries: handle.gauge("sonata_runtime_filter_entries", &[]),
            update_latency: handle.histogram("sonata_runtime_update_latency_ns", &[]),
            degraded_windows: handle.counter("sonata_degraded_windows", &[]),
            faults_injected: FaultKind::ALL
                .iter()
                .map(|k| handle.counter("sonata_faults_injected", &[("kind", k.name())]))
                .collect(),
        }
    }
}

/// Live state of the closed replanning loop: the re-solver with its
/// observation ring, the currently committed plan (warm-start base for
/// the next re-solve), and the in-flight planner thread, if any.
/// Shared by [`Runtime`] and [`crate::fabric::Fabric`].
pub(crate) struct ReplanState {
    pub(crate) replanner: Replanner,
    pub(crate) committed: GlobalPlan,
    swap_delay: u64,
    use_ilp: bool,
    delta: Option<usize>,
    pending: Option<PendingReplan>,
}

/// A re-solve in flight on its planner thread, due to be joined and
/// swapped in at `due_window`'s boundary.
struct PendingReplan {
    due_window: u64,
    handle: std::thread::JoinHandle<Result<(ReplanOutcome, u64), String>>,
}

impl ReplanState {
    pub(crate) fn from_config(cfg: &ReplanConfig, plan: &GlobalPlan) -> Option<Self> {
        cfg.replanner.clone().map(|replanner| ReplanState {
            replanner,
            committed: plan.clone(),
            swap_delay: cfg.swap_delay.max(1),
            use_ilp: cfg.use_ilp,
            delta: cfg.delta,
            pending: None,
        })
    }

    /// Feed one completed window into the observation ring and, on a
    /// fired trigger, enqueue the incremental re-solve on a planner
    /// thread — the window path never blocks on the solver. At most
    /// one re-solve is in flight: a trigger landing while one is
    /// pending is already answered by it.
    pub(crate) fn note_window(&mut self, report: &WindowReport) {
        // Observe the per-query *channel* load — batch tuples plus
        // collision shunts — since that is what the cost model's
        // per-branch `n` predicts. A drift that shows up purely as
        // register pressure (a flash crowd colliding in a
        // distinct-count register) would be invisible to the re-cost
        // if only post-merge batch tuples were fed back.
        let mut loads: BTreeMap<QueryId, u64> = report.tuples_per_query.iter().copied().collect();
        for (q, n) in &report.shunts_per_query {
            *loads.entry(*q).or_default() += n;
        }
        let loads: Vec<(QueryId, u64)> = loads.into_iter().collect();
        self.replanner.observe_window(&loads);
        if report.replan_triggered && self.pending.is_none() {
            let replanner = self.replanner.clone();
            let committed = self.committed.clone();
            let use_ilp = self.use_ilp;
            let delta = self.delta;
            let handle = std::thread::spawn(move || {
                let started = std::time::Instant::now();
                let out = if use_ilp {
                    replanner
                        .replan_ilp(&committed, &SolveOptions::default(), delta)
                        .map_err(|e| e.to_string())
                } else {
                    replanner.replan(&committed).map_err(|e| e.to_string())
                };
                out.map(|o| (o, started.elapsed().as_nanos() as u64))
            });
            self.pending = Some(PendingReplan {
                due_window: report.window + self.swap_delay,
                handle,
            });
        }
    }

    /// At the boundary *before* `window` opens: join the planner
    /// thread once its due window arrived and hand back the outcome
    /// (with the solve wall time) to swap in. `None` when nothing is
    /// due, or when the re-solve failed — the committed plan simply
    /// stays in force.
    pub(crate) fn take_due(&mut self, window: u64) -> Option<(ReplanOutcome, u64)> {
        if self.pending.as_ref().is_none_or(|p| window < p.due_window) {
            return None;
        }
        let pending = self.pending.take().expect("checked above");
        match pending.handle.join() {
            Ok(Ok(res)) => Some(res),
            _ => None,
        }
    }
}

pub(crate) struct FeedForward {
    /// The producing (coarser) job.
    pub(crate) from_job: QueryId,
    /// Key column in the producer's output.
    pub(crate) out_col: sonata_query::ColName,
    /// Dynamic filter tables of the consuming (finer) level.
    pub(crate) tables: Vec<String>,
    /// The consuming job, when some of its branches run their dynamic
    /// filter at the stream processor (partition 0): the runtime
    /// rewrites the registered query's `InSet` each window.
    pub(crate) sp_job: Option<QueryId>,
    /// Branches needing the SP-side rewrite.
    pub(crate) sp_branches: Vec<u8>,
}

/// Extract the refinement-key set a coarse level feeds forward.
///
/// Join-free queries feed their final output keys. For join queries
/// the paper says "their [the sub-queries'] output at coarser levels
/// determines which portion of traffic to process" (Section 4.1): we
/// feed the final (post-join) output **plus** the output of any branch
/// that is itself a thresholded aggregation — e.g. Query 3's counting
/// sub-query, whose coarse output must steer the zoom-in even before
/// the payload keyword (which only the joined output sees) appears.
fn refinement_keys(
    result: &sonata_stream::JobResult,
    inst: &QueryInstance,
    out_col: &sonata_query::ColName,
) -> BTreeSet<Value> {
    let level = inst.level;
    let field_col = inst
        .refined
        .refinement
        .as_ref()
        .map(|h| h.field.name())
        .unwrap_or("");
    let mut keys: BTreeSet<Value> = BTreeSet::new();
    // Final output keys.
    if let Ok(schema) = inst.refined.output_schema() {
        let idx = schema.index_of(out_col).unwrap_or(0);
        keys.extend(
            result
                .output
                .iter()
                .map(|t| t.get(idx).mask_to_level(level)),
        );
    }
    // Self-thresholded branches contribute their own signal — but
    // only when the joined output hinges on a content predicate the
    // coarse level cannot wait for (Query 3's "zorro" keyword). For
    // arithmetic post-join thresholds (SYN−ACK difference, conns/KB)
    // the trained relaxed thresholds make the final output the
    // faithful coarse signal (Section 4.1's Slowloris argument).
    let post_confirms = inst
        .refined
        .join
        .as_ref()
        .map(|j| j.post.has_content_predicate())
        .unwrap_or(false);
    let branch_thresholded = |b: usize| -> bool {
        if !post_confirms {
            return false;
        }
        if b == 0 {
            inst.refined.pipeline.ends_with_threshold_filter()
        } else {
            inst.refined
                .join
                .as_ref()
                .map(|j| j.right.ends_with_threshold_filter())
                .unwrap_or(false)
        }
    };
    for (b, (schema, tuples)) in result.branch_outputs.iter().enumerate() {
        if !branch_thresholded(b) {
            continue;
        }
        let Some(idx) = schema
            .index_of(out_col)
            .or_else(|| schema.index_of(field_col))
        else {
            continue;
        };
        keys.extend(tuples.iter().map(|t| t.get(idx).mask_to_level(level)));
    }
    keys
}

/// Replace the entries of the first `InSet` filter in a branch of a
/// refined query (the SP-side analogue of a dynamic filter table
/// update).
fn rewrite_inset(q: &mut sonata_query::Query, branch: u8, set: std::collections::BTreeSet<Value>) {
    use sonata_query::expr::Pred;
    use sonata_query::Operator;
    let pipeline = match branch {
        0 => &mut q.pipeline,
        _ => match &mut q.join {
            Some(j) => &mut j.right,
            None => return,
        },
    };
    for op in &mut pipeline.ops {
        if let Operator::Filter(Pred::InSet { set: s, .. }) = op {
            *s = std::sync::Arc::new(set);
            return;
        }
    }
}

/// Resolve the refinement feed-forward links of a deployed plan: for
/// each instance with a chain predecessor, the predecessor's job and
/// the instance's dynamic-filter tables (or SP-side branches when the
/// filter runs at the stream processor). Shared by [`Runtime`] and the
/// multi-switch [`crate::fabric::Fabric`].
pub(crate) fn build_feed_forward(
    deployments: &[Deployment],
    instances: &[QueryInstance],
) -> Vec<FeedForward> {
    let mut feed_forward = Vec::new();
    for inst in instances {
        let Some(prev_level) = inst.prev else {
            continue;
        };
        let from = instances
            .iter()
            .find(|i| i.source == inst.source && i.level == prev_level)
            .expect("chain predecessor deployed");
        let mut tables = Vec::new();
        let mut sp_branches = Vec::new();
        for d in deployments
            .iter()
            .filter(|d| d.task.query == inst.source && d.task.level == inst.level)
        {
            match &d.dynfilter_table {
                Some(t) => tables.push(t.clone()),
                // Partition 0: the dynamic filter op runs at the
                // stream processor and must be rewritten there.
                None => sp_branches.push(d.branch),
            }
        }
        let out_col = from
            .out_col
            .clone()
            .expect("refinable query has an out column");
        feed_forward.push(FeedForward {
            from_job: from.job,
            out_col,
            tables,
            sp_job: (!sp_branches.is_empty()).then_some(inst.job),
            sp_branches,
        });
    }
    feed_forward
}

/// Attribute a window's batch tuples to their *source* queries (all
/// refinement levels of one query fold into its entry).
pub(crate) fn attribute_tuples(
    instances: &[QueryInstance],
    batches: &[(QueryId, WindowBatch)],
) -> BTreeMap<QueryId, u64> {
    let mut tuples_per_query: BTreeMap<QueryId, u64> = BTreeMap::new();
    for (job, batch) in batches {
        let source = instances
            .iter()
            .find(|i| i.job == *job)
            .map(|i| i.source)
            .unwrap_or(*job);
        *tuples_per_query.entry(source).or_default() += batch.tuple_count() as u64;
    }
    tuples_per_query
}

/// Attribute a window's collision shunts (counted per emitting task
/// job) to their *source* queries, mirroring [`attribute_tuples`].
pub(crate) fn attribute_shunts(
    instances: &[QueryInstance],
    shunts_per_task: &BTreeMap<QueryId, u64>,
) -> BTreeMap<QueryId, u64> {
    let mut shunts_per_query: BTreeMap<QueryId, u64> = BTreeMap::new();
    for (job, n) in shunts_per_task {
        let source = instances
            .iter()
            .find(|i| i.job == *job)
            .map(|i| i.source)
            .unwrap_or(*job);
        *shunts_per_query.entry(source).or_default() += n;
    }
    shunts_per_query
}

/// Collect finest-level job outputs as user-facing alerts, in query
/// order.
pub(crate) fn collect_alerts(
    instances: &[QueryInstance],
    outputs: &HashMap<QueryId, sonata_stream::JobResult>,
) -> BTreeMap<QueryId, Vec<Tuple>> {
    let mut alerts: BTreeMap<QueryId, Vec<Tuple>> = BTreeMap::new();
    for inst in instances {
        if inst.is_finest {
            let out = outputs
                .get(&inst.job)
                .map(|r| r.output.clone())
                .unwrap_or_default();
            if !out.is_empty() {
                alerts.entry(inst.source).or_default().extend(out);
            }
        }
    }
    alerts
}

/// Dynamic refinement: turn level-r outputs into the control ops that
/// install level-r+1 dynamic filters for the next window, rewriting
/// SP-side `InSet` branches in place. `reregister` is called with each
/// rewritten refined query so the caller can update whichever
/// engine(s) own the job.
pub(crate) fn feed_forward_control(
    feed_forward: &[FeedForward],
    instances: &mut [QueryInstance],
    outputs: &HashMap<QueryId, sonata_stream::JobResult>,
    mut reregister: impl FnMut(&sonata_query::Query),
) -> Vec<ControlOp> {
    let mut control_ops = Vec::new();
    for link in feed_forward {
        let keys: BTreeSet<Value> = outputs
            .get(&link.from_job)
            .map(|result| {
                let inst = instances
                    .iter()
                    .find(|i| i.job == link.from_job)
                    .expect("producer instance");
                refinement_keys(result, inst, &link.out_col)
            })
            .unwrap_or_default();
        // Switch filter tables hold fixed-width scalars; textual
        // keys (DNS names) can only gate at the stream processor,
        // and the compiler never places their filters on the
        // switch in the first place.
        let scalar: BTreeSet<u64> = keys.iter().filter_map(Value::as_u64).collect();
        for table in &link.tables {
            control_ops.push(ControlOp::SetDynFilter {
                table: table.clone(),
                entries: scalar.clone(),
            });
        }
        if let Some(job) = link.sp_job {
            if let Some(inst) = instances.iter_mut().find(|i| i.job == job) {
                for &b in &link.sp_branches {
                    rewrite_inset(&mut inst.refined, b, keys.clone());
                }
                reregister(&inst.refined);
            }
        }
    }
    control_ops
}

/// Boundary-write retry loop under injected write failures: returns
/// `(retries, simulated backoff, skipped)`. On exhaustion the caller
/// sends only the trailing `ResetRegisters` op and marks the window
/// degraded instead of failing the run.
pub(crate) fn boundary_backoff_loop(faults: &FaultInjector) -> (u64, Duration, bool) {
    let mut boundary_retries = 0u64;
    let mut boundary_backoff = Duration::ZERO;
    let mut boundary_skipped = false;
    while faults.boundary_write_fails() {
        boundary_retries += 1;
        if boundary_retries >= MAX_BOUNDARY_ATTEMPTS {
            boundary_skipped = true;
            break;
        }
        boundary_backoff += Duration::from_millis(1 << (boundary_retries - 1));
    }
    (boundary_retries, boundary_backoff, boundary_skipped)
}

/// Submit one job through the worker-crash recovery ladder: respawn
/// the dead worker and retry once; if the job crashes again, respawn
/// and run it on the safe single-mode fallback engine (which carries
/// no injector and therefore cannot crash). Non-crash errors propagate
/// unchanged.
pub(crate) fn submit_with_recovery(
    engine: &mut ShardedEngine,
    mut fallback: Option<&mut MicroBatchEngine>,
    job: QueryId,
    batch: WindowBatch,
    retries: &mut u64,
    fallbacks: &mut u64,
) -> Result<sonata_stream::JobResult, RuntimeError> {
    match engine.submit(job, &batch) {
        Ok(r) => Ok(r),
        Err(StreamError::Panic(_)) => {
            engine.recover_workers();
            *retries += 1;
            match engine.submit(job, &batch) {
                Ok(r) => Ok(r),
                Err(StreamError::Panic(_)) => {
                    engine.recover_workers();
                    *fallbacks += 1;
                    let fallback = fallback
                        .as_mut()
                        .expect("fallback engine exists when faults are enabled");
                    Ok(fallback.submit_owned(job, batch)?)
                }
                Err(e) => Err(e.into()),
            }
        }
        Err(e) => Err(e.into()),
    }
}

impl Runtime {
    /// Deploy a plan and assemble the runtime.
    pub fn new(plan: &GlobalPlan, cfg: RuntimeConfig) -> Result<Self, RuntimeError> {
        let DeployedPlan {
            program,
            deployments,
            instances,
        } = deploy(plan)?;
        let faults = FaultInjector::from_plan(&cfg.faults);
        let mut switch = Switch::load_with_sketch(program, &cfg.constraints, &cfg.obs, cfg.sketch)
            .map_err(RuntimeError::Load)?;
        switch.set_force_reference(cfg.force_reference_path);
        let emitter = Emitter::with_faults(&deployments, &faults);
        let mut engine =
            ShardedEngine::with_config(cfg.workers, &cfg.obs, &faults, cfg.force_reference_path);
        for inst in &instances {
            engine.register(inst.refined.clone());
        }
        let fallback = faults.is_enabled().then(|| {
            let mut eng = MicroBatchEngine::new();
            eng.set_force_reference(cfg.force_reference_path);
            for inst in &instances {
                eng.register(inst.refined.clone());
            }
            eng
        });
        // Chain links: for each instance with a predecessor, find the
        // predecessor's job and this instance's dynamic filter tables.
        let feed_forward = build_feed_forward(&deployments, &instances);
        let window_ms = cfg
            .window_ms
            .or_else(|| instances.first().map(|i| i.refined.window_ms))
            .unwrap_or(3_000);
        let obs = RuntimeObs::new(&cfg.obs);
        // Assemble the wire: both ends share one metric family, and
        // both sides derive the same plan digest, which the collector
        // re-verifies on every (re)connect.
        let metrics = NetMetrics::new(&cfg.obs);
        let digest = plan_digest(&deployments);
        let (sw_t, sp_t): (Box<dyn Transport>, Box<dyn Transport>) = match cfg.transport {
            TransportKind::Loopback => {
                let (a, b) = loopback_pair(DEFAULT_CAPACITY, &metrics);
                (Box::new(a), Box::new(b))
            }
            TransportKind::Tcp => {
                let (client, collector) = tcp_pair(&metrics, TcpOptions::default())?;
                (Box::new(client), Box::new(collector))
            }
        };
        let sw_link = SwitchEndpoint::new(
            sw_t,
            faults.clone(),
            metrics.clone(),
            "switch-0",
            digest,
            plan.epoch,
        )?;
        let sp_link = CollectorEndpoint::new(sp_t, metrics, digest, plan.epoch);
        let replan = ReplanState::from_config(&cfg.replan, plan);
        Ok(Runtime {
            sw: SwitchHalf {
                switch,
                cost_model: cfg.cost_model,
                wire_mode: cfg.wire_mode,
                ingest_batch: cfg.ingest == IngestMode::Arena
                    && !cfg.wire_mode
                    && !cfg.force_reference_path,
                arena: PacketArena::new(),
                report_batch: ReportBatch::new(),
                faults: faults.clone(),
                link: sw_link,
                obs: cfg.obs.clone(),
            },
            sp: SpHalf {
                emitter,
                engine,
                fallback,
                faults,
                instances,
                feed_forward,
                shunt_replan_fraction: cfg.shunt_replan_fraction,
                drift: DriftMonitor::new(plan.budget(), cfg.drift.clone(), &cfg.obs),
                link: sp_link,
                obs,
            },
            cfg,
            window_ms,
            replan,
        })
    }

    /// The deployed stream-job instances.
    pub fn instances(&self) -> &[QueryInstance] {
        &self.sp.instances
    }

    /// Access the underlying switch (counters, diagnostics).
    pub fn switch(&self) -> &Switch {
        &self.sw.switch
    }

    /// The window size in effect.
    pub fn window_ms(&self) -> u64 {
        self.window_ms
    }

    /// Epoch of the currently committed plan (0 until the first swap,
    /// when the initial plan was epoch 0).
    pub fn epoch(&self) -> u64 {
        self.sp.link.epoch()
    }

    /// The observability handle this runtime reports into (the one
    /// from [`RuntimeConfig::obs`]): use it to export events and
    /// traces after a run.
    pub fn obs(&self) -> &ObsHandle {
        &self.cfg.obs
    }

    /// The fault injector built from [`RuntimeConfig::faults`]
    /// (disabled for an empty plan). Exposes run-total injected-fault
    /// counts via [`FaultInjector::totals`].
    pub fn faults(&self) -> &FaultInjector {
        &self.sw.faults
    }

    /// Run a whole trace through the system.
    pub fn process_trace(&mut self, trace: &Trace) -> Result<TelemetryReport, RuntimeError> {
        let mut report = TelemetryReport::default();
        // Materialize window slices up front (cheap: borrows).
        let windows: Vec<(u64, &[Packet])> = trace.windows(self.window_ms).collect();
        for (w, packets) in windows {
            report.windows.push(self.process_window(w, packets)?);
        }
        report.metrics = self.cfg.obs.snapshot();
        Ok(report)
    }

    /// Run a whole trace with the switch half on its own thread,
    /// talking to the collector (this thread) purely over the
    /// transport — the deployment topology of [`TransportKind::Tcp`].
    /// The window-lockstep credit protocol bounds switch run-ahead to
    /// one window, so results are bit-identical to
    /// [`Self::process_trace`].
    pub fn process_trace_threaded(
        &mut self,
        trace: &Trace,
    ) -> Result<TelemetryReport, RuntimeError> {
        let windows: Vec<(u64, &[Packet])> = trace.windows(self.window_ms).collect();
        let count = windows.len();
        let sw = &mut self.sw;
        let sp = &mut self.sp;
        let mut report = TelemetryReport::default();
        let sp_result: Result<(), RuntimeError> = std::thread::scope(|scope| {
            let switch_loop = scope.spawn(move || -> Result<(), RuntimeError> {
                for (w, packets) in windows {
                    sw.faults.begin_window(w);
                    // Root one trace per (window, switch); every frame
                    // of the window carries it in-band.
                    let root = sw.obs.root_span(w, 0, "switch-0");
                    sw.link.set_ctx(root.ctx());
                    sw.link.open_window(w, packets.len() as u64)?;
                    let packet_loop_ns;
                    {
                        let t = sw
                            .obs
                            .trace_span(Stage::PacketLoop, w, root.ctx(), "switch-0");
                        if sw.ingest_batch {
                            sw.feed_batch(packets);
                            for i in 0..packets.len() {
                                sw.ship_batch(i)?;
                            }
                        } else {
                            for pkt in packets {
                                sw.feed(pkt)?;
                            }
                        }
                        packet_loop_ns = t.finish();
                    }
                    sw.finish(w, packet_loop_ns, root.ctx())?;
                    sw.serve_control()?;
                    sw.await_credit()?;
                }
                Ok(())
            });
            let mut sp_err = None;
            for _ in 0..count {
                match sp.run_window() {
                    Ok(w) => report.windows.push(w),
                    Err(e) => {
                        sp_err = Some(e);
                        break;
                    }
                }
            }
            match switch_loop.join() {
                Ok(Ok(())) => {}
                Ok(Err(e)) => return Err(e),
                Err(_) => return Err(RuntimeError::Control("switch thread panicked".into())),
            }
            match sp_err {
                Some(e) => Err(e),
                None => Ok(()),
            }
        });
        sp_result?;
        report.metrics = self.cfg.obs.snapshot();
        Ok(report)
    }

    /// Run one window of packets and close it, interleaving both
    /// halves on this thread. Frames are pumped from the collector
    /// after every packet, so bounded queues and socket buffers never
    /// fill without a consumer, whichever backend carries them.
    pub fn process_window(
        &mut self,
        window: u64,
        packets: &[Packet],
    ) -> Result<WindowReport, RuntimeError> {
        // Boundary poll of the replanning loop: if a re-solve is due,
        // join its planner thread and swap the epoch-bumped plan in
        // *before* the window opens — the swap is atomic at the
        // boundary, so no window ever executes under a torn plan.
        self.poll_replan(window)?;
        // Fault decisions are keyed on the window index: reset the
        // injector's per-window attempt counters and egress sequence.
        self.sw.faults.begin_window(window);
        // Root one trace per (window, switch); the endpoint stamps it
        // onto every frame header, so the collector's spans stitch
        // under the same trace id even across a real socket.
        let root = self.sw.obs.root_span(window, 0, "switch-0");
        self.sw.link.set_ctx(root.ctx());
        self.sw.link.open_window(window, packets.len() as u64)?;
        let mut rx = WindowRx::default();
        // Data plane.
        let packet_loop_ns;
        {
            let t = self
                .sw
                .obs
                .trace_span(Stage::PacketLoop, window, root.ctx(), "switch-0");
            if self.sw.ingest_batch {
                self.sw.feed_batch(packets);
                for i in 0..packets.len() {
                    self.sw.ship_batch(i)?;
                    self.sp.pump(&mut rx)?;
                }
            } else {
                for pkt in packets {
                    self.sw.feed(pkt)?;
                    self.sp.pump(&mut rx)?;
                }
            }
            packet_loop_ns = t.finish();
        }
        // Window boundary: poll registers, then reset; the emitter's
        // local store merges shunts into raw dumps and thresholds.
        self.sw.finish(window, packet_loop_ns, root.ctx())?;
        self.sp.drain_to_close(&mut rx)?;
        let pending = self.sp.close_window(rx)?;
        self.sw.serve_control()?;
        let report = self.sp.complete_window(pending)?;
        if let Some(rs) = &mut self.replan {
            rs.note_window(&report);
        }
        self.sw.await_credit()?;
        Ok(report)
    }

    /// Join a due re-solve and swap it in at the boundary before
    /// `window` opens. No-op when the loop is disabled, nothing is
    /// due, or the re-solve failed (the committed plan stays).
    fn poll_replan(&mut self, window: u64) -> Result<(), RuntimeError> {
        let Some((outcome, solve_wall_ns)) =
            self.replan.as_mut().and_then(|rs| rs.take_due(window))
        else {
            return Ok(());
        };
        self.apply_swap(window, outcome, solve_wall_ns)
    }

    /// Swap a re-solved plan in at a window boundary: redeploy both
    /// halves, commit the epoch on the collector *first* (so the
    /// switch's fresh `Hello` — and every later frame — is judged
    /// against the new plan), and re-base the drift monitor on the new
    /// budget. `window` is the first window to execute under the new
    /// plan.
    fn apply_swap(
        &mut self,
        window: u64,
        outcome: ReplanOutcome,
        solve_wall_ns: u64,
    ) -> Result<(), RuntimeError> {
        let warm = outcome.solution.as_ref().map(|s| s.warm).unwrap_or(false);
        let plan = outcome.plan;
        let DeployedPlan {
            program,
            deployments,
            instances,
        } = deploy(&plan)?;
        let mut switch = Switch::load_with_sketch(
            program,
            &self.cfg.constraints,
            &self.cfg.obs,
            self.cfg.sketch,
        )
        .map_err(RuntimeError::Load)?;
        switch.set_force_reference(self.cfg.force_reference_path);
        self.sw.switch = switch;
        self.sp.emitter = Emitter::with_faults(&deployments, &self.sp.faults);
        let mut engine = ShardedEngine::with_config(
            self.cfg.workers,
            &self.cfg.obs,
            &self.sp.faults,
            self.cfg.force_reference_path,
        );
        for inst in &instances {
            engine.register(inst.refined.clone());
        }
        self.sp.engine = engine;
        if let Some(fb) = &mut self.sp.fallback {
            let mut eng = MicroBatchEngine::new();
            eng.set_force_reference(self.cfg.force_reference_path);
            for inst in &instances {
                eng.register(inst.refined.clone());
            }
            *fb = eng;
        }
        self.sp.feed_forward = build_feed_forward(&deployments, &instances);
        self.sp.instances = instances;
        let digest = plan_digest(&deployments);
        self.sp.link.set_plan(digest, plan.epoch);
        self.sw.link.set_plan(digest, plan.epoch)?;
        self.sp.drift.rebase(plan.budget());
        self.sp.obs.swaps.inc();
        self.sp.obs.handle.event(EventKind::PlanSwap {
            window,
            epoch: plan.epoch,
            plan_digest: digest,
            warm,
            solve_wall_ns,
        });
        if let Some(rs) = &mut self.replan {
            rs.committed = plan;
        }
        Ok(())
    }
}

impl SwitchHalf {
    /// Push one packet through the pipeline and ship its mirrored
    /// reports (through the egress fault seam) onto the wire.
    fn feed(&mut self, pkt: &Packet) -> Result<(), RuntimeError> {
        let reports = if self.wire_mode {
            self.switch.process_bytes(&pkt.encode(), pkt.ts_nanos)
        } else {
            self.switch.process(pkt)
        };
        self.link.send_packet_reports(reports)?;
        Ok(())
    }

    /// Batch ingest: lay the window's packets out in the contiguous
    /// arena (in place, allocations retained) and execute the whole
    /// batch through the compiled plan. Ship with [`Self::ship_batch`]
    /// once per packet index, in order — the egress fault seam
    /// measures delay verdicts in packets.
    fn feed_batch(&mut self, packets: &[Packet]) {
        self.arena.rebuild_from_packets(packets);
        self.switch
            .process_batch(&self.arena.batch(), &mut self.report_batch);
    }

    /// Ship batch packet `i`'s reports — borrowed slices straight from
    /// the report arena on fault-free windows.
    fn ship_batch(&mut self, i: usize) -> Result<(), RuntimeError> {
        self.link
            .send_packet_reports_ref(&self.report_batch, i, self.arena.batch())?;
        Ok(())
    }

    /// Dump and reset the registers, ship the dump, then close the
    /// window on the wire (late-delayed reports are dropped and
    /// counted here). The dump-encode and transport stage timings —
    /// plus the caller's packet-loop timing — ride the `WindowClose`
    /// frame in-band, INT-style, so the collector builds the window's
    /// latency waterfall without a clock shared across the wire.
    fn finish(
        &mut self,
        window: u64,
        packet_loop_ns: u64,
        parent: TraceContext,
    ) -> Result<(), RuntimeError> {
        let t = self
            .obs
            .trace_span(Stage::WindowDump, window, parent, "switch-0");
        let dump = self.switch.end_window();
        let dump_ns = t.finish();
        let t = self
            .obs
            .trace_span(Stage::Transport, window, parent, "switch-0");
        self.link.send_dump(window, dump)?;
        let transport_ns = t.finish();
        self.link
            .close_window(window, packet_loop_ns, dump_ns, transport_ns)?;
        Ok(())
    }

    /// Await the collector's control batch, apply it through the
    /// cost model, and acknowledge with the measured latency.
    fn serve_control(&mut self) -> Result<(), RuntimeError> {
        let (window, ops) = self.link.recv_control()?;
        let applied = self
            .cost_model
            .apply(&mut self.switch, &ops)
            .map_err(RuntimeError::Control)?;
        self.link.send_ack(
            window,
            applied.entries_written as u64,
            applied.latency.as_nanos() as u64,
        )?;
        Ok(())
    }

    /// Block until the collector credits the next window.
    fn await_credit(&mut self) -> Result<(), RuntimeError> {
        self.link.recv_credit()?;
        Ok(())
    }
}

impl SpHalf {
    /// Fold one received frame into the window accumulator.
    fn handle_frame(&mut self, rx: &mut WindowRx, frame: Frame) -> Result<(), RuntimeError> {
        match frame {
            Frame::WindowOpen { window, packets } => {
                rx.window = window;
                rx.packets = packets;
                rx.opened = true;
                rx.ctx = self.link.last_ctx();
                rx.epoch = self.link.last_epoch();
                self.obs
                    .handle
                    .event(EventKind::WindowOpen { window, packets });
            }
            Frame::Report(r) => {
                if r.kind == sonata_pisa::ReportKind::Shunt {
                    rx.shunts += 1;
                    *rx.shunts_per_task.entry(r.task.query).or_default() += 1;
                }
                self.emitter.ingest(&r);
            }
            Frame::WindowDump { dump, .. } => rx.dump = Some(dump),
            Frame::WindowClose {
                packet_loop_ns,
                dump_ns,
                transport_ns,
                ..
            } => {
                rx.packet_loop_ns = packet_loop_ns;
                rx.dump_encode_ns = dump_ns;
                rx.transport_ns = transport_ns;
                rx.close_ns = self.obs.handle.now_ns();
                rx.ctx = self.link.last_ctx();
                rx.epoch = self.link.last_epoch();
                rx.closed = true;
            }
            _ => {
                return Err(RuntimeError::Net(NetError::Protocol(
                    "unexpected frame in window stream",
                )))
            }
        }
        Ok(())
    }

    /// Drain every frame already buffered, without blocking.
    fn pump(&mut self, rx: &mut WindowRx) -> Result<(), RuntimeError> {
        while let Some(frame) = self.link.try_recv_frame()? {
            self.handle_frame(rx, frame)?;
        }
        Ok(())
    }

    /// Block until the window's `WindowClose` marker arrives. The
    /// drain's wall time is reported as a `collector_drain` span after
    /// the fact — its parent context is only learned *from* the frames
    /// being drained.
    fn drain_to_close(&mut self, rx: &mut WindowRx) -> Result<(), RuntimeError> {
        let started = self.obs.handle.now_ns();
        while !rx.closed {
            let frame = self.link.recv_frame()?;
            self.handle_frame(rx, frame)?;
        }
        rx.collector_drain_ns = self.obs.handle.now_ns().saturating_sub(started);
        self.obs.handle.record_span(
            Stage::CollectorDrain,
            rx.window,
            rx.ctx,
            rx.collector_drain_ns,
            "collector",
        );
        Ok(())
    }

    /// One full collector-side window turn (the threaded driver's SP
    /// loop body): drain, close, control turn, report.
    fn run_window(&mut self) -> Result<WindowReport, RuntimeError> {
        let mut rx = WindowRx::default();
        self.drain_to_close(&mut rx)?;
        let pending = self.close_window(rx)?;
        self.complete_window(pending)
    }

    /// Close a fully received window: replay the dump into the
    /// emitter, run the stream jobs, compute refinement feed-forward,
    /// and send the control batch. Returns the pending state that
    /// [`Self::complete_window`] finalizes once the switch acks.
    fn close_window(&mut self, rx: WindowRx) -> Result<PendingWindow, RuntimeError> {
        debug_assert!(rx.opened && rx.closed, "window stream incomplete");
        let window = rx.window;
        // Control and credit frames sent back to the switch carry the
        // window's trace, closing the loop end-to-end.
        self.link.set_ctx(rx.ctx);
        let batches = {
            let _t = self
                .obs
                .handle
                .trace_span(Stage::EmitterReplay, window, rx.ctx, "collector");
            if let Some(dump) = &rx.dump {
                self.emitter.ingest_dump(dump);
            }
            self.emitter.close_window()?
        };
        let tuples_to_sp: u64 = batches.iter().map(|(_, b)| b.tuple_count() as u64).sum();
        let tuples_per_query = attribute_tuples(&self.instances, &batches);

        // Stream processing. With faults enabled a submit can fail
        // with an injected worker crash; instead of failing the window
        // the runtime degrades through a recovery ladder — respawn the
        // dead worker and retry once, then run the job on the safe
        // single-mode fallback engine.
        let mut worker_retries = 0u64;
        let mut single_mode_fallbacks = 0u64;
        let mut outputs: HashMap<QueryId, sonata_stream::JobResult> = HashMap::new();
        let shard_execute_ns;
        {
            let t = self
                .obs
                .handle
                .trace_span(Stage::ShardExecute, window, rx.ctx, "collector");
            for (job, batch) in batches {
                let result = if self.faults.is_enabled() {
                    self.submit_degraded(
                        job,
                        batch,
                        &mut worker_retries,
                        &mut single_mode_fallbacks,
                    )?
                } else {
                    self.engine.submit_owned(job, batch)?
                };
                outputs.insert(job, result);
            }
            shard_execute_ns = t.finish();
        }

        // Alerts: finest-level outputs, in query order.
        let alerts = collect_alerts(&self.instances, &outputs);

        // Dynamic refinement: feed level-r outputs into level-r+1
        // dynamic filters for the next window. Keep the crash-fallback
        // engine's view of rewritten queries in lockstep, or a
        // post-rewrite fallback would filter with a stale key set.
        let engine = &mut self.engine;
        let fallback = &mut self.fallback;
        let mut control_ops = feed_forward_control(
            &self.feed_forward,
            &mut self.instances,
            &outputs,
            |refined| {
                engine.register(refined.clone());
                if let Some(fb) = fallback {
                    fb.register(refined.clone());
                }
            },
        );
        control_ops.push(ControlOp::ResetRegisters);
        // Boundary update, degrading gracefully under injected write
        // failures: retry with simulated doubling backoff (added to
        // the window's update latency) up to MAX_BOUNDARY_ATTEMPTS;
        // on exhaustion skip the filter update for this window — the
        // registers are still reset so the next window starts clean —
        // and mark the window degraded instead of failing the run.
        let (boundary_retries, boundary_backoff, boundary_skipped);
        {
            let _t = self
                .obs
                .handle
                .trace_span(Stage::DynFilterWrite, window, rx.ctx, "collector");
            (boundary_retries, boundary_backoff, boundary_skipped) =
                boundary_backoff_loop(&self.faults);
            let ops: &[ControlOp] = if boundary_skipped {
                // ResetRegisters is the last op pushed above.
                &control_ops[control_ops.len() - 1..]
            } else {
                &control_ops
            };
            self.link.send_control(window, ops)?;
        }
        Ok(PendingWindow {
            window,
            epoch: rx.epoch,
            packets: rx.packets,
            shunts: rx.shunts,
            error_bounds: rx
                .dump
                .as_ref()
                .map(|d| fold_error_bounds(&d.bounds))
                .unwrap_or_default(),
            tuples_to_sp,
            tuples_per_query: tuples_per_query.into_iter().collect(),
            shunts_per_query: attribute_shunts(&self.instances, &rx.shunts_per_task)
                .into_iter()
                .collect(),
            alerts: alerts.into_iter().collect(),
            worker_retries,
            single_mode_fallbacks,
            boundary_retries,
            boundary_skipped,
            boundary_backoff,
            latency: WindowLatency {
                packet_loop_ns: rx.packet_loop_ns,
                dump_encode_ns: rx.dump_encode_ns,
                transport_ns: rx.transport_ns,
                collector_drain_ns: rx.collector_drain_ns,
                shard_execute_ns,
                merge_ns: 0,
                // Arrivals only when the clock ran: a disabled-obs
                // report stays bit-identical to `WindowLatency::default`.
                arrivals: if self.obs.handle.is_enabled() {
                    vec![SwitchArrival {
                        switch: 0,
                        close_ns: rx.close_ns,
                    }]
                } else {
                    Vec::new()
                },
            },
        })
    }

    /// Finalize a window once the switch acknowledged the control
    /// batch: fold metrics and events, build the degradation marker,
    /// and grant the credit for the next window.
    fn complete_window(&mut self, p: PendingWindow) -> Result<WindowReport, RuntimeError> {
        let (entries_written, latency_ns) = self.link.recv_ack()?;
        let update_latency = Duration::from_nanos(latency_ns) + p.boundary_backoff;

        // Reconcile the window against the plan's committed tuple
        // budget; the sustained-threshold rule decides re-planning.
        let drift = self.drift.observe(
            &p.tuples_per_query,
            p.packets,
            p.shunts,
            self.shunt_replan_fraction,
        );
        let replan_triggered = drift.replan;

        let alert_count: u64 = p.alerts.iter().map(|(_, t)| t.len() as u64).sum();
        self.obs.windows.inc();
        self.obs.shunts.add(p.shunts);
        self.obs.alerts.add(alert_count);
        self.obs.filter_entries.set(entries_written);
        self.obs
            .update_latency
            .observe(update_latency.as_nanos() as u64);
        if replan_triggered {
            self.obs.replans.inc();
            self.obs.handle.event(EventKind::ReplanTrigger {
                window: p.window,
                divergence: drift.divergence,
            });
        }
        self.obs.handle.event(EventKind::BoundaryUpdate {
            window: p.window,
            entries: entries_written,
            latency_ns: update_latency.as_nanos() as u64,
        });

        // Fault accounting: drain the injector's window record and
        // attach a degradation marker when anything fired.
        let degraded = if self.faults.is_enabled() {
            let injected = self.faults.take_window_record();
            let marker = DegradedWindow {
                injected,
                duplicates_suppressed: self.emitter.suppressed_last_window(),
                worker_retries: p.worker_retries,
                single_mode_fallbacks: p.single_mode_fallbacks,
                boundary_retries: p.boundary_retries,
                boundary_update_skipped: p.boundary_skipped,
                straggler_switches: 0,
            };
            if marker.is_clean() {
                None
            } else {
                for ((kind, n), counter) in injected.pairs().zip(&self.obs.faults_injected) {
                    if n > 0 {
                        counter.add(n);
                        self.obs.handle.event(EventKind::FaultInjected {
                            window: p.window,
                            kind: kind.name().to_string(),
                            count: n,
                        });
                    }
                }
                self.obs.degraded_windows.inc();
                self.obs.handle.event(EventKind::WindowDegraded {
                    window: p.window,
                    faults: injected.total(),
                });
                Some(marker)
            }
        } else {
            None
        };

        self.obs.handle.event(EventKind::WindowClose {
            window: p.window,
            tuples_to_sp: p.tuples_to_sp,
            shunts: p.shunts,
        });
        self.link.send_credit(p.window)?;

        Ok(WindowReport {
            window: p.window,
            epoch: p.epoch,
            packets: p.packets,
            tuples_to_sp: p.tuples_to_sp,
            shunts: p.shunts,
            tuples_per_query: p.tuples_per_query,
            shunts_per_query: p.shunts_per_query,
            alerts: p.alerts,
            filter_entries_written: entries_written as usize,
            update_latency,
            replan_triggered,
            latency: p.latency,
            degraded,
            error_bounds: p.error_bounds,
        })
    }

    /// Submit one job, degrading through the recovery ladder on an
    /// injected worker crash ([`submit_with_recovery`]).
    fn submit_degraded(
        &mut self,
        job: QueryId,
        batch: WindowBatch,
        retries: &mut u64,
        fallbacks: &mut u64,
    ) -> Result<sonata_stream::JobResult, RuntimeError> {
        submit_with_recovery(
            &mut self.engine,
            self.fallback.as_mut(),
            job,
            batch,
            retries,
            fallbacks,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sonata_packet::{PacketBuilder, TcpFlags};
    use sonata_planner::{plan_queries, PlanMode, PlannerConfig};
    use sonata_query::catalog::{self, Thresholds};
    use sonata_query::interpret::run_query;

    fn syn(src: u32, dst: u32, ts_ms: u64) -> Packet {
        PacketBuilder::tcp_raw(src, 9, dst, 80)
            .flags(TcpFlags::SYN)
            .ts_nanos(ts_ms * 1_000_000)
            .build()
    }

    /// Three identical windows with a heavy hitter and noise.
    fn trace(windows: u64) -> Trace {
        let mut pkts = Vec::new();
        for w in 0..windows {
            let base = w * 3_000;
            for i in 0..30u32 {
                pkts.push(syn(100 + i, 0x63070019, base + i as u64));
            }
            for host in 0..40u32 {
                pkts.push(syn(
                    7,
                    ((host % 20 + 1) << 24) | host,
                    base + 100 + host as u64,
                ));
            }
        }
        Trace::new(pkts)
    }

    fn plan_for(mode: PlanMode, queries: &[sonata_query::Query], tr: &Trace) -> GlobalPlan {
        let windows: Vec<&[Packet]> = tr.windows(3_000).map(|(_, p)| p).collect();
        let cfg = PlannerConfig {
            mode,
            cost: sonata_planner::costs::CostConfig {
                levels: Some(vec![8, 32]),
                ..Default::default()
            },
            ..Default::default()
        };
        plan_queries(queries, &windows, &cfg).unwrap()
    }

    fn q1() -> sonata_query::Query {
        catalog::newly_opened_tcp_conns(&Thresholds {
            new_tcp: 10,
            ..Thresholds::default()
        })
    }

    #[test]
    fn maxdp_alerts_match_reference_interpreter() {
        let tr = trace(2);
        let q = q1();
        let plan = plan_for(PlanMode::MaxDp, std::slice::from_ref(&q), &tr);
        let mut rt = Runtime::new(&plan, RuntimeConfig::default()).unwrap();
        let report = rt.process_trace(&tr).unwrap();
        assert_eq!(report.windows.len(), 2);
        for (w, packets) in tr.windows(3_000) {
            let expected = run_query(&q, packets).unwrap();
            let got: Vec<Tuple> = report.windows[w as usize]
                .alerts
                .iter()
                .filter(|(id, _)| *id == q.id)
                .flat_map(|(_, t)| t.clone())
                .collect();
            assert_eq!(got, expected, "window {w}");
        }
        // Max-DP on this workload: only the aggregated victims cross
        // the switch boundary.
        assert!(report.total_tuples() < 10, "{}", report.total_tuples());
    }

    #[test]
    fn allsp_alerts_match_reference_and_cost_more() {
        let tr = trace(2);
        let q = q1();
        let plan = plan_for(PlanMode::AllSp, std::slice::from_ref(&q), &tr);
        let mut rt = Runtime::new(&plan, RuntimeConfig::default()).unwrap();
        let report = rt.process_trace(&tr).unwrap();
        for (w, packets) in tr.windows(3_000) {
            let expected = run_query(&q, packets).unwrap();
            let got: Vec<Tuple> = report.windows[w as usize]
                .alerts
                .iter()
                .flat_map(|(_, t)| t.clone())
                .collect();
            assert_eq!(got, expected, "window {w}");
        }
        // Every packet crossed to the stream processor.
        assert_eq!(report.total_tuples(), report.total_packets());
    }

    #[test]
    fn sonata_refinement_detects_with_one_window_delay() {
        let tr = trace(3);
        let q = q1();
        let plan = plan_for(PlanMode::Sonata, std::slice::from_ref(&q), &tr);
        let chain: Vec<u8> = plan.queries[0].levels.iter().map(|l| l.level).collect();
        let mut rt = Runtime::new(&plan, RuntimeConfig::default()).unwrap();
        let report = rt.process_trace(&tr).unwrap();
        let alerts = report.alerts_for(q.id);
        if chain.len() == 1 {
            // No refinement chosen: alerts from window 0 onward.
            assert!(alerts.iter().any(|(w, _)| *w == 0));
        } else {
            // Refinement: the first window only identifies coarse
            // prefixes; the victim is confirmed from window 1 on.
            assert!(alerts.iter().all(|(w, _)| *w >= 1), "{alerts:?}");
            assert!(
                alerts
                    .iter()
                    .any(|(w, t)| *w == 1 && t.get(0) == &Value::U64(0x63070019)),
                "victim missing: {alerts:?}"
            );
            // Filter updates happened at boundaries.
            assert!(report.windows[0].filter_entries_written > 0);
            assert!(report.windows[0].update_latency > Duration::ZERO);
        }
        // Sonata sends far fewer tuples than packets.
        assert!(report.total_tuples() * 5 < report.total_packets());
    }

    #[test]
    fn join_query_runs_end_to_end() {
        let tr = trace(2);
        let q = catalog::tcp_syn_flood(&Thresholds {
            syn_flood: 10,
            ..Thresholds::default()
        });
        let plan = plan_for(PlanMode::MaxDp, std::slice::from_ref(&q), &tr);
        let mut rt = Runtime::new(&plan, RuntimeConfig::default()).unwrap();
        let report = rt.process_trace(&tr).unwrap();
        // Pure SYN trace: SYN−ACK difference flags the victim in
        // every window (reference semantics).
        for (w, packets) in tr.windows(3_000) {
            let expected = run_query(&q, packets).unwrap();
            let got: Vec<Tuple> = report.windows[w as usize]
                .alerts
                .iter()
                .flat_map(|(_, t)| t.clone())
                .collect();
            assert_eq!(got, expected, "window {w}");
        }
    }

    #[test]
    fn shunt_pressure_triggers_replan_flag() {
        // Deliberately tiny registers: slots=keys×headroom is bypassed
        // by shrinking the per-stage register budget so the planner
        // degrades... instead, force tiny registers via a small B.
        let tr = trace(1);
        let q = q1();
        let windows: Vec<&[Packet]> = tr.windows(3_000).map(|(_, p)| p).collect();
        let mut cfg = PlannerConfig {
            mode: PlanMode::MaxDp,
            cost: sonata_planner::costs::CostConfig {
                levels: Some(vec![32]),
                headroom: 0.02, // registers sized for ~2% of keys
                ..Default::default()
            },
            ..Default::default()
        };
        cfg.d = 1;
        let plan = plan_queries(&[q], &windows, &cfg).unwrap();
        let mut rt = Runtime::new(
            &plan,
            RuntimeConfig {
                shunt_replan_fraction: 0.01,
                // Single-window breach must fire: legacy trigger shape.
                drift: DriftConfig {
                    sustain: 1,
                    ..DriftConfig::default()
                },
                ..Default::default()
            },
        )
        .unwrap();
        let report = rt.process_trace(&tr).unwrap();
        assert!(report.windows[0].shunts > 0);
        assert!(report.windows[0].replan_triggered);
    }

    #[test]
    fn empty_trace_produces_empty_report() {
        let tr = trace(1);
        let plan = plan_for(PlanMode::MaxDp, &[q1()], &tr);
        let mut rt = Runtime::new(&plan, RuntimeConfig::default()).unwrap();
        let report = rt.process_trace(&Trace::new(Vec::new())).unwrap();
        assert!(report.windows.is_empty());
        assert_eq!(report.total_tuples(), 0);
        assert!(report.alerts_for(sonata_query::QueryId(1)).is_empty());
    }

    #[test]
    fn window_ms_override_changes_window_count() {
        let tr = trace(2); // 6 seconds of traffic
        let plan = plan_for(PlanMode::MaxDp, &[q1()], &tr);
        let mut rt = Runtime::new(
            &plan,
            RuntimeConfig {
                window_ms: Some(1_000),
                ..RuntimeConfig::default()
            },
        )
        .unwrap();
        assert_eq!(rt.window_ms(), 1_000);
        let report = rt.process_trace(&tr).unwrap();
        // trace(2) packs its packets into the first ~150 ms of each
        // 3-second burst: with W = 1 s only windows 0 and 3 are
        // non-empty, and they are reported under those indices.
        let idx: Vec<u64> = report.windows.iter().map(|w| w.window).collect();
        assert_eq!(idx, vec![0, 3]);
    }

    #[test]
    fn gap_windows_do_not_break_refinement() {
        // Traffic in windows 0 and 2, silence in window 1: the chain
        // survives the gap (the filter from window 0 persists).
        let victim = 0x63070019;
        let mut pkts = Vec::new();
        for w in [0u64, 2] {
            let base = w * 3_000;
            for i in 0..30u32 {
                pkts.push(syn(100 + i, victim, base + i as u64));
            }
            for host in 0..40u32 {
                pkts.push(syn(
                    7,
                    ((host % 20 + 1) << 24) | host,
                    base + 100 + host as u64,
                ));
            }
        }
        let tr = Trace::new(pkts);
        let q = q1();
        let windows: Vec<&[Packet]> = tr.windows(3_000).map(|(_, p)| p).collect();
        let cfg = PlannerConfig {
            mode: PlanMode::FixRef,
            cost: sonata_planner::costs::CostConfig {
                levels: Some(vec![8, 32]),
                ..Default::default()
            },
            ..PlannerConfig::default()
        };
        let plan = plan_queries(std::slice::from_ref(&q), &windows, &cfg).unwrap();
        let mut rt = Runtime::new(&plan, RuntimeConfig::default()).unwrap();
        let report = rt.process_trace(&tr).unwrap();
        // Windows 0 and 2 exist; the victim is confirmed in window 2
        // via the filter installed at the end of window 0.
        let alerts = report.alerts_for(q.id);
        assert!(
            alerts
                .iter()
                .any(|(w, t)| *w == 2 && t.get(0).as_u64() == Some(victim as u64)),
            "{alerts:?}"
        );
    }

    #[test]
    fn instances_and_switch_accessors() {
        let tr = trace(1);
        let plan = plan_for(PlanMode::Sonata, &[q1()], &tr);
        let mut rt = Runtime::new(&plan, RuntimeConfig::default()).unwrap();
        assert!(!rt.instances().is_empty());
        assert!(rt.instances().iter().any(|i| i.is_finest));
        rt.process_trace(&tr).unwrap();
        assert!(rt.switch().counters().packets_in > 0);
    }

    #[test]
    fn parallel_runtime_matches_single_threaded() {
        // The same plan and trace through 1-worker and 4-worker
        // runtimes must agree on every observable: alerts, tuple
        // counts, shunts, and refinement filter writes.
        let tr = trace(3);
        let queries = vec![
            q1(),
            catalog::tcp_syn_flood(&Thresholds {
                syn_flood: 10,
                ..Thresholds::default()
            }),
        ];
        let plan = plan_for(PlanMode::Sonata, &queries, &tr);
        let run = |workers: usize| {
            let mut rt = Runtime::new(
                &plan,
                RuntimeConfig {
                    workers,
                    ..RuntimeConfig::default()
                },
            )
            .unwrap();
            rt.process_trace(&tr).unwrap()
        };
        let serial = run(1);
        let parallel = run(4);
        assert_eq!(serial.windows.len(), parallel.windows.len());
        for (s, p) in serial.windows.iter().zip(&parallel.windows) {
            assert_eq!(s.alerts, p.alerts, "window {}", s.window);
            assert_eq!(s.tuples_to_sp, p.tuples_to_sp, "window {}", s.window);
            assert_eq!(s.shunts, p.shunts, "window {}", s.window);
            assert_eq!(
                s.filter_entries_written, p.filter_entries_written,
                "window {}",
                s.window
            );
            assert_eq!(
                s.replan_triggered, p.replan_triggered,
                "window {}",
                s.window
            );
        }
    }

    #[test]
    fn obs_snapshot_reconciles_with_window_reports() {
        let tr = trace(3);
        let queries = vec![
            q1(),
            catalog::ddos(&Thresholds {
                ddos: 15,
                ..Thresholds::default()
            }),
        ];
        let plan = plan_for(PlanMode::Sonata, &queries, &tr);
        let obs = ObsHandle::enabled();
        let mut rt = Runtime::new(
            &plan,
            RuntimeConfig {
                obs: obs.clone(),
                ..RuntimeConfig::default()
            },
        )
        .unwrap();
        let report = rt.process_trace(&tr).unwrap();
        let m = &report.metrics;

        // Every runtime counter reconciles exactly with WindowReport sums.
        assert_eq!(
            m.counter("sonata_runtime_windows_total"),
            Some(report.windows.len() as u64)
        );
        assert_eq!(
            m.counter("sonata_runtime_shunts_total"),
            Some(report.total_shunts())
        );
        assert_eq!(
            m.counter("sonata_switch_packets_total"),
            Some(report.total_packets())
        );
        assert_eq!(
            m.counter("sonata_engine_tuples_total"),
            Some(report.total_tuples())
        );
        let alert_total: u64 = report
            .windows
            .iter()
            .flat_map(|w| &w.alerts)
            .map(|(_, t)| t.len() as u64)
            .sum();
        assert_eq!(m.counter("sonata_runtime_alerts_total"), Some(alert_total));

        // Per-query attribution partitions the tuple total.
        let per_query: u64 = queries.iter().map(|q| report.tuples_for(q.id)).sum();
        assert_eq!(per_query, report.total_tuples());
        for w in &report.windows {
            let sum: u64 = w.tuples_per_query.iter().map(|(_, n)| n).sum();
            assert_eq!(sum, w.tuples_to_sp, "window {}", w.window);
        }

        // The event ring saw every window open and close, in order.
        let events = obs.events();
        let opens: Vec<u64> = events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::WindowOpen { window, .. } => Some(window),
                _ => None,
            })
            .collect();
        let closes = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::WindowClose { .. }))
            .count();
        assert_eq!(opens, vec![0, 1, 2]);
        assert_eq!(closes, report.windows.len());
        // Stage timings were recorded for the per-window stages.
        for stage in [
            "packet_loop",
            "window_dump",
            "emitter_replay",
            "dyn_filter_write",
        ] {
            let key = format!("sonata_stage_ns{{stage=\"{stage}\"}}");
            let count = m.histogram(&key).map(|h| h.count).unwrap_or(0);
            assert_eq!(count, report.windows.len() as u64, "{stage}");
        }
        // Exports stay well-formed end to end.
        sonata_obs::validate_snapshot_json(&m.to_json()).unwrap();
    }

    #[test]
    fn disabled_obs_leaves_reports_unchanged() {
        // Runs with and without observability must produce identical
        // window reports (instrumentation is passive).
        let tr = trace(2);
        let plan = plan_for(PlanMode::Sonata, &[q1()], &tr);
        let run = |obs: ObsHandle| {
            let mut rt = Runtime::new(
                &plan,
                RuntimeConfig {
                    obs,
                    ..RuntimeConfig::default()
                },
            )
            .unwrap();
            rt.process_trace(&tr).unwrap()
        };
        let plain = run(ObsHandle::disabled());
        let observed = run(ObsHandle::enabled());
        assert!(plain.metrics.counters.is_empty());
        assert_eq!(plain.windows.len(), observed.windows.len());
        for (a, b) in plain.windows.iter().zip(&observed.windows) {
            assert_eq!(a.alerts, b.alerts);
            assert_eq!(a.tuples_to_sp, b.tuples_to_sp);
            assert_eq!(a.tuples_per_query, b.tuples_per_query);
            assert_eq!(a.shunts, b.shunts);
        }
    }

    #[test]
    fn injected_worker_crash_recovers_with_identical_outputs() {
        use sonata_faults::WorkerFaults;
        let tr = trace(2);
        let plan = plan_for(PlanMode::MaxDp, &[q1()], &tr);
        let run = |faults: FaultPlan, workers: usize| {
            let mut rt = Runtime::new(
                &plan,
                RuntimeConfig {
                    faults,
                    workers,
                    ..RuntimeConfig::default()
                },
            )
            .unwrap();
            rt.process_trace(&tr).unwrap()
        };
        let baseline = run(FaultPlan::none(), 2);
        let crash = FaultPlan {
            seed: 5,
            worker: WorkerFaults {
                crash_per_mille: 1000,
                consecutive_crashes: 1,
                ..WorkerFaults::default()
            },
            ..FaultPlan::default()
        };
        let faulty = run(crash, 2);
        // Every job crashed once; respawn-and-retry absorbed it, so
        // the user-visible outputs are identical to the clean run.
        assert_eq!(baseline.windows.len(), faulty.windows.len());
        for (b, f) in baseline.windows.iter().zip(&faulty.windows) {
            assert_eq!(b.alerts, f.alerts, "window {}", b.window);
            assert_eq!(b.tuples_to_sp, f.tuples_to_sp, "window {}", b.window);
        }
        assert!(baseline.degraded_windows() == 0);
        assert!(faulty.degraded_windows() > 0);
        assert!(faulty.total_faults().get(FaultKind::WorkerCrash) > 0);
        let retries: u64 = faulty
            .windows
            .iter()
            .filter_map(|w| w.degraded.as_ref())
            .map(|d| d.worker_retries)
            .sum();
        assert!(retries > 0, "respawn-and-retry path never fired");
    }

    #[test]
    fn boundary_write_exhaustion_skips_update_without_failing() {
        use sonata_faults::BoundaryFaults;
        let tr = trace(3);
        let plan = plan_for(PlanMode::Sonata, &[q1()], &tr);
        let faults = FaultPlan {
            seed: 9,
            boundary: BoundaryFaults {
                fail_per_mille: 1000,
                consecutive: 10, // beyond the runtime's retry bound
            },
            ..FaultPlan::default()
        };
        let mut rt = Runtime::new(
            &plan,
            RuntimeConfig {
                faults,
                ..RuntimeConfig::default()
            },
        )
        .unwrap();
        let report = rt.process_trace(&tr).unwrap();
        for w in &report.windows {
            let d = w.degraded.as_ref().expect("every window degraded");
            assert!(d.boundary_update_skipped, "window {}", w.window);
            assert!(d.injected.get(FaultKind::BoundaryWriteFail) > 0);
            // The filter update was skipped wholesale.
            assert_eq!(w.filter_entries_written, 0, "window {}", w.window);
        }
    }

    #[test]
    fn multi_query_runtime_accounting() {
        let tr = trace(2);
        let queries = vec![
            q1(),
            catalog::ddos(&Thresholds {
                ddos: 15,
                ..Thresholds::default()
            }),
        ];
        let plan = plan_for(PlanMode::Sonata, &queries, &tr);
        let mut rt = Runtime::new(&plan, RuntimeConfig::default()).unwrap();
        let report = rt.process_trace(&tr).unwrap();
        assert_eq!(report.total_packets(), tr.len() as u64);
        assert_eq!(
            report.total_tuples(),
            report.windows.iter().map(|w| w.tuples_to_sp).sum::<u64>()
        );
    }
}
