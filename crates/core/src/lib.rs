//! # sonata-core
//!
//! Sonata's runtime (Section 5): the piece that takes a
//! [`sonata_planner::GlobalPlan`], compiles it onto the PISA behavioral
//! model and the stream engine, and drives the per-window loop:
//!
//! ```text
//!   packets ──▶ switch (partitioned query prefixes, registers)
//!                  │ mirrored reports            │ window dump
//!                  ▼                             ▼
//!               emitter  ── tuples per task ──▶ stream engine
//!                  ▲                             │ results
//!                  │   dynamic-refinement        ▼
//!               control ◀── level-r outputs ── runtime
//! ```
//!
//! * [`driver`] — the data-plane driver: compiles every (query ×
//!   refinement level × branch) task into one merged [`PisaProgram`],
//!   allocating metadata and registers globally, and the streaming
//!   driver: registers each level's residual query with the engine;
//! * [`emitter`] — parses mirrored reports by task, reorders tuple
//!   columns into each entry point's schema, and assembles per-window
//!   batches (per-packet reports, collision shunts, register dumps);
//! * [`runtime`] — the orchestration loop: per window, push packets
//!   through the switch, close the window (register dump + reset),
//!   run the stream jobs, emit finest-level results as alerts, and
//!   feed coarser-level outputs into the next level's dynamic filter
//!   tables through the control API (with the paper's measured update
//!   latency model), watching collision pressure for re-planning.
//!
//! [`PisaProgram`]: sonata_pisa::PisaProgram

pub mod drift;
pub mod driver;
pub mod emitter;
pub mod fabric;
pub mod runtime;

pub use drift::{DriftConfig, DriftMonitor, WindowDrift};
pub use driver::{DeployError, DeployedPlan, Deployment, QueryInstance};
pub use emitter::Emitter;
pub use fabric::{Fabric, SwitchOutage, TopologyConfig};
pub use runtime::{
    DegradedWindow, ErrorBoundReport, IngestMode, ReplanConfig, Runtime, RuntimeConfig,
    SwitchArrival, TelemetryReport, WindowLatency, WindowReport,
};
pub use sonata_pisa::{SketchConfig, StateLayout};
