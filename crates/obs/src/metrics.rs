//! The lock-cheap metrics registry.
//!
//! Metrics are addressed as `name{label=value}`. Registration (a
//! mutex-guarded map lookup) happens once, at component construction;
//! the handles it returns ([`Counter`], [`Gauge`], [`Histogram`]) are
//! plain `Arc`s over atomics, so the hot path is an atomic add with no
//! locking and no allocation. Handles from a *disabled* registry are
//! identical atomics that simply aren't registered anywhere — callers
//! instrument unconditionally and pay only the atomic add.

use crate::json::JsonWriter;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Render `name{k=v,...}` (or bare `name` without labels).
pub fn metric_key(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut out = String::with_capacity(name.len() + 16 * labels.len());
    out.push_str(name);
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(v);
        out.push('"');
    }
    out.push('}');
    out
}

/// A monotonic counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value set to the latest observation.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Set the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Default latency buckets in nanoseconds: 1 µs → ~10 s, one decade
/// split 1/2.5/5 (the classic Prometheus log-linear ladder).
pub const LATENCY_BUCKETS_NS: &[u64] = &[
    1_000,
    2_500,
    5_000,
    10_000,
    25_000,
    50_000,
    100_000,
    250_000,
    500_000,
    1_000_000,
    2_500_000,
    5_000_000,
    10_000_000,
    25_000_000,
    50_000_000,
    100_000_000,
    250_000_000,
    500_000_000,
    1_000_000_000,
    2_500_000_000,
    5_000_000_000,
    10_000_000_000,
];

#[derive(Debug)]
pub(crate) struct HistogramInner {
    /// Upper bounds (inclusive) per bucket; an implicit +Inf bucket
    /// follows.
    bounds: Box<[u64]>,
    /// One count per bound, plus the +Inf overflow bucket.
    counts: Box<[AtomicU64]>,
    sum: AtomicU64,
    count: AtomicU64,
}

/// A fixed-bucket histogram of `u64` observations (nanoseconds, by
/// convention, for every `*_ns` metric).
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    pub(crate) fn with_bounds(bounds: &[u64]) -> Self {
        let counts: Vec<AtomicU64> = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram(Arc::new(HistogramInner {
            bounds: bounds.into(),
            counts: counts.into_boxed_slice(),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }))
    }

    /// Record one observation.
    #[inline]
    pub fn observe(&self, v: u64) {
        let inner = &*self.0;
        let idx = inner.bounds.partition_point(|&b| b < v);
        inner.counts[idx].fetch_add(1, Ordering::Relaxed);
        inner.sum.fetch_add(v, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    fn snapshot(&self, name: &str) -> HistogramSnapshot {
        let inner = &*self.0;
        let mut buckets = Vec::with_capacity(inner.bounds.len() + 1);
        let mut cumulative = 0u64;
        for (i, &bound) in inner.bounds.iter().enumerate() {
            cumulative += inner.counts[i].load(Ordering::Relaxed);
            buckets.push((Some(bound), cumulative));
        }
        cumulative += inner.counts[inner.bounds.len()].load(Ordering::Relaxed);
        buckets.push((None, cumulative));
        HistogramSnapshot {
            name: name.to_string(),
            buckets,
            count: self.count(),
            sum: self.sum(),
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::with_bounds(LATENCY_BUCKETS_NS)
    }
}

/// A histogram frozen for export: cumulative bucket counts keyed by
/// inclusive upper bound (`None` = +Inf).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// `name{labels}` key.
    pub name: String,
    /// `(upper_bound, cumulative_count)`; `None` bound is +Inf.
    pub buckets: Vec<(Option<u64>, u64)>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Mean observation, if any.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
}

/// The metrics registry: a mutex-guarded name → handle map. The mutex
/// is only taken at registration and snapshot time, never on the
/// metric hot path.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<RegistryInner>,
}

impl Registry {
    /// Get or create a counter.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let key = metric_key(name, labels);
        self.inner
            .lock()
            .unwrap()
            .counters
            .entry(key)
            .or_default()
            .clone()
    }

    /// Get or create a gauge.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let key = metric_key(name, labels);
        self.inner
            .lock()
            .unwrap()
            .gauges
            .entry(key)
            .or_default()
            .clone()
    }

    /// Get or create a histogram with the default latency buckets.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        self.histogram_with(name, labels, LATENCY_BUCKETS_NS)
    }

    /// Get or create a histogram with explicit bucket bounds.
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)], bounds: &[u64]) -> Histogram {
        let key = metric_key(name, labels);
        self.inner
            .lock()
            .unwrap()
            .histograms
            .entry(key)
            .or_insert_with(|| Histogram::with_bounds(bounds))
            .clone()
    }

    /// Freeze every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().unwrap();
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, c)| (k.clone(), c.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, g)| (k.clone(), g.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, h)| h.snapshot(k))
                .collect(),
        }
    }
}

/// A point-in-time copy of every metric, sorted by key — the
/// machine-readable face of a run ([`Self::to_json`],
/// [`Self::to_prometheus`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// `(key, value)` per counter, sorted by key.
    pub counters: Vec<(String, u64)>,
    /// `(key, value)` per gauge, sorted by key.
    pub gauges: Vec<(String, u64)>,
    /// One snapshot per histogram, sorted by key.
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Look a counter up by its full `name{labels}` key.
    pub fn counter(&self, key: &str) -> Option<u64> {
        self.counters
            .binary_search_by(|(k, _)| k.as_str().cmp(key))
            .ok()
            .map(|i| self.counters[i].1)
    }

    /// Look a gauge up by its full key.
    pub fn gauge(&self, key: &str) -> Option<u64> {
        self.gauges
            .binary_search_by(|(k, _)| k.as_str().cmp(key))
            .ok()
            .map(|i| self.gauges[i].1)
    }

    /// Look a histogram up by its full key.
    pub fn histogram(&self, key: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == key)
    }

    /// Sum of every counter whose name part (before `{`) equals
    /// `name`, across label sets.
    pub fn counter_sum(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| k == name || (k.starts_with(name) && k[name.len()..].starts_with('{')))
            .map(|(_, v)| v)
            .sum()
    }

    /// Render in the Prometheus text exposition format (histogram
    /// values are nanoseconds; bounds are emitted in seconds, as the
    /// `_seconds` convention expects).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (key, v) in &self.counters {
            out.push_str(key);
            out.push(' ');
            out.push_str(&v.to_string());
            out.push('\n');
        }
        for (key, v) in &self.gauges {
            out.push_str(key);
            out.push(' ');
            out.push_str(&v.to_string());
            out.push('\n');
        }
        for h in &self.histograms {
            let (name, labels) = split_key(&h.name);
            for (bound, count) in &h.buckets {
                let le = match bound {
                    Some(b) => format!("{}", *b as f64 / 1e9),
                    None => "+Inf".to_string(),
                };
                out.push_str(&with_extra_label(name, labels, "le", &le));
                out.push(' ');
                out.push_str(&count.to_string());
                out.push('\n');
            }
            out.push_str(&format!(
                "{name}_sum{labels} {}\n{name}_count{labels} {}\n",
                h.sum as f64 / 1e9,
                h.count
            ));
        }
        out
    }

    /// Pointwise least-upper-bound join with `other`: counters and
    /// gauges take the max per key, histograms the pointwise max of
    /// cumulative buckets (and max count/sum). Because two snapshots
    /// of one monotone source always relate pointwise, joining an
    /// older snapshot into a newer one is a no-op — the operation is
    /// commutative, associative, and idempotent, which is what lets
    /// [`FabricSnapshot::merge`] absorb duplicate or out-of-order
    /// exports from fabric peers.
    pub fn join(&mut self, other: &MetricsSnapshot) {
        join_sorted(&mut self.counters, &other.counters);
        join_sorted(&mut self.gauges, &other.gauges);
        for h in &other.histograms {
            match self.histograms.iter_mut().find(|m| m.name == h.name) {
                Some(mine) => join_histogram(mine, h),
                None => {
                    let at = self
                        .histograms
                        .partition_point(|m| m.name.as_str() < h.name.as_str());
                    self.histograms.insert(at, h.clone());
                }
            }
        }
    }

    /// Render as JSON (the schema `validate_snapshot_json` documents
    /// and checks).
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        self.write_json(&mut w);
        w.finish()
    }

    fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.key("counters");
        w.begin_object();
        for (k, v) in &self.counters {
            w.key(k);
            w.value_u64(*v);
        }
        w.end_object();
        w.key("gauges");
        w.begin_object();
        for (k, v) in &self.gauges {
            w.key(k);
            w.value_u64(*v);
        }
        w.end_object();
        w.key("histograms");
        w.begin_array();
        for h in &self.histograms {
            w.begin_object();
            w.key("name");
            w.value_str(&h.name);
            w.key("count");
            w.value_u64(h.count);
            w.key("sum_ns");
            w.value_u64(h.sum);
            w.key("buckets");
            w.begin_array();
            for (bound, count) in &h.buckets {
                w.begin_object();
                w.key("le_ns");
                match bound {
                    Some(b) => w.value_u64(*b),
                    None => w.value_null(),
                }
                w.key("count");
                w.value_u64(*count);
                w.end_object();
            }
            w.end_array();
            w.end_object();
        }
        w.end_array();
        w.end_object();
    }
}

/// Join two sorted `(key, value)` vectors pointwise by max.
fn join_sorted(mine: &mut Vec<(String, u64)>, theirs: &[(String, u64)]) {
    for (k, v) in theirs {
        match mine.binary_search_by(|(mk, _)| mk.as_str().cmp(k.as_str())) {
            Ok(i) => mine[i].1 = mine[i].1.max(*v),
            Err(i) => mine.insert(i, (k.clone(), *v)),
        }
    }
}

/// Pointwise max of two same-named histogram snapshots. Cumulative
/// buckets stay cumulative under pointwise max (max of two
/// non-decreasing sequences is non-decreasing), and the +Inf bucket
/// still equals `count` because both inputs satisfy that invariant.
/// Differently-bucketed snapshots (never produced by one fabric) fall
/// back to keeping whichever saw more observations.
fn join_histogram(mine: &mut HistogramSnapshot, theirs: &HistogramSnapshot) {
    let same_bounds = mine.buckets.len() == theirs.buckets.len()
        && mine
            .buckets
            .iter()
            .zip(&theirs.buckets)
            .all(|((a, _), (b, _))| a == b);
    if !same_bounds {
        if theirs.count > mine.count {
            *mine = theirs.clone();
        }
        return;
    }
    for ((_, c), (_, t)) in mine.buckets.iter_mut().zip(&theirs.buckets) {
        *c = (*c).max(*t);
    }
    mine.count = mine.count.max(theirs.count);
    mine.sum = mine.sum.max(theirs.sum);
}

/// Pointwise sum of two same-named histogram snapshots (cumulative
/// buckets add; counts and sums add). Used by
/// [`FabricSnapshot::flatten`], where parts are distinct sources.
fn add_histogram(mine: &mut HistogramSnapshot, theirs: &HistogramSnapshot) {
    let same_bounds = mine.buckets.len() == theirs.buckets.len()
        && mine
            .buckets
            .iter()
            .zip(&theirs.buckets)
            .all(|((a, _), (b, _))| a == b);
    if !same_bounds {
        return;
    }
    for ((_, c), (_, t)) in mine.buckets.iter_mut().zip(&theirs.buckets) {
        *c += *t;
    }
    mine.count += theirs.count;
    mine.sum += theirs.sum;
}

/// Extract the value of `label` from a `name{k="v",...}` key.
fn label_value<'a>(key: &'a str, label: &str) -> Option<&'a str> {
    let open = key.find('{')?;
    let inner = &key[open + 1..key.len().checked_sub(1)?];
    for part in inner.split(',') {
        let (k, v) = part.split_once("=\"")?;
        if k == label {
            return Some(v.strip_suffix('"').unwrap_or(v));
        }
    }
    None
}

/// A fabric-wide metrics snapshot: one [`MetricsSnapshot`] per source
/// component (`switch-3`, `shard-1`, `collector`), merged with a
/// join that is **commutative, associative, and idempotent** — peers
/// can gossip, duplicate, or reorder their exports and every node
/// still converges on the same fabric view.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FabricSnapshot {
    /// `(source, snapshot)` per component, sorted by source.
    pub parts: Vec<(String, MetricsSnapshot)>,
}

impl FabricSnapshot {
    /// Absorb one component's snapshot. A repeated source joins
    /// pointwise (max) rather than double-counting.
    pub fn insert(&mut self, source: &str, snap: MetricsSnapshot) {
        match self.parts.binary_search_by(|(s, _)| s.as_str().cmp(source)) {
            Ok(i) => self.parts[i].1.join(&snap),
            Err(i) => self.parts.insert(i, (source.to_string(), snap)),
        }
    }

    /// Merge another fabric view into this one (the CRDT join).
    pub fn merge(&mut self, other: &FabricSnapshot) {
        for (source, snap) in &other.parts {
            self.insert(source, snap.clone());
        }
    }

    /// Look one component's snapshot up by source name.
    pub fn part(&self, source: &str) -> Option<&MetricsSnapshot> {
        self.parts
            .binary_search_by(|(s, _)| s.as_str().cmp(source))
            .ok()
            .map(|i| &self.parts[i].1)
    }

    /// Decompose one shared-registry snapshot into per-component
    /// parts by routing each series on its identifying label:
    /// `switch="N"` → `switch-N`, `shard="N"` → `shard-N`,
    /// `peer="X"` → `X`; everything unlabeled lands in `collector`.
    pub fn from_labeled(snap: &MetricsSnapshot) -> FabricSnapshot {
        let mut out = FabricSnapshot::default();
        let source_of = |key: &str| -> String {
            if let Some(s) = label_value(key, "switch") {
                format!("switch-{s}")
            } else if let Some(s) = label_value(key, "shard") {
                format!("shard-{s}")
            } else if let Some(p) = label_value(key, "peer") {
                p.to_string()
            } else {
                "collector".to_string()
            }
        };
        fn route(
            parts: &mut Vec<(String, MetricsSnapshot)>,
            source: String,
        ) -> &mut MetricsSnapshot {
            let i = match parts.binary_search_by(|(s, _)| s.as_str().cmp(&source)) {
                Ok(i) => i,
                Err(i) => {
                    parts.insert(i, (source, MetricsSnapshot::default()));
                    i
                }
            };
            &mut parts[i].1
        }
        for (k, v) in &snap.counters {
            route(&mut out.parts, source_of(k))
                .counters
                .push((k.clone(), *v));
        }
        for (k, v) in &snap.gauges {
            route(&mut out.parts, source_of(k))
                .gauges
                .push((k.clone(), *v));
        }
        for h in &snap.histograms {
            route(&mut out.parts, source_of(&h.name))
                .histograms
                .push(h.clone());
        }
        out
    }

    /// Collapse the fabric view into one snapshot: counters and
    /// histograms sum across sources, gauges take the max (a depth
    /// gauge summed across peers would be meaningless).
    pub fn flatten(&self) -> MetricsSnapshot {
        let mut out = MetricsSnapshot::default();
        for (_, part) in &self.parts {
            for (k, v) in &part.counters {
                match out.counters.binary_search_by(|(mk, _)| mk.cmp(k)) {
                    Ok(i) => out.counters[i].1 += *v,
                    Err(i) => out.counters.insert(i, (k.clone(), *v)),
                }
            }
            join_sorted(&mut out.gauges, &part.gauges);
            for h in &part.histograms {
                match out.histograms.iter_mut().find(|m| m.name == h.name) {
                    Some(mine) => add_histogram(mine, h),
                    None => {
                        let at = out
                            .histograms
                            .partition_point(|m| m.name.as_str() < h.name.as_str());
                        out.histograms.insert(at, h.clone());
                    }
                }
            }
        }
        out
    }

    /// Render as JSON: `{"parts": {"<source>": <snapshot>, ...}}`
    /// where each snapshot follows the `validate_snapshot_json`
    /// schema (checked end to end by
    /// [`crate::validate_fabric_snapshot_json`]).
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("parts");
        w.begin_object();
        for (source, snap) in &self.parts {
            w.key(source);
            snap.write_json(&mut w);
        }
        w.end_object();
        w.end_object();
        w.finish()
    }
}

/// Split `name{labels}` into `(name, "{labels}")` (labels part may be
/// empty).
fn split_key(key: &str) -> (&str, &str) {
    match key.find('{') {
        Some(i) => (&key[..i], &key[i..]),
        None => (key, ""),
    }
}

/// `name_bucket{labels,extra="v"}` — append one label to a possibly
/// empty label set for the Prometheus histogram bucket lines.
fn with_extra_label(name: &str, labels: &str, extra_key: &str, extra_val: &str) -> String {
    if labels.is_empty() {
        format!("{name}_bucket{{{extra_key}=\"{extra_val}\"}}")
    } else {
        let inner = &labels[1..labels.len() - 1];
        format!("{name}_bucket{{{inner},{extra_key}=\"{extra_val}\"}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_render_with_and_without_labels() {
        assert_eq!(metric_key("a_total", &[]), "a_total");
        assert_eq!(
            metric_key("a_total", &[("q", "1"), ("kind", "shunt")]),
            "a_total{q=\"1\",kind=\"shunt\"}"
        );
    }

    #[test]
    fn registry_interns_handles() {
        let r = Registry::default();
        let c1 = r.counter("x_total", &[("a", "1")]);
        let c2 = r.counter("x_total", &[("a", "1")]);
        c1.add(3);
        c2.inc();
        assert_eq!(c1.get(), 4);
        let snap = r.snapshot();
        assert_eq!(snap.counter("x_total{a=\"1\"}"), Some(4));
        assert_eq!(snap.counter_sum("x_total"), 4);
    }

    #[test]
    fn gauge_holds_latest() {
        let r = Registry::default();
        let g = r.gauge("occupancy", &[]);
        g.set(10);
        g.set(7);
        assert_eq!(r.snapshot().gauge("occupancy"), Some(7));
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let r = Registry::default();
        let h = r.histogram_with("lat_ns", &[], &[10, 100, 1000]);
        for v in [5u64, 50, 500, 5000] {
            h.observe(v);
        }
        let snap = r.snapshot();
        let hs = snap.histogram("lat_ns").unwrap();
        assert_eq!(
            hs.buckets,
            vec![(Some(10), 1), (Some(100), 2), (Some(1000), 3), (None, 4)]
        );
        assert_eq!(hs.count, 4);
        assert_eq!(hs.sum, 5555);
        assert_eq!(hs.mean(), Some(5555.0 / 4.0));
    }

    #[test]
    fn counter_sum_does_not_match_prefixes() {
        let r = Registry::default();
        r.counter("x", &[]).add(1);
        r.counter("x_extra", &[]).add(10);
        r.counter("x", &[("l", "v")]).add(2);
        assert_eq!(r.snapshot().counter_sum("x"), 3);
    }

    #[test]
    fn prometheus_text_renders_all_kinds() {
        let r = Registry::default();
        r.counter("c_total", &[("q", "1")]).add(2);
        r.gauge("g", &[]).set(9);
        r.histogram_with("h_ns", &[("s", "x")], &[1_000_000_000])
            .observe(500_000_000);
        let text = r.snapshot().to_prometheus();
        assert!(text.contains("c_total{q=\"1\"} 2"), "{text}");
        assert!(text.contains("g 9"), "{text}");
        assert!(text.contains("h_ns_bucket{s=\"x\",le=\"1\"} 1"), "{text}");
        assert!(
            text.contains("h_ns_bucket{s=\"x\",le=\"+Inf\"} 1"),
            "{text}"
        );
        assert!(text.contains("h_ns_count{s=\"x\"} 1"), "{text}");
    }

    fn snap(counter: u64, gauge: u64, obs_ns: &[u64]) -> MetricsSnapshot {
        let r = Registry::default();
        r.counter("c_total", &[]).add(counter);
        r.gauge("g", &[]).set(gauge);
        let h = r.histogram_with("h_ns", &[], &[10, 100]);
        for &v in obs_ns {
            h.observe(v);
        }
        r.snapshot()
    }

    #[test]
    fn snapshot_join_is_pointwise_max() {
        let mut a = snap(5, 3, &[5, 50]);
        let b = snap(9, 1, &[5]);
        a.join(&b);
        assert_eq!(a.counter("c_total"), Some(9));
        assert_eq!(a.gauge("g"), Some(3));
        let h = a.histogram("h_ns").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.buckets.last().unwrap().1, h.count);
        // Idempotent: joining the same snapshot again changes nothing.
        let before = a.clone();
        a.join(&b);
        assert_eq!(a, before);
    }

    #[test]
    fn fabric_merge_converges_regardless_of_order() {
        let mut ab = FabricSnapshot::default();
        ab.insert("switch-0", snap(1, 1, &[5]));
        ab.insert("switch-1", snap(2, 2, &[50]));
        let mut ba = FabricSnapshot::default();
        ba.insert("switch-1", snap(2, 2, &[50]));
        ba.insert("switch-0", snap(1, 1, &[5]));
        assert_eq!(ab, ba);
        let mut dup = ab.clone();
        dup.merge(&ba);
        assert_eq!(dup, ab, "merge is idempotent");
        let flat = ab.flatten();
        assert_eq!(flat.counter("c_total"), Some(3));
        assert_eq!(flat.gauge("g"), Some(2));
        assert_eq!(flat.histogram("h_ns").unwrap().count, 2);
    }

    #[test]
    fn from_labeled_routes_by_component_label() {
        let r = Registry::default();
        r.counter("pkts_total", &[("switch", "2")]).add(7);
        r.counter("jobs_total", &[("shard", "1")]).add(3);
        r.counter("net_total", &[("peer", "switch-2"), ("dir", "tx")])
            .add(4);
        r.counter("plain_total", &[]).add(9);
        let fab = FabricSnapshot::from_labeled(&r.snapshot());
        assert_eq!(fab.part("switch-2").unwrap().counter_sum("pkts_total"), 7);
        assert_eq!(fab.part("shard-1").unwrap().counter_sum("jobs_total"), 3);
        assert_eq!(fab.part("switch-2").unwrap().counter_sum("net_total"), 4);
        assert_eq!(fab.part("collector").unwrap().counter_sum("plain_total"), 9);
        assert_eq!(fab.flatten().counter_sum("pkts_total"), 7);
    }

    #[test]
    fn json_round_trips_through_parser() {
        let r = Registry::default();
        r.counter("c_total", &[]).add(5);
        r.histogram("h_ns", &[]).observe(42);
        let json = r.snapshot().to_json();
        let v = crate::json::parse(&json).unwrap();
        assert_eq!(
            v.get("counters")
                .and_then(|c| c.get("c_total"))
                .and_then(crate::json::JsonValue::as_u64),
            Some(5)
        );
    }
}
