//! Distributed-trace identity: deterministic trace/span ids and the
//! [`TraceContext`] that rides the wire.
//!
//! One trace is rooted per window — every switch, shard, and the
//! collector stitch under the same `TraceId` because the id is a pure
//! function of the window index. Span ids are likewise derived
//! deterministically (a splitmix64-style mix over the parent id and a
//! salt), so two runs over the same trace produce byte-identical trace
//! documents and the differential suites can compare them directly.
//! No clock or RNG is consulted anywhere in id derivation.

/// splitmix64 finalizer: a cheap, well-distributed 64-bit mix.
#[inline]
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The in-band trace context: which trace a span belongs to and the
/// span's own id. `Copy` and 16 bytes — it travels on every wire
/// frame header (codec v3) so TCP-split halves and fabric peers parent
/// their spans under the switch's window trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TraceContext {
    /// Trace id — shared by every span of one window, fabric-wide.
    pub trace: u64,
    /// This span's id (the parent for any child derived from it).
    pub span: u64,
}

impl TraceContext {
    /// The absent context (both ids zero) — what a disabled handle
    /// propagates and what pre-v3 peers would have carried.
    pub const NONE: TraceContext = TraceContext { trace: 0, span: 0 };

    /// Whether this context carries a real trace.
    pub fn is_some(&self) -> bool {
        self.trace != 0
    }

    /// Root context for one (window, switch): the trace id is a pure
    /// function of the window (all switches of a window share it);
    /// the root span id folds the switch in so each switch gets its
    /// own root under the shared trace. Ids are forced nonzero so
    /// they never collide with [`TraceContext::NONE`].
    pub fn root(window: u64, switch: u16) -> TraceContext {
        TraceContext {
            trace: mix64(window ^ 0x5041_5045_5253_4f4e) | 1,
            span: mix64(mix64(window) ^ u64::from(switch)) | 1,
        }
    }

    /// Derive a child context: same trace, child span id mixed from
    /// this span's id and `salt` (by convention a stage index or a
    /// small per-call discriminator).
    pub fn child(&self, salt: u64) -> TraceContext {
        if !self.is_some() {
            return TraceContext::NONE;
        }
        TraceContext {
            trace: self.trace,
            span: mix64(self.span ^ mix64(salt)) | 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_id_is_shared_across_switches_of_one_window() {
        let a = TraceContext::root(7, 0);
        let b = TraceContext::root(7, 3);
        assert_eq!(a.trace, b.trace);
        assert_ne!(a.span, b.span);
        assert_ne!(a.trace, TraceContext::root(8, 0).trace);
    }

    #[test]
    fn derivation_is_deterministic_and_nonzero() {
        let root = TraceContext::root(0, 0);
        assert!(root.is_some());
        assert_ne!(root.span, 0);
        let c1 = root.child(5);
        let c2 = root.child(5);
        assert_eq!(c1, c2);
        assert_eq!(c1.trace, root.trace);
        assert_ne!(c1.span, root.span);
        assert_ne!(root.child(5).span, root.child(6).span);
    }

    #[test]
    fn none_context_stays_none() {
        assert!(!TraceContext::NONE.is_some());
        assert_eq!(TraceContext::NONE.child(9), TraceContext::NONE);
    }
}
