//! The pipeline stages the per-window profiler times. The timer
//! itself ([`crate::StageTimer`]) lives next to [`crate::ObsHandle`];
//! this module just names the stages so exports stay stable.

/// The pipeline stages the runtime profiles each window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Per-packet switch loop (parse → tables → deparse).
    PacketLoop,
    /// `Switch::end_window` register dump.
    WindowDump,
    /// Emitter key-value replay into micro-batches.
    EmitterReplay,
    /// Partitioning a batch across engine shards.
    ShardDispatch,
    /// Worker-side operator execution.
    WorkerExecute,
    /// Union of shard results.
    Merge,
    /// Dynamic-filter table write at the window boundary.
    DynFilterWrite,
    /// Planner compile (strategy selection + chain choice).
    PlanCompile,
    /// Branch-and-bound ILP solve.
    IlpSolve,
    /// One-time lowering of loaded IR / query pipelines into the
    /// compiled fast path (switch `ExecPlan` + stream `BoundPipeline`).
    PlanBind,
    /// Switch-side wire egress: encoding and sending the window dump
    /// plus the `WindowClose` over the transport.
    Transport,
    /// Collector-side frame drain from window open through close.
    CollectorDrain,
    /// Submitting the window's micro-batches to the stream engine.
    ShardExecute,
}

impl Stage {
    /// Stable snake_case name used as the `stage` label.
    pub fn name(&self) -> &'static str {
        match self {
            Stage::PacketLoop => "packet_loop",
            Stage::WindowDump => "window_dump",
            Stage::EmitterReplay => "emitter_replay",
            Stage::ShardDispatch => "shard_dispatch",
            Stage::WorkerExecute => "worker_execute",
            Stage::Merge => "merge",
            Stage::DynFilterWrite => "dyn_filter_write",
            Stage::PlanCompile => "plan_compile",
            Stage::IlpSolve => "ilp_solve",
            Stage::PlanBind => "plan_bind",
            Stage::Transport => "transport",
            Stage::CollectorDrain => "collector_drain",
            Stage::ShardExecute => "shard_execute",
        }
    }

    /// Position in [`Stage::ALL`], for pre-registered histogram lookup.
    pub fn index(self) -> usize {
        match self {
            Stage::PacketLoop => 0,
            Stage::WindowDump => 1,
            Stage::EmitterReplay => 2,
            Stage::ShardDispatch => 3,
            Stage::WorkerExecute => 4,
            Stage::Merge => 5,
            Stage::DynFilterWrite => 6,
            Stage::PlanCompile => 7,
            Stage::IlpSolve => 8,
            Stage::PlanBind => 9,
            Stage::Transport => 10,
            Stage::CollectorDrain => 11,
            Stage::ShardExecute => 12,
        }
    }

    /// Look a stage up by its [`Stage::name`] label.
    pub fn from_name(name: &str) -> Option<Stage> {
        Stage::ALL.iter().copied().find(|s| s.name() == name)
    }

    /// All stages, in [`Stage::index`] order.
    pub const ALL: [Stage; 13] = [
        Stage::PacketLoop,
        Stage::WindowDump,
        Stage::EmitterReplay,
        Stage::ShardDispatch,
        Stage::WorkerExecute,
        Stage::Merge,
        Stage::DynFilterWrite,
        Stage::PlanCompile,
        Stage::IlpSolve,
        Stage::PlanBind,
        Stage::Transport,
        Stage::CollectorDrain,
        Stage::ShardExecute,
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_names_are_unique() {
        let mut names: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Stage::ALL.len());
    }

    #[test]
    fn index_matches_all_order() {
        for (i, s) in Stage::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
        }
    }
}
