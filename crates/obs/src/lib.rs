//! # sonata-obs — cross-layer observability for the Sonata runtime
//!
//! Sonata's claims are quantitative (tuples delivered to the stream
//! processor, switch occupancy, update latency), so the runtime needs
//! a measurement substrate that is itself cheap enough not to distort
//! what it measures. This crate provides three pieces, all behind one
//! [`ObsHandle`]:
//!
//! 1. a **metrics registry** ([`metrics`]) — counters, gauges, and
//!    fixed-bucket latency histograms addressed as `name{label=value}`,
//!    exportable as Prometheus text or JSON;
//! 2. a **structured event trace** ([`trace`]) — a bounded ring of
//!    typed, nanosecond-stamped events, exportable as JSONL or a
//!    `chrome://tracing` document;
//! 3. a **per-window profiler** ([`profile`], [`StageTimer`]) — a
//!    drop-guard that times each pipeline stage and folds the result
//!    into the `sonata_stage_ns{stage=...}` histograms.
//!
//! ## The overhead contract
//!
//! A *disabled* handle (the default) must be a near-no-op: handles it
//! returns are unregistered atomics (the instrumented code still does
//! the relaxed atomic add and nothing else), [`ObsHandle::event`]
//! returns before constructing anything, and [`ObsHandle::stage`]
//! returns an unarmed guard without reading the clock. No allocation
//! happens on any disabled hot path. The crate has **zero external
//! dependencies** so every runtime crate in the vendored-only build
//! can use it.

pub mod json;
pub mod metrics;
pub mod profile;
pub mod span;
pub mod trace;

pub use metrics::{
    Counter, FabricSnapshot, Gauge, Histogram, HistogramSnapshot, MetricsSnapshot, Registry,
};
pub use profile::Stage;
pub use span::TraceContext;
pub use trace::{EventKind, EventRing, TracedEvent};

use std::sync::Arc;
use std::time::Instant;

/// Default event-ring capacity for [`ObsHandle::enabled`].
pub const DEFAULT_EVENT_CAPACITY: usize = 65_536;

#[derive(Debug)]
struct ObsInner {
    epoch: Instant,
    registry: Registry,
    ring: EventRing,
    /// Stage histograms pre-registered in [`Stage::ALL`] order so the
    /// profiler never takes the registry mutex per window.
    stage_hist: Vec<Histogram>,
}

/// The cross-layer observability handle threaded from `RuntimeConfig`
/// through the switch, planner, and stream engine. Cloning shares the
/// underlying registry and event ring; the disabled handle (also the
/// `Default`) costs one `Option` check per use.
#[derive(Debug, Clone, Default)]
pub struct ObsHandle {
    inner: Option<Arc<ObsInner>>,
}

impl ObsHandle {
    /// The no-op handle: metrics become unregistered atomics, events
    /// and stage timers vanish.
    pub fn disabled() -> Self {
        ObsHandle { inner: None }
    }

    /// An enabled handle with the default event-ring capacity.
    pub fn enabled() -> Self {
        Self::with_capacity(DEFAULT_EVENT_CAPACITY)
    }

    /// An enabled handle retaining at most `events` trace events.
    pub fn with_capacity(events: usize) -> Self {
        let registry = Registry::default();
        let stage_hist = Stage::ALL
            .iter()
            .map(|s| registry.histogram("sonata_stage_ns", &[("stage", s.name())]))
            .collect();
        ObsHandle {
            inner: Some(Arc::new(ObsInner {
                epoch: Instant::now(),
                registry,
                ring: EventRing::new(events),
                stage_hist,
            })),
        }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Nanoseconds since this handle was created (0 when disabled).
    pub fn now_ns(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.epoch.elapsed().as_nanos() as u64,
            None => 0,
        }
    }

    /// Get or create a counter (an unregistered atomic when disabled).
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        match &self.inner {
            Some(inner) => inner.registry.counter(name, labels),
            None => Counter::default(),
        }
    }

    /// Get or create a gauge (an unregistered atomic when disabled).
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        match &self.inner {
            Some(inner) => inner.registry.gauge(name, labels),
            None => Gauge::default(),
        }
    }

    /// Get or create a latency histogram (unregistered when disabled).
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        match &self.inner {
            Some(inner) => inner.registry.histogram(name, labels),
            None => Histogram::default(),
        }
    }

    /// Record a structured event. Callers on hot paths should guard
    /// with [`Self::is_enabled`] when *building* the event allocates.
    pub fn event(&self, kind: EventKind) {
        if let Some(inner) = &self.inner {
            inner.ring.push(TracedEvent {
                ts_ns: inner.epoch.elapsed().as_nanos() as u64,
                kind,
            });
        }
    }

    /// Start timing a pipeline stage. The returned guard records on
    /// drop; when disabled it is inert (no clock read).
    pub fn stage(&self, stage: Stage, window: u64) -> StageTimer {
        match &self.inner {
            Some(inner) => StageTimer {
                state: Some(TimerState {
                    stage: Some(stage),
                    window,
                    started: Instant::now(),
                    inner: Arc::clone(inner),
                    span: None,
                }),
            },
            None => StageTimer { state: None },
        }
    }

    /// Start timing a pipeline stage *as a distributed-trace span*
    /// parented under `parent` and attributed to `process`
    /// (`switch-0`, `shard-1`, `collector`). Folds into the same
    /// `sonata_stage_ns` histogram as [`Self::stage`], but emits an
    /// [`EventKind::Span`] carrying trace identity instead of a bare
    /// `StageSpan`. With an absent parent context it degrades to a
    /// plain stage timer; disabled handles return an inert guard.
    pub fn trace_span(
        &self,
        stage: Stage,
        window: u64,
        parent: TraceContext,
        process: &str,
    ) -> StageTimer {
        match &self.inner {
            Some(inner) => {
                let span = parent.is_some().then(|| SpanInfo {
                    ctx: parent.child(stage.index() as u64 + 1),
                    parent: parent.span,
                    name: stage.name(),
                    process: process.to_string(),
                });
                StageTimer {
                    state: Some(TimerState {
                        stage: Some(stage),
                        window,
                        started: Instant::now(),
                        inner: Arc::clone(inner),
                        span,
                    }),
                }
            }
            None => StageTimer { state: None },
        }
    }

    /// Record an already-measured stage span. For sections whose
    /// parent context is only learned *while* they run (the collector
    /// drain discovers the window's trace from the frames it is
    /// draining), callers measure with [`Self::now_ns`] and report
    /// here afterwards. Exactly `wall_ns` is observed into the stage
    /// histogram — the same reconciliation guarantee as
    /// [`StageTimer::finish`]. Degrades to a bare `StageSpan` event
    /// without a parent; no-op when disabled.
    pub fn record_span(
        &self,
        stage: Stage,
        window: u64,
        parent: TraceContext,
        wall_ns: u64,
        process: &str,
    ) {
        if let Some(inner) = &self.inner {
            inner.stage_hist[stage.index()].observe(wall_ns);
            let kind = if parent.is_some() {
                EventKind::Span {
                    trace: parent.trace,
                    span: parent.child(stage.index() as u64 + 1).span,
                    parent: parent.span,
                    name: stage.name(),
                    process: process.to_string(),
                    window,
                    wall_ns,
                }
            } else {
                EventKind::StageSpan {
                    stage,
                    window,
                    wall_ns,
                }
            };
            inner.ring.push(TracedEvent {
                ts_ns: inner.epoch.elapsed().as_nanos() as u64,
                kind,
            });
        }
    }

    /// Open the root span of one (window, switch) trace. The guard's
    /// [`StageTimer::ctx`] is the parent context for every stage span
    /// of the window — locally and, propagated in-band on frame
    /// headers, on the far side of the wire. Roots have no stage
    /// histogram; their wall time is the whole window.
    pub fn root_span(&self, window: u64, switch: u16, process: &str) -> StageTimer {
        match &self.inner {
            Some(inner) => StageTimer {
                state: Some(TimerState {
                    stage: None,
                    window,
                    started: Instant::now(),
                    inner: Arc::clone(inner),
                    span: Some(SpanInfo {
                        ctx: TraceContext::root(window, switch),
                        parent: 0,
                        name: "window",
                        process: process.to_string(),
                    }),
                }),
            },
            None => StageTimer { state: None },
        }
    }

    /// Freeze every registered metric (empty when disabled). The
    /// event-ring drop counter is injected as
    /// `sonata_obs_events_dropped_total` so exporters can tell an
    /// incomplete trace from a quiet one.
    pub fn snapshot(&self) -> MetricsSnapshot {
        match &self.inner {
            Some(inner) => {
                let mut snap = inner.registry.snapshot();
                let key = "sonata_obs_events_dropped_total".to_string();
                let dropped = inner.ring.dropped();
                match snap.counters.binary_search_by(|(k, _)| k.cmp(&key)) {
                    Ok(i) => snap.counters[i].1 = dropped,
                    Err(i) => snap.counters.insert(i, (key, dropped)),
                }
                snap
            }
            None => MetricsSnapshot::default(),
        }
    }

    /// Copy the retained trace events, oldest first.
    pub fn events(&self) -> Vec<TracedEvent> {
        match &self.inner {
            Some(inner) => inner.ring.events(),
            None => Vec::new(),
        }
    }

    /// Events evicted from the ring so far.
    pub fn dropped_events(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.ring.dropped(),
            None => 0,
        }
    }

    /// Render the retained events as JSONL. The document ends with a
    /// `ring_status` trailer line carrying the drop counter and ring
    /// capacity, so consumers can tell whether the trace is complete.
    pub fn events_jsonl(&self) -> String {
        let mut out = trace::to_jsonl(&self.events());
        if let Some(inner) = &self.inner {
            let mut w = json::JsonWriter::new();
            w.begin_object();
            w.key("ts_ns");
            w.value_u64(self.now_ns());
            w.key("type");
            w.value_str("ring_status");
            w.key("dropped");
            w.value_u64(inner.ring.dropped());
            w.key("capacity");
            w.value_u64(inner.ring.capacity() as u64);
            w.end_object();
            out.push_str(&w.finish());
            out.push('\n');
        }
        out
    }

    /// Render the retained events as a `chrome://tracing` document.
    pub fn chrome_trace(&self) -> String {
        trace::to_chrome_trace(&self.events())
    }
}

/// Trace identity attached to a span-shaped timer.
struct SpanInfo {
    /// The span's own context (trace id + span id).
    ctx: TraceContext,
    /// Parent span id (0 for window roots).
    parent: u64,
    name: &'static str,
    process: String,
}

struct TimerState {
    /// Stage whose histogram absorbs the wall time (`None` for window
    /// roots, which have no stage lane).
    stage: Option<Stage>,
    window: u64,
    started: Instant,
    inner: Arc<ObsInner>,
    span: Option<SpanInfo>,
}

impl TimerState {
    /// Record the elapsed time into the stage histogram and event
    /// ring; returns the observed nanoseconds. Exactly this value is
    /// observed into the histogram, so callers threading the return
    /// into `WindowLatency` reconcile with the profiler by
    /// construction.
    fn record(self) -> u64 {
        let wall_ns = self.started.elapsed().as_nanos() as u64;
        if let Some(stage) = self.stage {
            self.inner.stage_hist[stage.index()].observe(wall_ns);
        }
        let kind = match self.span {
            Some(info) => EventKind::Span {
                trace: info.ctx.trace,
                span: info.ctx.span,
                parent: info.parent,
                name: info.name,
                process: info.process,
                window: self.window,
                wall_ns,
            },
            None => EventKind::StageSpan {
                // Unreachable fallback stage only if neither span nor
                // stage was set; constructors always set one.
                stage: self.stage.unwrap_or(Stage::PacketLoop),
                window: self.window,
                wall_ns,
            },
        };
        self.inner.ring.push(TracedEvent {
            ts_ns: self.inner.epoch.elapsed().as_nanos() as u64,
            kind,
        });
        wall_ns
    }
}

/// Drop-guard stage timer from [`ObsHandle::stage`],
/// [`ObsHandle::trace_span`], or [`ObsHandle::root_span`]. Dropping an
/// armed timer folds the elapsed nanoseconds into the stage histogram
/// and pushes a [`EventKind::StageSpan`] (or [`EventKind::Span`])
/// event; an unarmed timer does nothing.
pub struct StageTimer {
    state: Option<TimerState>,
}

impl StageTimer {
    /// Whether this timer will record on drop.
    pub fn is_armed(&self) -> bool {
        self.state.is_some()
    }

    /// This timer's own trace context — the parent for any child
    /// spans. [`TraceContext::NONE`] when unarmed or untraced.
    pub fn ctx(&self) -> TraceContext {
        self.state
            .as_ref()
            .and_then(|s| s.span.as_ref())
            .map(|s| s.ctx)
            .unwrap_or(TraceContext::NONE)
    }

    /// Stop the timer now and return the observed wall nanoseconds
    /// (0 when unarmed). The identical value lands in the stage
    /// histogram, so a `WindowLatency` built from `finish` results
    /// reconciles exactly against the profiler.
    pub fn finish(mut self) -> u64 {
        match self.state.take() {
            Some(state) => state.record(),
            None => 0,
        }
    }
}

impl Drop for StageTimer {
    fn drop(&mut self) {
        if let Some(state) = self.state.take() {
            state.record();
        }
    }
}

/// Validate a [`MetricsSnapshot::to_json`] document against the
/// documented schema:
///
/// ```text
/// {
///   "counters":   { "<name{labels}>": u64, ... },
///   "gauges":     { "<name{labels}>": u64, ... },
///   "histograms": [
///     { "name": str, "count": u64, "sum_ns": u64,
///       "buckets": [ { "le_ns": u64 | null, "count": u64 }, ... ] },
///     ...
///   ]
/// }
/// ```
///
/// Histogram buckets must be cumulative (non-decreasing), end with the
/// `le_ns: null` (+Inf) bucket, and the final cumulative count must
/// equal `count`.
pub fn validate_snapshot_json(text: &str) -> Result<(), String> {
    let doc = json::parse(text)?;
    validate_snapshot_value(&doc)
}

/// Validate a [`FabricSnapshot::to_json`] document: a `parts` object
/// mapping each source name to a snapshot matching the
/// [`validate_snapshot_json`] schema.
pub fn validate_fabric_snapshot_json(text: &str) -> Result<(), String> {
    let doc = json::parse(text)?;
    let parts = doc
        .get("parts")
        .and_then(json::JsonValue::as_object)
        .ok_or("missing `parts` object")?;
    for (source, part) in parts {
        validate_snapshot_value(part).map_err(|e| format!("part `{source}`: {e}"))?;
    }
    Ok(())
}

fn validate_snapshot_value(doc: &json::JsonValue) -> Result<(), String> {
    let counters = doc
        .get("counters")
        .and_then(json::JsonValue::as_object)
        .ok_or("missing `counters` object")?;
    for (k, v) in counters {
        v.as_u64().ok_or_else(|| format!("counter `{k}` not u64"))?;
    }
    let gauges = doc
        .get("gauges")
        .and_then(json::JsonValue::as_object)
        .ok_or("missing `gauges` object")?;
    for (k, v) in gauges {
        v.as_u64().ok_or_else(|| format!("gauge `{k}` not u64"))?;
    }
    let histograms = doc
        .get("histograms")
        .and_then(json::JsonValue::as_array)
        .ok_or("missing `histograms` array")?;
    for h in histograms {
        let name = h
            .get("name")
            .and_then(json::JsonValue::as_str)
            .ok_or("histogram missing `name`")?;
        let count = h
            .get("count")
            .and_then(json::JsonValue::as_u64)
            .ok_or_else(|| format!("histogram `{name}` missing `count`"))?;
        h.get("sum_ns")
            .and_then(json::JsonValue::as_u64)
            .ok_or_else(|| format!("histogram `{name}` missing `sum_ns`"))?;
        let buckets = h
            .get("buckets")
            .and_then(json::JsonValue::as_array)
            .ok_or_else(|| format!("histogram `{name}` missing `buckets`"))?;
        if buckets.is_empty() {
            return Err(format!("histogram `{name}` has no buckets"));
        }
        let mut prev = 0u64;
        for (i, b) in buckets.iter().enumerate() {
            let c = b
                .get("count")
                .and_then(json::JsonValue::as_u64)
                .ok_or_else(|| format!("histogram `{name}` bucket {i} missing `count`"))?;
            if c < prev {
                return Err(format!("histogram `{name}` buckets not cumulative at {i}"));
            }
            prev = c;
            let le = b
                .get("le_ns")
                .ok_or_else(|| format!("histogram `{name}` bucket {i} missing `le_ns`"))?;
            let is_last = i == buckets.len() - 1;
            match le {
                json::JsonValue::Null if is_last => {}
                json::JsonValue::Null => {
                    return Err(format!("histogram `{name}`: +Inf bucket not last"));
                }
                json::JsonValue::Number(_) if !is_last => {}
                json::JsonValue::Number(_) => {
                    return Err(format!("histogram `{name}`: last bucket must be +Inf"));
                }
                _ => return Err(format!("histogram `{name}` bucket {i}: bad `le_ns`")),
            }
        }
        if prev != count {
            return Err(format!(
                "histogram `{name}`: +Inf cumulative {prev} != count {count}"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let obs = ObsHandle::disabled();
        assert!(!obs.is_enabled());
        let c = obs.counter("x_total", &[]);
        c.add(5);
        assert_eq!(c.get(), 5); // the atomic works...
        assert!(obs.snapshot().counters.is_empty()); // ...but is unregistered
        obs.event(EventKind::WindowOpen {
            window: 0,
            packets: 1,
        });
        assert!(obs.events().is_empty());
        let t = obs.stage(Stage::PacketLoop, 0);
        assert!(!t.is_armed());
        drop(t);
        assert_eq!(obs.now_ns(), 0);
    }

    #[test]
    fn enabled_handle_shares_state_across_clones() {
        let obs = ObsHandle::with_capacity(16);
        let other = obs.clone();
        obs.counter("x_total", &[("q", "0")]).add(2);
        other.counter("x_total", &[("q", "0")]).inc();
        assert_eq!(obs.snapshot().counter("x_total{q=\"0\"}"), Some(3));
        other.event(EventKind::ReplanTrigger {
            window: 4,
            divergence: 0.5,
        });
        assert_eq!(obs.events().len(), 1);
    }

    #[test]
    fn stage_timer_folds_into_histogram_and_ring() {
        let obs = ObsHandle::with_capacity(8);
        {
            let _t = obs.stage(Stage::Merge, 3);
        }
        let snap = obs.snapshot();
        let h = snap
            .histogram("sonata_stage_ns{stage=\"merge\"}")
            .expect("stage histogram registered");
        assert_eq!(h.count, 1);
        let events = obs.events();
        assert_eq!(events.len(), 1);
        match &events[0].kind {
            EventKind::StageSpan { stage, window, .. } => {
                assert_eq!(*stage, Stage::Merge);
                assert_eq!(*window, 3);
            }
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn all_stage_histograms_preregistered() {
        let obs = ObsHandle::enabled();
        let snap = obs.snapshot();
        for s in Stage::ALL {
            let key = format!("sonata_stage_ns{{stage=\"{}\"}}", s.name());
            assert!(snap.histogram(&key).is_some(), "missing {key}");
        }
    }

    #[test]
    fn trace_span_emits_parented_span_and_reconciles() {
        let obs = ObsHandle::with_capacity(8);
        let root = obs.root_span(3, 1, "switch-1");
        let root_ctx = root.ctx();
        assert!(root_ctx.is_some());
        let child = obs.trace_span(Stage::PacketLoop, 3, root_ctx, "switch-1");
        let child_ctx = child.ctx();
        assert_eq!(child_ctx.trace, root_ctx.trace);
        let wall = child.finish();
        drop(root);
        let snap = obs.snapshot();
        let h = snap
            .histogram("sonata_stage_ns{stage=\"packet_loop\"}")
            .unwrap();
        // finish() returns exactly what the histogram observed.
        assert_eq!(h.sum, wall);
        assert_eq!(h.count, 1);
        let events = obs.events();
        assert_eq!(events.len(), 2);
        match &events[0].kind {
            EventKind::Span {
                trace,
                span,
                parent,
                name,
                process,
                window,
                ..
            } => {
                assert_eq!(*trace, root_ctx.trace);
                assert_eq!(*span, child_ctx.span);
                assert_eq!(*parent, root_ctx.span);
                assert_eq!(*name, "packet_loop");
                assert_eq!(process, "switch-1");
                assert_eq!(*window, 3);
            }
            other => panic!("unexpected event {other:?}"),
        }
        match &events[1].kind {
            EventKind::Span { parent, name, .. } => {
                assert_eq!(*parent, 0);
                assert_eq!(*name, "window");
            }
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn trace_span_without_parent_degrades_to_stage_span() {
        let obs = ObsHandle::with_capacity(8);
        let t = obs.trace_span(Stage::Merge, 1, TraceContext::NONE, "collector");
        assert!(t.is_armed());
        assert!(!t.ctx().is_some());
        drop(t);
        match &obs.events()[0].kind {
            EventKind::StageSpan { stage, .. } => assert_eq!(*stage, Stage::Merge),
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn snapshot_injects_ring_drop_counter_and_jsonl_trailer() {
        let obs = ObsHandle::with_capacity(2);
        for w in 0..5 {
            obs.event(EventKind::WindowOpen {
                window: w,
                packets: 0,
            });
        }
        let snap = obs.snapshot();
        assert_eq!(snap.counter("sonata_obs_events_dropped_total"), Some(3));
        let jsonl = obs.events_jsonl();
        let last = jsonl.lines().last().unwrap();
        let doc = json::parse(last).unwrap();
        assert_eq!(
            doc.get("type").and_then(json::JsonValue::as_str),
            Some("ring_status")
        );
        assert_eq!(
            doc.get("dropped").and_then(json::JsonValue::as_u64),
            Some(3)
        );
        assert_eq!(
            doc.get("capacity").and_then(json::JsonValue::as_u64),
            Some(2)
        );
    }

    #[test]
    fn fabric_snapshot_json_validates() {
        let a = ObsHandle::enabled();
        a.counter("sonata_switch_packets_total", &[("switch", "0")])
            .add(10);
        a.histogram("sonata_stage_ns", &[("stage", "packet_loop")])
            .observe(500);
        let mut fab = FabricSnapshot::default();
        fab.insert("switch-0", a.snapshot());
        fab.insert("collector", a.snapshot());
        let json = fab.to_json();
        validate_fabric_snapshot_json(&json).expect("fabric schema valid");
        assert!(validate_fabric_snapshot_json("{}").is_err());
        assert!(validate_fabric_snapshot_json(r#"{"parts":{"x":{}}}"#).is_err());
    }

    #[test]
    fn snapshot_json_validates() {
        let obs = ObsHandle::enabled();
        obs.counter("sonata_packets_total", &[]).add(100);
        obs.gauge("sonata_register_occupancy", &[]).set(42);
        obs.histogram("sonata_update_latency_ns", &[]).observe(1234);
        let json = obs.snapshot().to_json();
        validate_snapshot_json(&json).expect("schema valid");
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(validate_snapshot_json("{}").is_err());
        assert!(validate_snapshot_json(r#"{"counters":{},"gauges":{}}"#).is_err());
        assert!(
            validate_snapshot_json(r#"{"counters":{"c":-1},"gauges":{},"histograms":[]}"#).is_err()
        );
        // Non-cumulative buckets.
        assert!(validate_snapshot_json(
            r#"{"counters":{},"gauges":{},"histograms":[
                {"name":"h","count":1,"sum_ns":5,"buckets":[
                    {"le_ns":10,"count":1},{"le_ns":null,"count":0}]}]}"#
        )
        .is_err());
        // +Inf total disagrees with count.
        assert!(validate_snapshot_json(
            r#"{"counters":{},"gauges":{},"histograms":[
                {"name":"h","count":2,"sum_ns":5,"buckets":[
                    {"le_ns":10,"count":1},{"le_ns":null,"count":1}]}]}"#
        )
        .is_err());
        assert!(validate_snapshot_json(
            r#"{"counters":{},"gauges":{},"histograms":[
                {"name":"h","count":1,"sum_ns":5,"buckets":[
                    {"le_ns":10,"count":1},{"le_ns":null,"count":1}]}]}"#
        )
        .is_ok());
    }
}
