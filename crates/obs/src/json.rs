//! A minimal JSON writer and parser.
//!
//! The build is vendored-only (no serde); this module is just enough
//! JSON for the exporters — and a recursive-descent parser so tests
//! can validate emitted documents without external tools.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Escape a string for a JSON literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render an `f64` the way JSON expects (no NaN/Inf — mapped to null).
pub fn number(v: f64) -> String {
    if v.is_finite() {
        // Keep integers clean: 3 not 3.0 is also valid JSON.
        if v == v.trunc() && v.abs() < 1e15 {
            format!("{}", v as i64)
        } else {
            format!("{v}")
        }
    } else {
        "null".to_string()
    }
}

/// An append-only JSON document builder that inserts commas for you.
#[derive(Debug, Default)]
pub struct JsonWriter {
    buf: String,
    /// Per open scope: whether a value has been written yet.
    stack: Vec<bool>,
}

impl JsonWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    fn before_value(&mut self) {
        if let Some(has) = self.stack.last_mut() {
            if *has {
                self.buf.push(',');
            }
            *has = true;
        }
    }

    /// Open `{`.
    pub fn begin_object(&mut self) {
        self.before_value();
        self.buf.push('{');
        self.stack.push(false);
    }

    /// Close `}`.
    pub fn end_object(&mut self) {
        self.stack.pop();
        self.buf.push('}');
    }

    /// Open `[`.
    pub fn begin_array(&mut self) {
        self.before_value();
        self.buf.push('[');
        self.stack.push(false);
    }

    /// Close `]`.
    pub fn end_array(&mut self) {
        self.stack.pop();
        self.buf.push(']');
    }

    /// Write `"key":` (the next write supplies the value).
    pub fn key(&mut self, k: &str) {
        self.before_value();
        self.buf.push('"');
        self.buf.push_str(&escape(k));
        self.buf.push_str("\":");
        // The key's value follows without a comma.
        if let Some(has) = self.stack.last_mut() {
            *has = false;
        }
    }

    /// Write a string value.
    pub fn value_str(&mut self, v: &str) {
        self.before_value();
        self.buf.push('"');
        self.buf.push_str(&escape(v));
        self.buf.push('"');
    }

    /// Write an unsigned integer value.
    pub fn value_u64(&mut self, v: u64) {
        self.before_value();
        let _ = write!(self.buf, "{v}");
    }

    /// Write a float value.
    pub fn value_f64(&mut self, v: f64) {
        self.before_value();
        self.buf.push_str(&number(v));
    }

    /// Write a boolean value.
    pub fn value_bool(&mut self, v: bool) {
        self.before_value();
        self.buf.push_str(if v { "true" } else { "false" });
    }

    /// Write `null`.
    pub fn value_null(&mut self) {
        self.before_value();
        self.buf.push_str("null");
    }

    /// Take the rendered document.
    pub fn finish(self) -> String {
        self.buf
    }
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as f64).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object (key order not preserved).
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Member of an object by key.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object map.
    pub fn as_object(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The value as a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an f64.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }
}

/// Parse a JSON document.
pub fn parse(input: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {:?} at byte {}", other, self.pos)),
        }
    }

    fn literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|e| format!("bad number `{text}`: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                other => return Err(format!("expected , or ] got {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(map));
                }
                other => return Err(format!("expected , or }} got {other:?}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_builds_nested_documents() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("a");
        w.value_u64(1);
        w.key("b");
        w.begin_array();
        w.value_str("x\"y");
        w.value_bool(true);
        w.value_null();
        w.value_f64(1.5);
        w.end_array();
        w.end_object();
        assert_eq!(w.finish(), r#"{"a":1,"b":["x\"y",true,null,1.5]}"#);
    }

    #[test]
    fn parser_round_trips() {
        let doc = r#"{"a": 1, "b": [true, null, -2.5, "s\n"], "c": {"d": "e"}}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("a").and_then(JsonValue::as_u64), Some(1));
        let b = v.get("b").and_then(JsonValue::as_array).unwrap();
        assert_eq!(b[0], JsonValue::Bool(true));
        assert_eq!(b[1], JsonValue::Null);
        assert_eq!(b[2].as_f64(), Some(-2.5));
        assert_eq!(b[3].as_str(), Some("s\n"));
        assert_eq!(
            v.get("c")
                .and_then(|c| c.get("d"))
                .and_then(JsonValue::as_str),
            Some("e")
        );
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{}extra").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn escapes_control_characters() {
        assert_eq!(escape("a\u{1}b"), "a\\u0001b");
        assert_eq!(parse("\"a\\u0041b\"").unwrap().as_str(), Some("aAb"));
    }
}
