//! Structured event tracing: a bounded ring of typed, timestamped
//! events, exportable as JSONL (one object per line) or as a
//! `chrome://tracing` / Perfetto-compatible trace document.

use crate::json::JsonWriter;
use crate::profile::Stage;
use std::collections::VecDeque;
use std::sync::Mutex;

/// One structured runtime event.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A window started processing.
    WindowOpen {
        /// Window index.
        window: u64,
        /// Packets in the window.
        packets: u64,
    },
    /// A window closed.
    WindowClose {
        /// Window index.
        window: u64,
        /// Tuples delivered to the stream processor.
        tuples_to_sp: u64,
        /// Collision shunts within the window.
        shunts: u64,
    },
    /// The planner produced a global plan.
    PlanCompile {
        /// Strategy label (`Sonata`, `Max-DP`, ...).
        mode: String,
        /// Queries planned.
        queries: u64,
        /// Predicted tuples per window.
        predicted_tuples: f64,
    },
    /// The chosen refinement chain for one query.
    RefinementChain {
        /// The query.
        query: u32,
        /// Levels in execution order.
        levels: Vec<u8>,
    },
    /// One ILP solve finished.
    IlpSolve {
        /// Branch-and-bound nodes explored.
        nodes: u64,
        /// Simplex pivots performed.
        pivots: u64,
        /// Solve wall time.
        wall_ns: u64,
        /// Objective of the incumbent.
        objective: f64,
    },
    /// A window-boundary control-plane update was applied.
    BoundaryUpdate {
        /// Window index.
        window: u64,
        /// Dynamic-filter entries written.
        entries: u64,
        /// Simulated control-plane latency.
        latency_ns: u64,
    },
    /// A window was fanned out across engine shards.
    ShardDispatch {
        /// The stream job.
        job: u32,
        /// Shards occupied.
        shards: u64,
    },
    /// Shard results were unioned.
    ShardMerge {
        /// The stream job.
        job: u32,
        /// Merge wall time.
        wall_ns: u64,
    },
    /// Collision pressure crossed the re-plan threshold.
    ReplanTrigger {
        /// Window index.
        window: u64,
        /// Plan divergence on the drift monitor's unified scale
        /// (1.0 = per-query load off by 100% of prediction, or
        /// shunts at the configured re-plan fraction).
        divergence: f64,
    },
    /// A re-solved plan was swapped in at a window boundary.
    PlanSwap {
        /// First window executed under the new plan.
        window: u64,
        /// Epoch of the swapped-in plan.
        epoch: u64,
        /// Digest of the swapped-in plan's deployment.
        plan_digest: u64,
        /// Whether the MILP re-solve was warm-started from the
        /// committed plan (false for the greedy path or a cold solve).
        warm: bool,
        /// Re-solve wall time (planner thread, off the window path).
        solve_wall_ns: u64,
    },
    /// A stream worker panicked (contained).
    WorkerPanic {
        /// The stream job.
        job: u32,
        /// Rendered panic payload.
        message: String,
    },
    /// A crashed pool worker was replaced (registrations replayed).
    WorkerRespawn {
        /// The respawned shard index.
        shard: u64,
    },
    /// Faults of one kind were injected into a window (emitted at
    /// window close from the injector's record).
    FaultInjected {
        /// Window index.
        window: u64,
        /// Fault kind label (matches the
        /// `sonata_faults_injected{kind=...}` metric).
        kind: String,
        /// Injections of this kind within the window.
        count: u64,
    },
    /// A window completed under injected faults and/or degradation
    /// responses — the event form of the report's `DegradedWindow`
    /// marker.
    WindowDegraded {
        /// Window index.
        window: u64,
        /// Total faults injected in the window.
        faults: u64,
    },
    /// A profiled pipeline stage completed (also folded into the
    /// `sonata_stage_ns` histogram).
    StageSpan {
        /// The stage.
        stage: Stage,
        /// Window index (0 when not window-scoped).
        window: u64,
        /// Stage wall time.
        wall_ns: u64,
    },
    /// A notable transport frame crossed the switch↔collector wire
    /// (window dumps and control batches; per-report frames are
    /// counted, not traced).
    NetFrame {
        /// Window index the frame belongs to.
        window: u64,
        /// Frame label (`window_dump`, `control`, ...).
        kind: String,
        /// Encoded frame size in bytes.
        bytes: u64,
    },
    /// The switch-side transport client re-dialed the collector.
    Reconnect {
        /// Re-dial attempt number within one reconnect episode.
        attempt: u64,
        /// Backoff slept before this attempt.
        backoff_ms: u64,
    },
    /// A distributed-trace span completed: a stage execution with
    /// trace identity, parented across process (and wire) boundaries.
    /// Stage-shaped spans are also folded into `sonata_stage_ns`.
    Span {
        /// Trace id (shared by every span of one window, fabric-wide).
        trace: u64,
        /// This span's id.
        span: u64,
        /// Parent span id (0 for a window root).
        parent: u64,
        /// Span name — a stage label, or `window` for roots.
        name: &'static str,
        /// Emitting process (`switch-0`, `shard-1`, `collector`).
        process: String,
        /// Window index.
        window: u64,
        /// Span wall time.
        wall_ns: u64,
    },
    /// A sketch-backed register exceeded its design load: the
    /// declared error bound no longer holds and the planner should
    /// re-size (or the operator widen) the sketch.
    SketchSaturated {
        /// The owning stateful task (`q1_r32_b0` form).
        task: String,
        /// Layout name (`count-min`, `bloom`, `hll`).
        layout: &'static str,
        /// Keys admitted this window.
        keys: u64,
        /// Design capacity the sketch was provisioned for.
        capacity: u64,
    },
    /// A fabric merged one window's per-switch partials into the
    /// global result (multi-switch runs only).
    FabricMerge {
        /// Window index.
        window: u64,
        /// Switches whose partials contributed.
        switches: u64,
        /// Bitmask of switches that failed to close the window and
        /// whose partials were discarded.
        stragglers: u64,
    },
}

impl EventKind {
    /// Short type tag used in exports.
    pub fn tag(&self) -> &'static str {
        match self {
            EventKind::WindowOpen { .. } => "window_open",
            EventKind::WindowClose { .. } => "window_close",
            EventKind::PlanCompile { .. } => "plan_compile",
            EventKind::RefinementChain { .. } => "refinement_chain",
            EventKind::IlpSolve { .. } => "ilp_solve",
            EventKind::BoundaryUpdate { .. } => "boundary_update",
            EventKind::ShardDispatch { .. } => "shard_dispatch",
            EventKind::ShardMerge { .. } => "shard_merge",
            EventKind::ReplanTrigger { .. } => "replan_trigger",
            EventKind::PlanSwap { .. } => "plan_swap",
            EventKind::WorkerPanic { .. } => "worker_panic",
            EventKind::WorkerRespawn { .. } => "worker_respawn",
            EventKind::FaultInjected { .. } => "fault_injected",
            EventKind::WindowDegraded { .. } => "window_degraded",
            EventKind::StageSpan { .. } => "stage_span",
            EventKind::NetFrame { .. } => "net_frame",
            EventKind::Reconnect { .. } => "reconnect",
            EventKind::Span { .. } => "span",
            EventKind::SketchSaturated { .. } => "sketch_saturated",
            EventKind::FabricMerge { .. } => "fabric_merge",
        }
    }

    /// Duration for span-shaped events, if any.
    fn span_ns(&self) -> Option<u64> {
        match self {
            EventKind::StageSpan { wall_ns, .. }
            | EventKind::IlpSolve { wall_ns, .. }
            | EventKind::ShardMerge { wall_ns, .. }
            | EventKind::Span { wall_ns, .. } => Some(*wall_ns),
            _ => None,
        }
    }

    /// Write the event-specific fields into an open JSON object.
    fn write_fields(&self, w: &mut JsonWriter) {
        match self {
            EventKind::WindowOpen { window, packets } => {
                w.key("window");
                w.value_u64(*window);
                w.key("packets");
                w.value_u64(*packets);
            }
            EventKind::WindowClose {
                window,
                tuples_to_sp,
                shunts,
            } => {
                w.key("window");
                w.value_u64(*window);
                w.key("tuples_to_sp");
                w.value_u64(*tuples_to_sp);
                w.key("shunts");
                w.value_u64(*shunts);
            }
            EventKind::PlanCompile {
                mode,
                queries,
                predicted_tuples,
            } => {
                w.key("mode");
                w.value_str(mode);
                w.key("queries");
                w.value_u64(*queries);
                w.key("predicted_tuples");
                w.value_f64(*predicted_tuples);
            }
            EventKind::RefinementChain { query, levels } => {
                w.key("query");
                w.value_u64(*query as u64);
                w.key("levels");
                w.begin_array();
                for l in levels {
                    w.value_u64(*l as u64);
                }
                w.end_array();
            }
            EventKind::IlpSolve {
                nodes,
                pivots,
                wall_ns,
                objective,
            } => {
                w.key("nodes");
                w.value_u64(*nodes);
                w.key("pivots");
                w.value_u64(*pivots);
                w.key("wall_ns");
                w.value_u64(*wall_ns);
                w.key("objective");
                w.value_f64(*objective);
            }
            EventKind::BoundaryUpdate {
                window,
                entries,
                latency_ns,
            } => {
                w.key("window");
                w.value_u64(*window);
                w.key("entries");
                w.value_u64(*entries);
                w.key("latency_ns");
                w.value_u64(*latency_ns);
            }
            EventKind::ShardDispatch { job, shards } => {
                w.key("job");
                w.value_u64(*job as u64);
                w.key("shards");
                w.value_u64(*shards);
            }
            EventKind::ShardMerge { job, wall_ns } => {
                w.key("job");
                w.value_u64(*job as u64);
                w.key("wall_ns");
                w.value_u64(*wall_ns);
            }
            EventKind::ReplanTrigger { window, divergence } => {
                w.key("window");
                w.value_u64(*window);
                w.key("divergence");
                w.value_f64(*divergence);
            }
            EventKind::PlanSwap {
                window,
                epoch,
                plan_digest,
                warm,
                solve_wall_ns,
            } => {
                w.key("window");
                w.value_u64(*window);
                w.key("epoch");
                w.value_u64(*epoch);
                w.key("plan_digest");
                w.value_u64(*plan_digest);
                w.key("warm");
                w.value_bool(*warm);
                w.key("solve_wall_ns");
                w.value_u64(*solve_wall_ns);
            }
            EventKind::WorkerPanic { job, message } => {
                w.key("job");
                w.value_u64(*job as u64);
                w.key("message");
                w.value_str(message);
            }
            EventKind::WorkerRespawn { shard } => {
                w.key("shard");
                w.value_u64(*shard);
            }
            EventKind::FaultInjected {
                window,
                kind,
                count,
            } => {
                w.key("window");
                w.value_u64(*window);
                w.key("kind");
                w.value_str(kind);
                w.key("count");
                w.value_u64(*count);
            }
            EventKind::WindowDegraded { window, faults } => {
                w.key("window");
                w.value_u64(*window);
                w.key("faults");
                w.value_u64(*faults);
            }
            EventKind::StageSpan {
                stage,
                window,
                wall_ns,
            } => {
                w.key("stage");
                w.value_str(stage.name());
                w.key("window");
                w.value_u64(*window);
                w.key("wall_ns");
                w.value_u64(*wall_ns);
            }
            EventKind::NetFrame {
                window,
                kind,
                bytes,
            } => {
                w.key("window");
                w.value_u64(*window);
                w.key("kind");
                w.value_str(kind);
                w.key("bytes");
                w.value_u64(*bytes);
            }
            EventKind::Reconnect {
                attempt,
                backoff_ms,
            } => {
                w.key("attempt");
                w.value_u64(*attempt);
                w.key("backoff_ms");
                w.value_u64(*backoff_ms);
            }
            EventKind::SketchSaturated {
                task,
                layout,
                keys,
                capacity,
            } => {
                w.key("task");
                w.value_str(task);
                w.key("layout");
                w.value_str(layout);
                w.key("keys");
                w.value_u64(*keys);
                w.key("capacity");
                w.value_u64(*capacity);
            }
            EventKind::Span {
                trace,
                span,
                parent,
                name,
                process,
                window,
                wall_ns,
            } => {
                w.key("trace");
                w.value_u64(*trace);
                w.key("span");
                w.value_u64(*span);
                w.key("parent");
                w.value_u64(*parent);
                w.key("name");
                w.value_str(name);
                w.key("process");
                w.value_str(process);
                w.key("window");
                w.value_u64(*window);
                w.key("wall_ns");
                w.value_u64(*wall_ns);
            }
            EventKind::FabricMerge {
                window,
                switches,
                stragglers,
            } => {
                w.key("window");
                w.value_u64(*window);
                w.key("switches");
                w.value_u64(*switches);
                w.key("stragglers");
                w.value_u64(*stragglers);
            }
        }
    }
}

/// A timestamped event.
#[derive(Debug, Clone, PartialEq)]
pub struct TracedEvent {
    /// Nanoseconds since the handle's epoch.
    pub ts_ns: u64,
    /// The typed payload.
    pub kind: EventKind,
}

impl TracedEvent {
    /// Render as one JSON object (a JSONL line, sans newline).
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("ts_ns");
        w.value_u64(self.ts_ns);
        w.key("type");
        w.value_str(self.kind.tag());
        self.kind.write_fields(&mut w);
        w.end_object();
        w.finish()
    }
}

/// A bounded ring of events: pushes past the capacity evict the oldest
/// entry, and a drop counter records the loss (collection overhead
/// must itself stay bounded and measured).
#[derive(Debug)]
pub struct EventRing {
    inner: Mutex<RingInner>,
    capacity: usize,
}

#[derive(Debug, Default)]
struct RingInner {
    events: VecDeque<TracedEvent>,
    dropped: u64,
}

impl EventRing {
    /// A ring holding at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        EventRing {
            inner: Mutex::new(RingInner::default()),
            capacity: capacity.max(1),
        }
    }

    /// Append an event, evicting the oldest when full.
    pub fn push(&self, event: TracedEvent) {
        let mut inner = self.inner.lock().unwrap();
        if inner.events.len() == self.capacity {
            inner.events.pop_front();
            inner.dropped += 1;
        }
        inner.events.push_back(event);
    }

    /// Copy the retained events, oldest first.
    pub fn events(&self) -> Vec<TracedEvent> {
        self.inner.lock().unwrap().events.iter().cloned().collect()
    }

    /// Events evicted so far.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().unwrap().dropped
    }

    /// The ring's capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

/// Render events as JSONL (one JSON object per line).
pub fn to_jsonl(events: &[TracedEvent]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&e.to_json());
        out.push('\n');
    }
    out
}

/// Render events as a `chrome://tracing` JSON document (the "JSON
/// array format"): span-shaped events become complete (`"ph":"X"`)
/// slices, everything else instant (`"ph":"i"`) marks. Timestamps are
/// microseconds, as the format requires.
///
/// Processes map to chrome pids: distributed-trace [`EventKind::Span`]
/// events carry a `process` name (`switch-0`, `shard-1`, `collector`)
/// and each distinct name gets its own pid lane (announced via `"M"`
/// `process_name` metadata events); everything else lands in the
/// `runtime` process. Within a process, tid is the stage lane
/// (`Stage::index() + 1`; window-root spans and untyped events use
/// tid 0), so the flamegraph reads switch/shard per row group and
/// stage per row.
pub fn to_chrome_trace(events: &[TracedEvent]) -> String {
    // First-seen process-name → pid assignment. Pid 1 is always the
    // host `runtime` process for instants and untraced stage spans.
    let mut procs: Vec<&str> = vec!["runtime"];
    for e in events {
        if let EventKind::Span { process, .. } = &e.kind {
            if !procs.iter().any(|p| p == process) {
                procs.push(process.as_str());
            }
        }
    }
    let pid_of =
        |name: &str| -> u64 { procs.iter().position(|p| *p == name).unwrap_or(0) as u64 + 1 };
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("traceEvents");
    w.begin_array();
    for (i, p) in procs.iter().enumerate() {
        w.begin_object();
        w.key("name");
        w.value_str("process_name");
        w.key("ph");
        w.value_str("M");
        w.key("pid");
        w.value_u64(i as u64 + 1);
        w.key("args");
        w.begin_object();
        w.key("name");
        w.value_str(p);
        w.end_object();
        w.end_object();
    }
    for e in events {
        w.begin_object();
        w.key("name");
        match &e.kind {
            EventKind::StageSpan { stage, .. } => w.value_str(stage.name()),
            EventKind::Span { name, .. } => w.value_str(name),
            other => w.value_str(other.tag()),
        }
        w.key("cat");
        w.value_str("sonata");
        w.key("pid");
        match &e.kind {
            EventKind::Span { process, .. } => w.value_u64(pid_of(process)),
            _ => w.value_u64(1),
        }
        w.key("tid");
        let tid = match &e.kind {
            EventKind::StageSpan { stage, .. } => stage.index() as u64 + 1,
            EventKind::Span { name, .. } => Stage::from_name(name)
                .map(|s| s.index() as u64 + 1)
                .unwrap_or(0),
            _ => 0,
        };
        w.value_u64(tid);
        match e.kind.span_ns() {
            Some(dur) => {
                w.key("ph");
                w.value_str("X");
                // Spans are recorded at completion; start = ts - dur.
                w.key("ts");
                w.value_f64(e.ts_ns.saturating_sub(dur) as f64 / 1e3);
                w.key("dur");
                w.value_f64(dur as f64 / 1e3);
            }
            None => {
                w.key("ph");
                w.value_str("i");
                w.key("s");
                w.value_str("g");
                w.key("ts");
                w.value_f64(e.ts_ns as f64 / 1e3);
            }
        }
        w.key("args");
        w.begin_object();
        e.kind.write_fields(&mut w);
        w.end_object();
        w.end_object();
    }
    w.end_array();
    w.end_object();
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn ev(ts: u64, window: u64) -> TracedEvent {
        TracedEvent {
            ts_ns: ts,
            kind: EventKind::WindowOpen {
                window,
                packets: 10,
            },
        }
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let ring = EventRing::new(2);
        ring.push(ev(1, 0));
        ring.push(ev(2, 1));
        ring.push(ev(3, 2));
        let events = ring.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].ts_ns, 2);
        assert_eq!(ring.dropped(), 1);
        assert_eq!(ring.capacity(), 2);
    }

    #[test]
    fn jsonl_lines_parse_individually() {
        let events = vec![
            ev(5, 0),
            TracedEvent {
                ts_ns: 9,
                kind: EventKind::StageSpan {
                    stage: Stage::PacketLoop,
                    window: 0,
                    wall_ns: 4,
                },
            },
        ];
        let jsonl = to_jsonl(&events);
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        let first = json::parse(lines[0]).unwrap();
        assert_eq!(
            first.get("type").and_then(json::JsonValue::as_str),
            Some("window_open")
        );
        let second = json::parse(lines[1]).unwrap();
        assert_eq!(
            second.get("stage").and_then(json::JsonValue::as_str),
            Some("packet_loop")
        );
    }

    #[test]
    fn chrome_trace_is_valid_json_with_spans_and_instants() {
        let events = vec![
            ev(1_000, 0),
            TracedEvent {
                ts_ns: 10_000,
                kind: EventKind::StageSpan {
                    stage: Stage::Merge,
                    window: 3,
                    wall_ns: 4_000,
                },
            },
        ];
        let doc = json::parse(&to_chrome_trace(&events)).unwrap();
        let traced = doc.get("traceEvents").and_then(|v| v.as_array()).unwrap();
        // One `M` process_name metadata event for the runtime pid,
        // then the two payload events.
        assert_eq!(traced.len(), 3);
        assert_eq!(
            traced[0].get("ph").and_then(json::JsonValue::as_str),
            Some("M")
        );
        assert_eq!(
            traced[1].get("ph").and_then(json::JsonValue::as_str),
            Some("i")
        );
        assert_eq!(
            traced[2].get("ph").and_then(json::JsonValue::as_str),
            Some("X")
        );
        // Span start = (10_000 - 4_000) ns = 6 µs.
        assert_eq!(
            traced[2].get("ts").and_then(json::JsonValue::as_f64),
            Some(6.0)
        );
        assert_eq!(
            traced[2].get("dur").and_then(json::JsonValue::as_f64),
            Some(4.0)
        );
        // StageSpan lands in the runtime process on the stage's lane.
        assert_eq!(
            traced[2].get("pid").and_then(json::JsonValue::as_u64),
            Some(1)
        );
        assert_eq!(
            traced[2].get("tid").and_then(json::JsonValue::as_u64),
            Some(Stage::Merge.index() as u64 + 1)
        );
    }

    #[test]
    fn chrome_trace_assigns_pids_per_process_and_tids_per_stage() {
        let span = |process: &str, name: &'static str| TracedEvent {
            ts_ns: 10_000,
            kind: EventKind::Span {
                trace: 11,
                span: 22,
                parent: 0,
                name,
                process: process.to_string(),
                window: 0,
                wall_ns: 1_000,
            },
        };
        let events = vec![
            span("switch-0", "packet_loop"),
            span("shard-1", "worker_execute"),
            span("switch-0", "window"),
        ];
        let doc = json::parse(&to_chrome_trace(&events)).unwrap();
        let traced = doc.get("traceEvents").and_then(|v| v.as_array()).unwrap();
        // 3 metadata events (runtime, switch-0, shard-1) + 3 spans.
        assert_eq!(traced.len(), 6);
        let pid = |i: usize| traced[i].get("pid").and_then(json::JsonValue::as_u64);
        let tid = |i: usize| traced[i].get("tid").and_then(json::JsonValue::as_u64);
        // switch-0 is pid 2 (after runtime), shard-1 pid 3.
        assert_eq!(pid(3), Some(2));
        assert_eq!(pid(4), Some(3));
        assert_eq!(pid(5), Some(2));
        assert_eq!(tid(3), Some(Stage::PacketLoop.index() as u64 + 1));
        assert_eq!(tid(4), Some(Stage::WorkerExecute.index() as u64 + 1));
        // Window roots get the tid-0 lane.
        assert_eq!(tid(5), Some(0));
        // Span identity rides in args for the stitching checker.
        let args = traced[3].get("args").unwrap();
        assert_eq!(
            args.get("trace").and_then(json::JsonValue::as_u64),
            Some(11)
        );
        assert_eq!(
            args.get("parent").and_then(json::JsonValue::as_u64),
            Some(0)
        );
    }

    #[test]
    fn every_event_kind_renders() {
        let kinds = vec![
            EventKind::WindowClose {
                window: 1,
                tuples_to_sp: 2,
                shunts: 3,
            },
            EventKind::PlanCompile {
                mode: "Sonata".into(),
                queries: 2,
                predicted_tuples: 10.5,
            },
            EventKind::RefinementChain {
                query: 1,
                levels: vec![8, 32],
            },
            EventKind::IlpSolve {
                nodes: 4,
                pivots: 100,
                wall_ns: 12,
                objective: 8.0,
            },
            EventKind::BoundaryUpdate {
                window: 0,
                entries: 5,
                latency_ns: 9,
            },
            EventKind::ShardDispatch {
                job: 1001,
                shards: 4,
            },
            EventKind::ShardMerge {
                job: 1001,
                wall_ns: 77,
            },
            EventKind::ReplanTrigger {
                window: 2,
                divergence: 0.25,
            },
            EventKind::PlanSwap {
                window: 4,
                epoch: 1,
                plan_digest: 0xFEED,
                warm: true,
                solve_wall_ns: 1_250_000,
            },
            EventKind::WorkerPanic {
                job: 1001,
                message: "boom \"quoted\"".into(),
            },
            EventKind::WorkerRespawn { shard: 2 },
            EventKind::FaultInjected {
                window: 4,
                kind: "report_drop".into(),
                count: 6,
            },
            EventKind::WindowDegraded {
                window: 4,
                faults: 7,
            },
            EventKind::NetFrame {
                window: 5,
                kind: "window_dump".into(),
                bytes: 512,
            },
            EventKind::Reconnect {
                attempt: 2,
                backoff_ms: 4,
            },
            EventKind::Span {
                trace: 0xABC,
                span: 0xDEF,
                parent: 0x123,
                name: "packet_loop",
                process: "switch-0".into(),
                window: 3,
                wall_ns: 450,
            },
            EventKind::SketchSaturated {
                task: "q1_r32_b0".into(),
                layout: "count-min",
                keys: 2048,
                capacity: 1024,
            },
            EventKind::FabricMerge {
                window: 6,
                switches: 4,
                stragglers: 0b10,
            },
        ];
        for kind in kinds {
            let e = TracedEvent { ts_ns: 1, kind };
            let parsed = json::parse(&e.to_json()).unwrap();
            assert_eq!(
                parsed.get("type").and_then(json::JsonValue::as_str),
                Some(e.kind.tag())
            );
        }
    }
}
