//! Deterministic fault injection for the Sonata runtime.
//!
//! Sonata's evaluation assumes a lossless, fail-stop-free world: every
//! switch report reaches the emitter, every shard worker finishes its
//! window, every dynamic-filter write lands. This crate supplies the
//! adversary: a seed-deterministic [`FaultInjector`] threaded through
//! `RuntimeConfig` (the same shape as `ObsHandle` in `sonata-obs`)
//! that can, per window and per seed,
//!
//! - drop / duplicate / reorder / delay switch→runtime report tuples
//!   at the `Switch` egress,
//! - crash or stall individual `ShardedEngine` workers mid-window, and
//! - fail dynamic-filter boundary writes.
//!
//! Every decision is a pure function of `(seed, window, site,
//! sequence-number)` via a splitmix64 hash — never of wall-clock time,
//! thread interleaving, or worker count — so the same plan and seed
//! produce the same faults (and therefore the same degraded-window
//! markers) across 1/2/4/8 workers and across reruns. The injector
//! only *decides*; the switch, engine, and runtime carry out the
//! faults and their graceful-degradation responses.
//!
//! A disabled injector (`FaultPlan::none()`) is a `None` handle: no
//! allocation, no lock, no hashing — the hot path pays one branch,
//! exactly like a disabled `ObsHandle`.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Every fault kind the injector can produce, used both for plan
/// bookkeeping and for the `sonata_faults_injected{kind=...}` metric
/// label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultKind {
    /// A switch report silently lost at egress.
    ReportDrop,
    /// A switch report delivered twice.
    ReportDuplicate,
    /// A switch report displaced behind the next packet's reports.
    ReportReorder,
    /// A switch report held back `delay_packets` packets.
    ReportDelay,
    /// A delayed report still undelivered at window close — dropped
    /// rather than misattributed to the next window.
    ReportLateDrop,
    /// A shard worker killed mid-window.
    WorkerCrash,
    /// A shard worker paused for `stall_ms` before executing.
    WorkerStall,
    /// A dynamic-filter boundary write rejected by the switch.
    BoundaryWriteFail,
}

impl FaultKind {
    /// Every kind, in metric-label order.
    pub const ALL: [FaultKind; 8] = [
        FaultKind::ReportDrop,
        FaultKind::ReportDuplicate,
        FaultKind::ReportReorder,
        FaultKind::ReportDelay,
        FaultKind::ReportLateDrop,
        FaultKind::WorkerCrash,
        FaultKind::WorkerStall,
        FaultKind::BoundaryWriteFail,
    ];

    /// Stable snake_case name, used as the `kind` metric label.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::ReportDrop => "report_drop",
            FaultKind::ReportDuplicate => "report_duplicate",
            FaultKind::ReportReorder => "report_reorder",
            FaultKind::ReportDelay => "report_delay",
            FaultKind::ReportLateDrop => "report_late_drop",
            FaultKind::WorkerCrash => "worker_crash",
            FaultKind::WorkerStall => "worker_stall",
            FaultKind::BoundaryWriteFail => "boundary_write_fail",
        }
    }

    fn index(self) -> usize {
        FaultKind::ALL.iter().position(|k| *k == self).unwrap()
    }
}

/// Per-kind injected-fault counts for one window (or a whole run).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultRecord {
    counts: [u64; 8],
}

impl FaultRecord {
    /// Count for one kind.
    pub fn get(&self, kind: FaultKind) -> u64 {
        self.counts[kind.index()]
    }

    /// Add `n` injections of `kind`.
    pub fn bump(&mut self, kind: FaultKind, n: u64) {
        self.counts[kind.index()] += n;
    }

    /// Total injections across all kinds.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// True when nothing was injected.
    pub fn is_empty(&self) -> bool {
        self.total() == 0
    }

    /// `(kind, count)` pairs in [`FaultKind::ALL`] order.
    pub fn pairs(&self) -> impl Iterator<Item = (FaultKind, u64)> + '_ {
        FaultKind::ALL.iter().map(|k| (*k, self.get(*k)))
    }

    /// Fold another record into this one.
    pub fn merge(&mut self, other: &FaultRecord) {
        for (dst, src) in self.counts.iter_mut().zip(other.counts.iter()) {
            *dst += *src;
        }
    }
}

/// Report-level faults at the switch egress. Probabilities are
/// per-mille (‰) so integer arithmetic stays exact; at most one fault
/// applies per report, chosen by partitioning a single 0..1000 roll in
/// the order drop, duplicate, delay, reorder.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReportFaults {
    /// ‰ chance a report is silently dropped.
    pub drop_per_mille: u32,
    /// ‰ chance a report is delivered twice.
    pub duplicate_per_mille: u32,
    /// ‰ chance a report is held back [`Self::delay_packets`] packets
    /// (late survivors are dropped at window close, never leaked into
    /// the next window).
    pub delay_per_mille: u32,
    /// ‰ chance a report is displaced behind the next packet's reports
    /// (a one-packet delay).
    pub reorder_per_mille: u32,
    /// How many packets a delayed report is held back (0 ⇒ 4).
    pub delay_packets: u64,
}

impl ReportFaults {
    fn is_none(&self) -> bool {
        self.drop_per_mille == 0
            && self.duplicate_per_mille == 0
            && self.delay_per_mille == 0
            && self.reorder_per_mille == 0
    }

    /// Effective hold-back distance for delayed reports.
    pub fn effective_delay_packets(&self) -> u64 {
        if self.delay_packets == 0 {
            4
        } else {
            self.delay_packets
        }
    }
}

/// Worker-level faults in the sharded stream engine. Crash selection
/// is per `(window, job)`; a selected job crashes on its first
/// [`Self::consecutive_crashes`] submit attempts and runs on the next,
/// so `1` is recovered by respawn-and-retry and `2` forces the
/// runtime's single-mode fallback.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerFaults {
    /// ‰ chance per `(window, job)` that the executing worker crashes.
    pub crash_per_mille: u32,
    /// How many consecutive attempts crash once selected (0 ⇒ 1).
    pub consecutive_crashes: u32,
    /// ‰ chance per `(window, job)` that the executing worker stalls
    /// for [`Self::stall_ms`] before running.
    pub stall_per_mille: u32,
    /// Stall duration in milliseconds (0 ⇒ 5).
    pub stall_ms: u64,
}

impl WorkerFaults {
    fn is_none(&self) -> bool {
        self.crash_per_mille == 0 && self.stall_per_mille == 0
    }

    /// Effective consecutive-crash count for a selected job.
    pub fn effective_consecutive(&self) -> u32 {
        self.consecutive_crashes.max(1)
    }

    /// Effective stall duration.
    pub fn effective_stall_ms(&self) -> u64 {
        if self.stall_ms == 0 {
            5
        } else {
            self.stall_ms
        }
    }
}

/// Dynamic-filter boundary-write faults. Selection is per window; a
/// selected window fails the first [`Self::consecutive`] write
/// attempts, so values within the runtime's retry bound are recovered
/// by retry-with-backoff and larger values force the update to be
/// skipped for the window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BoundaryFaults {
    /// ‰ chance per window that the boundary write fails.
    pub fail_per_mille: u32,
    /// How many consecutive attempts fail once selected (0 ⇒ 1).
    pub consecutive: u32,
}

impl BoundaryFaults {
    fn is_none(&self) -> bool {
        self.fail_per_mille == 0
    }

    /// Effective consecutive-failure count for a selected window.
    pub fn effective_consecutive(&self) -> u32 {
        self.consecutive.max(1)
    }
}

/// A complete, serializable-by-hand description of what to inject.
/// `FaultPlan::none()` (the default) disables everything and makes the
/// injector a no-op `None` handle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed for every fault decision. Two runs with the same plan are
    /// identical; changing the seed re-rolls every site.
    pub seed: u64,
    /// Restrict report and worker faults to one source query (raw
    /// query id; refinement-job ids `source*1000+level` match their
    /// source). `None` targets every query. Boundary faults are
    /// per-window and ignore the target.
    pub target_query: Option<u32>,
    /// Restrict switch-scoped faults (the egress report seam) to one
    /// fabric switch: [`FaultInjector::for_switch`] yields a disabled
    /// handle on every other switch. `None` faults every switch.
    /// Single-switch runtimes are switch 0.
    pub target_switch: Option<u16>,
    /// Switch-egress report faults.
    pub report: ReportFaults,
    /// Shard-worker faults.
    pub worker: WorkerFaults,
    /// Boundary-write faults.
    pub boundary: BoundaryFaults,
}

impl FaultPlan {
    /// The empty plan: nothing is injected and the runtime's fault
    /// paths compile down to a single branch.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// True when no fault has a non-zero probability.
    pub fn is_none(&self) -> bool {
        self.report.is_none() && self.worker.is_none() && self.boundary.is_none()
    }

    fn targets(&self, query: u32) -> bool {
        match self.target_query {
            None => true,
            Some(t) => query == t || (query >= 1000 && query / 1000 == t),
        }
    }
}

/// What the switch should do with one egress report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReportVerdict {
    /// Pass through untouched.
    Deliver,
    /// Silently lose it.
    Drop,
    /// Deliver it twice.
    Duplicate,
    /// Hold it back `packets` packets (deliver-late or late-drop at
    /// window close).
    Delay {
        /// Hold-back distance in packets.
        packets: u64,
    },
}

/// What the engine should do with one submit attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerVerdict {
    /// Execute normally.
    Run,
    /// Kill the executing worker (the submit fails with a panic
    /// error).
    Crash,
    /// Sleep `ms` milliseconds, then execute normally.
    Stall {
        /// Stall duration in milliseconds.
        ms: u64,
    },
}

/// splitmix64: tiny, high-quality, and dependency-free. Good enough to
/// decorrelate fault sites; not a crypto RNG.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// One deterministic 0..1000 roll keyed on the seed and a fault site.
fn roll(seed: u64, domain: u64, a: u64, b: u64, c: u64) -> u64 {
    let mixed = seed
        ^ domain.wrapping_mul(0x9e37_79b9_7f4a_7c15)
        ^ a.wrapping_mul(0xc2b2_ae3d_27d4_eb4f)
        ^ b.wrapping_mul(0x1656_67b1_9e37_79f9)
        ^ c.wrapping_mul(0x27d4_eb2f_1656_67c5);
    splitmix64(mixed) % 1000
}

const DOMAIN_EGRESS: u64 = 1;
const DOMAIN_CRASH: u64 = 2;
const DOMAIN_STALL: u64 = 3;
const DOMAIN_BOUNDARY: u64 = 4;

#[derive(Debug, Default)]
struct State {
    window: u64,
    /// Per-window monotonically increasing egress roll index, so every
    /// report gets an independent decision.
    egress_seq: u64,
    /// Per-`job` submit-attempt counters, reset each window.
    attempts: BTreeMap<u32, u32>,
    /// Boundary-write attempt counter, reset each window.
    boundary_attempts: u32,
    record: FaultRecord,
    totals: FaultRecord,
}

#[derive(Debug)]
struct Inner {
    plan: FaultPlan,
    state: Mutex<State>,
}

/// Handle to the fault layer, threaded from `RuntimeConfig` through
/// the switch, the stream engine, and the runtime — the same shape as
/// `ObsHandle`. Cheap to clone; all clones share one decision state.
///
/// Every decision method is called from the serial runtime thread (the
/// switch egress, the engine submit path, and the boundary-write loop
/// all run there), so the internal mutex is uncontended; it exists so
/// the handle stays `Send + Sync` for the worker threads that carry
/// verdicts, not for real concurrency.
#[derive(Debug, Clone, Default)]
pub struct FaultInjector(Option<Arc<Inner>>);

impl FaultInjector {
    /// A no-op injector: every verdict is `Deliver`/`Run`, no state,
    /// no hashing.
    pub fn disabled() -> Self {
        FaultInjector(None)
    }

    /// Build an injector for a plan. An empty plan yields a disabled
    /// handle, so `FaultPlan::none()` is exactly the pre-fault-layer
    /// runtime.
    pub fn from_plan(plan: &FaultPlan) -> Self {
        if plan.is_none() {
            FaultInjector(None)
        } else {
            FaultInjector(Some(Arc::new(Inner {
                plan: *plan,
                state: Mutex::new(State::default()),
            })))
        }
    }

    /// Build the egress-seam injector for one fabric switch.
    ///
    /// Fault domains are per switch: a plan targeting switch `t`
    /// yields a disabled handle everywhere else, and an untargeted
    /// plan faults every switch — with switch 0 keeping the plan's
    /// seed verbatim (so a 1-switch fabric degrades bit-identically to
    /// the single-switch runtime) and every other switch re-rolling
    /// under a switch-mixed seed, decorrelating fault sites across the
    /// fabric.
    pub fn for_switch(plan: &FaultPlan, switch: u16) -> Self {
        if let Some(t) = plan.target_switch {
            if t != switch {
                return FaultInjector(None);
            }
        }
        let mut scoped = *plan;
        if switch != 0 {
            scoped.seed = splitmix64(plan.seed ^ (u64::from(switch) << 32 | 0x5AB0));
        }
        FaultInjector::from_plan(&scoped)
    }

    /// True when faults can fire.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// The plan behind an enabled handle.
    pub fn plan(&self) -> Option<FaultPlan> {
        self.0.as_ref().map(|inner| inner.plan)
    }

    /// Start a new window: resets per-window attempt counters and the
    /// egress sequence, and folds any unclaimed window record into the
    /// run totals.
    pub fn begin_window(&self, window: u64) {
        if let Some(inner) = &self.0 {
            let mut st = inner.state.lock().unwrap();
            let record = std::mem::take(&mut st.record);
            st.totals.merge(&record);
            st.window = window;
            st.egress_seq = 0;
            st.attempts.clear();
            st.boundary_attempts = 0;
        }
    }

    /// Decide the fate of one switch-egress report for `query`. At
    /// most one fault applies per report.
    pub fn egress(&self, query: u32) -> ReportVerdict {
        let Some(inner) = &self.0 else {
            return ReportVerdict::Deliver;
        };
        let mut st = inner.state.lock().unwrap();
        let seq = st.egress_seq;
        st.egress_seq += 1;
        if !inner.plan.targets(query) {
            return ReportVerdict::Deliver;
        }
        let rf = &inner.plan.report;
        if rf.is_none() {
            return ReportVerdict::Deliver;
        }
        let r = roll(
            inner.plan.seed,
            DOMAIN_EGRESS,
            st.window,
            u64::from(query),
            seq,
        ) as u32;
        let mut edge = rf.drop_per_mille;
        if r < edge {
            st.record.bump(FaultKind::ReportDrop, 1);
            return ReportVerdict::Drop;
        }
        edge = edge.saturating_add(rf.duplicate_per_mille);
        if r < edge {
            st.record.bump(FaultKind::ReportDuplicate, 1);
            return ReportVerdict::Duplicate;
        }
        edge = edge.saturating_add(rf.delay_per_mille);
        if r < edge {
            st.record.bump(FaultKind::ReportDelay, 1);
            return ReportVerdict::Delay {
                packets: rf.effective_delay_packets(),
            };
        }
        edge = edge.saturating_add(rf.reorder_per_mille);
        if r < edge {
            st.record.bump(FaultKind::ReportReorder, 1);
            // A reorder is a one-packet delay: the report re-emerges
            // behind the next packet's reports.
            return ReportVerdict::Delay { packets: 1 };
        }
        ReportVerdict::Deliver
    }

    /// Record `n` delayed reports that were still pending at window
    /// close and were dropped rather than leaked into the next window.
    pub fn note_late_drop(&self, n: u64) {
        if let Some(inner) = &self.0 {
            if n > 0 {
                inner
                    .state
                    .lock()
                    .unwrap()
                    .record
                    .bump(FaultKind::ReportLateDrop, n);
            }
        }
    }

    /// Decide the fate of one engine submit attempt for `job`. Each
    /// call advances the job's per-window attempt counter, so the
    /// runtime's retry discipline (attempt, retry, fall back) maps
    /// onto [`WorkerFaults::consecutive_crashes`] deterministically.
    pub fn worker_verdict(&self, job: u32) -> WorkerVerdict {
        let Some(inner) = &self.0 else {
            return WorkerVerdict::Run;
        };
        let mut st = inner.state.lock().unwrap();
        let attempt = {
            let counter = st.attempts.entry(job).or_insert(0);
            let a = *counter;
            *counter += 1;
            a
        };
        if !inner.plan.targets(job) {
            return WorkerVerdict::Run;
        }
        let wf = &inner.plan.worker;
        if wf.is_none() {
            return WorkerVerdict::Run;
        }
        let window = st.window;
        let crash_selected = wf.crash_per_mille > 0
            && (roll(inner.plan.seed, DOMAIN_CRASH, window, u64::from(job), 0) as u32)
                < wf.crash_per_mille;
        if crash_selected && attempt < wf.effective_consecutive() {
            st.record.bump(FaultKind::WorkerCrash, 1);
            return WorkerVerdict::Crash;
        }
        let stall_selected = wf.stall_per_mille > 0
            && (roll(inner.plan.seed, DOMAIN_STALL, window, u64::from(job), 0) as u32)
                < wf.stall_per_mille;
        if stall_selected {
            st.record.bump(FaultKind::WorkerStall, 1);
            return WorkerVerdict::Stall {
                ms: wf.effective_stall_ms(),
            };
        }
        WorkerVerdict::Run
    }

    /// Decide whether the next boundary-write attempt fails. Each call
    /// advances the per-window attempt counter, so retries map onto
    /// [`BoundaryFaults::consecutive`] deterministically.
    pub fn boundary_write_fails(&self) -> bool {
        let Some(inner) = &self.0 else {
            return false;
        };
        let mut st = inner.state.lock().unwrap();
        let bf = &inner.plan.boundary;
        if bf.is_none() {
            return false;
        }
        let attempt = st.boundary_attempts;
        st.boundary_attempts += 1;
        let selected =
            (roll(inner.plan.seed, DOMAIN_BOUNDARY, st.window, 0, 0) as u32) < bf.fail_per_mille;
        if selected && attempt < bf.effective_consecutive() {
            st.record.bump(FaultKind::BoundaryWriteFail, 1);
            return true;
        }
        false
    }

    /// Drain the current window's record (folding it into the run
    /// totals) — the runtime attaches this to the window's
    /// `DegradedWindow` marker.
    pub fn take_window_record(&self) -> FaultRecord {
        match &self.0 {
            None => FaultRecord::default(),
            Some(inner) => {
                let mut st = inner.state.lock().unwrap();
                let record = std::mem::take(&mut st.record);
                st.totals.merge(&record);
                record
            }
        }
    }

    /// Cumulative injected-fault counts for the whole run (everything
    /// already drained by [`Self::take_window_record`] plus the
    /// current window).
    pub fn totals(&self) -> FaultRecord {
        match &self.0 {
            None => FaultRecord::default(),
            Some(inner) => {
                let st = inner.state.lock().unwrap();
                let mut t = st.totals;
                t.merge(&st.record);
                t
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drop_plan(per_mille: u32) -> FaultPlan {
        FaultPlan {
            seed: 42,
            report: ReportFaults {
                drop_per_mille: per_mille,
                ..ReportFaults::default()
            },
            ..FaultPlan::default()
        }
    }

    #[test]
    fn empty_plan_yields_disabled_injector() {
        let inj = FaultInjector::from_plan(&FaultPlan::none());
        assert!(!inj.is_enabled());
        assert_eq!(inj.egress(7), ReportVerdict::Deliver);
        assert_eq!(inj.worker_verdict(7), WorkerVerdict::Run);
        assert!(!inj.boundary_write_fails());
        assert!(inj.take_window_record().is_empty());
    }

    #[test]
    fn certain_drop_always_drops_and_counts() {
        let inj = FaultInjector::from_plan(&drop_plan(1000));
        inj.begin_window(0);
        for _ in 0..10 {
            assert_eq!(inj.egress(1), ReportVerdict::Drop);
        }
        let rec = inj.take_window_record();
        assert_eq!(rec.get(FaultKind::ReportDrop), 10);
        assert_eq!(rec.total(), 10);
    }

    #[test]
    fn egress_verdicts_are_seed_deterministic() {
        let plan = FaultPlan {
            seed: 7,
            report: ReportFaults {
                drop_per_mille: 100,
                duplicate_per_mille: 100,
                delay_per_mille: 100,
                reorder_per_mille: 100,
                delay_packets: 3,
            },
            ..FaultPlan::default()
        };
        let run = |seed: u64| {
            let inj = FaultInjector::from_plan(&FaultPlan { seed, ..plan });
            let mut verdicts = Vec::new();
            for w in 0..3u64 {
                inj.begin_window(w);
                for _ in 0..200 {
                    verdicts.push(inj.egress(1));
                }
            }
            verdicts
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different seeds must re-roll");
        let verdicts = run(7);
        assert!(verdicts.contains(&ReportVerdict::Drop));
        assert!(verdicts.contains(&ReportVerdict::Duplicate));
        assert!(verdicts.contains(&ReportVerdict::Delay { packets: 3 }));
        assert!(verdicts.contains(&ReportVerdict::Delay { packets: 1 }));
    }

    #[test]
    fn target_query_scopes_report_faults() {
        let plan = FaultPlan {
            target_query: Some(2),
            ..drop_plan(1000)
        };
        let inj = FaultInjector::from_plan(&plan);
        inj.begin_window(0);
        assert_eq!(inj.egress(1), ReportVerdict::Deliver);
        assert_eq!(inj.egress(2), ReportVerdict::Drop);
        // Refinement jobs (source*1000+level) match their source.
        assert_eq!(inj.worker_verdict(1008), WorkerVerdict::Run);
        let plan = FaultPlan {
            target_query: Some(2),
            seed: 42,
            worker: WorkerFaults {
                crash_per_mille: 1000,
                ..WorkerFaults::default()
            },
            ..FaultPlan::default()
        };
        let inj = FaultInjector::from_plan(&plan);
        inj.begin_window(0);
        assert_eq!(inj.worker_verdict(2008), WorkerVerdict::Crash);
        assert_eq!(inj.worker_verdict(1008), WorkerVerdict::Run);
    }

    #[test]
    fn consecutive_crashes_then_recovery() {
        let plan = FaultPlan {
            seed: 1,
            worker: WorkerFaults {
                crash_per_mille: 1000,
                consecutive_crashes: 2,
                ..WorkerFaults::default()
            },
            ..FaultPlan::default()
        };
        let inj = FaultInjector::from_plan(&plan);
        inj.begin_window(3);
        assert_eq!(inj.worker_verdict(9), WorkerVerdict::Crash);
        assert_eq!(inj.worker_verdict(9), WorkerVerdict::Crash);
        assert_eq!(inj.worker_verdict(9), WorkerVerdict::Run);
        // A new window resets the attempt counter.
        inj.begin_window(4);
        assert_eq!(inj.worker_verdict(9), WorkerVerdict::Crash);
        assert_eq!(inj.totals().get(FaultKind::WorkerCrash), 3);
    }

    #[test]
    fn stall_fires_on_the_surviving_attempt() {
        let plan = FaultPlan {
            seed: 1,
            worker: WorkerFaults {
                crash_per_mille: 1000,
                consecutive_crashes: 1,
                stall_per_mille: 1000,
                stall_ms: 2,
            },
            ..FaultPlan::default()
        };
        let inj = FaultInjector::from_plan(&plan);
        inj.begin_window(0);
        assert_eq!(inj.worker_verdict(5), WorkerVerdict::Crash);
        assert_eq!(inj.worker_verdict(5), WorkerVerdict::Stall { ms: 2 });
    }

    #[test]
    fn boundary_failures_are_bounded_per_window() {
        let plan = FaultPlan {
            seed: 11,
            boundary: BoundaryFaults {
                fail_per_mille: 1000,
                consecutive: 2,
            },
            ..FaultPlan::default()
        };
        let inj = FaultInjector::from_plan(&plan);
        inj.begin_window(0);
        assert!(inj.boundary_write_fails());
        assert!(inj.boundary_write_fails());
        assert!(!inj.boundary_write_fails(), "retry bound must recover");
        let rec = inj.take_window_record();
        assert_eq!(rec.get(FaultKind::BoundaryWriteFail), 2);
    }

    #[test]
    fn window_records_drain_into_totals() {
        let inj = FaultInjector::from_plan(&drop_plan(1000));
        inj.begin_window(0);
        inj.egress(1);
        inj.note_late_drop(2);
        let w0 = inj.take_window_record();
        assert_eq!(w0.get(FaultKind::ReportDrop), 1);
        assert_eq!(w0.get(FaultKind::ReportLateDrop), 2);
        inj.begin_window(1);
        inj.egress(1);
        let totals = inj.totals();
        assert_eq!(totals.get(FaultKind::ReportDrop), 2);
        assert_eq!(totals.total(), 4);
        assert!(inj.take_window_record().get(FaultKind::ReportDrop) == 1);
    }

    #[test]
    fn for_switch_scopes_and_reseeds_per_switch() {
        let plan = drop_plan(300);
        // Switch 0 is the plan verbatim: identical verdict sequence to
        // the unscoped injector.
        let seq = |inj: &FaultInjector| {
            inj.begin_window(0);
            (0..100).map(|_| inj.egress(1)).collect::<Vec<_>>()
        };
        let base = seq(&FaultInjector::from_plan(&plan));
        assert_eq!(seq(&FaultInjector::for_switch(&plan, 0)), base);
        // Other switches re-roll under their own seed.
        assert_ne!(seq(&FaultInjector::for_switch(&plan, 1)), base);
        assert_ne!(
            seq(&FaultInjector::for_switch(&plan, 1)),
            seq(&FaultInjector::for_switch(&plan, 2))
        );
        // A targeted plan disables every other switch entirely.
        let targeted = FaultPlan {
            target_switch: Some(1),
            ..plan
        };
        assert!(!FaultInjector::for_switch(&targeted, 0).is_enabled());
        assert!(FaultInjector::for_switch(&targeted, 1).is_enabled());
        assert_eq!(
            seq(&FaultInjector::for_switch(&targeted, 1)),
            seq(&FaultInjector::from_plan(&FaultPlan {
                seed: FaultInjector::for_switch(&targeted, 1).plan().unwrap().seed,
                ..plan
            }))
        );
    }

    #[test]
    fn per_mille_rates_are_roughly_honoured() {
        let inj = FaultInjector::from_plan(&drop_plan(200));
        inj.begin_window(0);
        let mut dropped = 0;
        for _ in 0..5_000 {
            if inj.egress(1) == ReportVerdict::Drop {
                dropped += 1;
            }
        }
        // 200‰ of 5000 = 1000 expected; allow a generous band.
        assert!((700..1300).contains(&dropped), "dropped={dropped}");
    }
}
