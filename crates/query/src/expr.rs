//! Expressions and predicates over tuples.
//!
//! An [`Expr`] references columns by name; before execution it is
//! *bound* to a [`Schema`], resolving names to indices and reporting
//! unknown columns as [`BindError`]s. Binding happens once per
//! (operator, schema) pair; evaluation is then index-based.
//!
//! The expression language deliberately includes operations a PISA
//! switch *cannot* perform (integer division between columns, payload
//! search) — query partitioning (in `sonata-planner`) decides which
//! side executes each operator, so expressiveness here is never
//! limited by the data plane (Section 2 of the paper).

use crate::tuple::{ColName, Schema, Tuple};
use sonata_packet::Value;
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

/// An unbound expression over named columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// A column reference.
    Col(ColName),
    /// A literal value.
    Lit(Value),
    /// Keep the top `level` bits (IPv4) or last `level` labels (DNS
    /// names) of the operand — the refinement-key mask (Section 4.1).
    Mask(Box<Expr>, u8),
    /// Integer addition.
    Add(Box<Expr>, Box<Expr>),
    /// Saturating integer subtraction.
    Sub(Box<Expr>, Box<Expr>),
    /// Integer multiplication.
    Mul(Box<Expr>, Box<Expr>),
    /// Integer division (0 when the divisor is 0). PISA switches do not
    /// support division; an operator using it must run at the stream
    /// processor unless the divisor is a power of two (a shift).
    Div(Box<Expr>, Box<Expr>),
}

/// Comparison operators for predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Greater than.
    Gt,
    /// Greater or equal.
    Ge,
    /// Less than.
    Lt,
    /// Less or equal.
    Le,
}

impl CmpOp {
    /// Evaluate the comparison on two values. Values of different
    /// kinds compare unequal (and never satisfy an ordering).
    pub fn eval(self, a: &Value, b: &Value) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Gt => matches!(cmp_same_kind(a, b), Some(std::cmp::Ordering::Greater)),
            CmpOp::Ge => matches!(
                cmp_same_kind(a, b),
                Some(std::cmp::Ordering::Greater | std::cmp::Ordering::Equal)
            ),
            CmpOp::Lt => matches!(cmp_same_kind(a, b), Some(std::cmp::Ordering::Less)),
            CmpOp::Le => matches!(
                cmp_same_kind(a, b),
                Some(std::cmp::Ordering::Less | std::cmp::Ordering::Equal)
            ),
        }
    }
}

fn cmp_same_kind(a: &Value, b: &Value) -> Option<std::cmp::Ordering> {
    match (a, b) {
        (Value::U64(x), Value::U64(y)) => Some(x.cmp(y)),
        (Value::Text(x), Value::Text(y)) => Some(x.cmp(y)),
        (Value::Bytes(x), Value::Bytes(y)) => Some(x.cmp(y)),
        _ => None,
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
        };
        f.write_str(s)
    }
}

/// An unbound predicate over named columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Pred {
    /// Comparison of two expressions.
    Cmp {
        /// Left operand.
        lhs: Expr,
        /// Operator.
        op: CmpOp,
        /// Right operand.
        rhs: Expr,
    },
    /// Conjunction (true when empty).
    And(Vec<Pred>),
    /// Disjunction (false when empty).
    Or(Vec<Pred>),
    /// Negation.
    Not(Box<Pred>),
    /// Substring search in a bytes/text column — payload processing,
    /// executable only at the stream processor.
    Contains {
        /// The searched column.
        col: ColName,
        /// The needle.
        needle: Arc<[u8]>,
    },
    /// Membership of an expression's value in a set. Dynamic refinement
    /// compiles the "prefixes that satisfied level rᵢ" filter to this;
    /// on the switch it becomes match-table entries.
    InSet {
        /// The tested expression.
        expr: Expr,
        /// The allowed values.
        set: Arc<BTreeSet<Value>>,
    },
}

/// Build a column-reference expression.
pub fn col(name: &str) -> Expr {
    Expr::Col(name.into())
}

/// Build a column reference from a packet [`sonata_packet::Field`].
pub fn field(f: sonata_packet::Field) -> Expr {
    Expr::Col(f.name().into())
}

/// Build a `u64` literal.
pub fn lit(v: u64) -> Expr {
    Expr::Lit(Value::U64(v))
}

/// Build a text literal.
pub fn lit_text(s: &str) -> Expr {
    Expr::Lit(Value::Text(s.into()))
}

#[allow(clippy::should_implement_trait)] // .add/.sub/.mul/.div mirror the paper's DSL
impl Expr {
    /// Mask to a refinement level (`dIP/8` in the paper's notation).
    pub fn mask(self, level: u8) -> Expr {
        Expr::Mask(Box::new(self), level)
    }

    /// Integer division by another expression.
    pub fn div(self, rhs: Expr) -> Expr {
        Expr::Div(Box::new(self), Box::new(rhs))
    }

    /// Integer addition.
    pub fn add(self, rhs: Expr) -> Expr {
        Expr::Add(Box::new(self), Box::new(rhs))
    }

    /// Saturating subtraction.
    pub fn sub(self, rhs: Expr) -> Expr {
        Expr::Sub(Box::new(self), Box::new(rhs))
    }

    /// Integer multiplication.
    pub fn mul(self, rhs: Expr) -> Expr {
        Expr::Mul(Box::new(self), Box::new(rhs))
    }

    /// `self == rhs`.
    pub fn eq(self, rhs: Expr) -> Pred {
        Pred::Cmp {
            lhs: self,
            op: CmpOp::Eq,
            rhs,
        }
    }

    /// `self != rhs`.
    pub fn ne(self, rhs: Expr) -> Pred {
        Pred::Cmp {
            lhs: self,
            op: CmpOp::Ne,
            rhs,
        }
    }

    /// `self > rhs`.
    pub fn gt(self, rhs: Expr) -> Pred {
        Pred::Cmp {
            lhs: self,
            op: CmpOp::Gt,
            rhs,
        }
    }

    /// `self >= rhs`.
    pub fn ge(self, rhs: Expr) -> Pred {
        Pred::Cmp {
            lhs: self,
            op: CmpOp::Ge,
            rhs,
        }
    }

    /// `self < rhs`.
    pub fn lt(self, rhs: Expr) -> Pred {
        Pred::Cmp {
            lhs: self,
            op: CmpOp::Lt,
            rhs,
        }
    }

    /// `self <= rhs`.
    pub fn le(self, rhs: Expr) -> Pred {
        Pred::Cmp {
            lhs: self,
            op: CmpOp::Le,
            rhs,
        }
    }

    /// Column names referenced by this expression, in discovery order.
    pub fn referenced_cols(&self, out: &mut Vec<ColName>) {
        match self {
            Expr::Col(c) => {
                if !out.iter().any(|x| x == c) {
                    out.push(c.clone());
                }
            }
            Expr::Lit(_) => {}
            Expr::Mask(e, _) => e.referenced_cols(out),
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) | Expr::Div(a, b) => {
                a.referenced_cols(out);
                b.referenced_cols(out);
            }
        }
    }

    /// Whether a PISA switch can compute this expression: column
    /// copies, literals, masks, add/sub, and shifts (division by a
    /// power-of-two literal). General division/multiplication cannot
    /// run in the data plane (Section 2.2: "even state-of-the-art
    /// programmable switches do not support division").
    pub fn switch_computable(&self) -> bool {
        match self {
            Expr::Col(_) | Expr::Lit(_) => true,
            Expr::Mask(e, _) => e.switch_computable(),
            Expr::Add(a, b) | Expr::Sub(a, b) => a.switch_computable() && b.switch_computable(),
            Expr::Mul(a, b) => {
                // Multiplication by a power-of-two literal is a shift.
                a.switch_computable()
                    && matches!(&**b, Expr::Lit(Value::U64(n)) if n.is_power_of_two())
            }
            Expr::Div(a, b) => {
                a.switch_computable()
                    && matches!(&**b, Expr::Lit(Value::U64(n)) if *n > 0 && n.is_power_of_two())
            }
        }
    }

    /// Bind to a schema, resolving column names to indices.
    pub fn bind(&self, schema: &Schema) -> Result<BoundExpr, BindError> {
        Ok(match self {
            Expr::Col(name) => {
                BoundExpr::Col(
                    schema
                        .index_of(name)
                        .ok_or_else(|| BindError::UnknownColumn {
                            column: name.clone(),
                            schema: schema.clone(),
                        })?,
                )
            }
            Expr::Lit(v) => BoundExpr::Lit(v.clone()),
            Expr::Mask(e, l) => BoundExpr::Mask(Box::new(e.bind(schema)?), *l),
            Expr::Add(a, b) => BoundExpr::Arith(
                ArithOp::Add,
                Box::new(a.bind(schema)?),
                Box::new(b.bind(schema)?),
            ),
            Expr::Sub(a, b) => BoundExpr::Arith(
                ArithOp::Sub,
                Box::new(a.bind(schema)?),
                Box::new(b.bind(schema)?),
            ),
            Expr::Mul(a, b) => BoundExpr::Arith(
                ArithOp::Mul,
                Box::new(a.bind(schema)?),
                Box::new(b.bind(schema)?),
            ),
            Expr::Div(a, b) => BoundExpr::Arith(
                ArithOp::Div,
                Box::new(a.bind(schema)?),
                Box::new(b.bind(schema)?),
            ),
        })
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Col(c) => write!(f, "{c}"),
            Expr::Lit(v) => write!(f, "{v}"),
            Expr::Mask(e, l) => write!(f, "{e}/{l}"),
            Expr::Add(a, b) => write!(f, "({a} + {b})"),
            Expr::Sub(a, b) => write!(f, "({a} - {b})"),
            Expr::Mul(a, b) => write!(f, "({a} * {b})"),
            Expr::Div(a, b) => write!(f, "({a} / {b})"),
        }
    }
}

/// Failure to resolve a column name during binding.
#[derive(Debug, Clone)]
pub enum BindError {
    /// The named column is absent from the schema.
    UnknownColumn {
        /// The missing column.
        column: ColName,
        /// The schema searched.
        schema: Schema,
    },
}

impl fmt::Display for BindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BindError::UnknownColumn { column, schema } => {
                write!(f, "unknown column `{column}` in {schema:?}")
            }
        }
    }
}

impl std::error::Error for BindError {}

/// Arithmetic operator kinds for bound expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    /// Wrapping addition.
    Add,
    /// Saturating subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Division (0 when the divisor is 0).
    Div,
}

/// An expression bound to a schema: columns are indices.
#[derive(Debug, Clone)]
pub enum BoundExpr {
    /// Value at a tuple index.
    Col(usize),
    /// A literal.
    Lit(Value),
    /// Refinement mask.
    Mask(Box<BoundExpr>, u8),
    /// Arithmetic on two sub-expressions.
    Arith(ArithOp, Box<BoundExpr>, Box<BoundExpr>),
}

impl BoundExpr {
    /// Evaluate on a tuple.
    pub fn eval(&self, tuple: &Tuple) -> Value {
        match self {
            BoundExpr::Col(i) => tuple.get(*i).clone(),
            BoundExpr::Lit(v) => v.clone(),
            BoundExpr::Mask(e, l) => e.eval(tuple).mask_to_level(*l),
            BoundExpr::Arith(op, a, b) => {
                let (a, b) = (a.eval(tuple), b.eval(tuple));
                let (x, y) = match (a.as_u64(), b.as_u64()) {
                    (Some(x), Some(y)) => (x, y),
                    // Arithmetic on non-scalars yields 0, mirroring a
                    // switch ALU operating on an invalid container.
                    _ => return Value::U64(0),
                };
                Value::U64(match op {
                    ArithOp::Add => x.wrapping_add(y),
                    ArithOp::Sub => x.saturating_sub(y),
                    ArithOp::Mul => x.wrapping_mul(y),
                    ArithOp::Div => x.checked_div(y).unwrap_or(0),
                })
            }
        }
    }
}

impl Pred {
    /// Conjunction helper.
    pub fn and(self, other: Pred) -> Pred {
        match self {
            Pred::And(mut v) => {
                v.push(other);
                Pred::And(v)
            }
            p => Pred::And(vec![p, other]),
        }
    }

    /// Disjunction helper.
    pub fn or(self, other: Pred) -> Pred {
        match self {
            Pred::Or(mut v) => {
                v.push(other);
                Pred::Or(v)
            }
            p => Pred::Or(vec![p, other]),
        }
    }

    /// Negation helper.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Pred {
        Pred::Not(Box::new(self))
    }

    /// Payload / text-column search.
    pub fn contains(col_name: &str, needle: impl AsRef<[u8]>) -> Pred {
        Pred::Contains {
            col: col_name.into(),
            needle: needle.as_ref().to_vec().into(),
        }
    }

    /// Set-membership predicate.
    pub fn in_set(expr: Expr, set: BTreeSet<Value>) -> Pred {
        Pred::InSet {
            expr,
            set: Arc::new(set),
        }
    }

    /// Column names referenced by this predicate.
    pub fn referenced_cols(&self, out: &mut Vec<ColName>) {
        match self {
            Pred::Cmp { lhs, rhs, .. } => {
                lhs.referenced_cols(out);
                rhs.referenced_cols(out);
            }
            Pred::And(ps) | Pred::Or(ps) => {
                for p in ps {
                    p.referenced_cols(out);
                }
            }
            Pred::Not(p) => p.referenced_cols(out),
            Pred::Contains { col: c, .. } => {
                if !out.iter().any(|x| x == c) {
                    out.push(c.clone());
                }
            }
            Pred::InSet { expr, .. } => expr.referenced_cols(out),
        }
    }

    /// Whether a PISA switch can evaluate this predicate: comparisons
    /// of switch-computable expressions, boolean combinations thereof,
    /// and set membership (a match table). Payload search cannot run
    /// on the switch.
    pub fn switch_computable(&self) -> bool {
        match self {
            Pred::Cmp { lhs, rhs, .. } => lhs.switch_computable() && rhs.switch_computable(),
            Pred::And(ps) | Pred::Or(ps) => ps.iter().all(Pred::switch_computable),
            Pred::Not(p) => p.switch_computable(),
            Pred::Contains { .. } => false,
            Pred::InSet { expr, .. } => expr.switch_computable(),
        }
    }

    /// Bind to a schema.
    pub fn bind(&self, schema: &Schema) -> Result<BoundPred, BindError> {
        Ok(match self {
            Pred::Cmp { lhs, op, rhs } => BoundPred::Cmp {
                lhs: lhs.bind(schema)?,
                op: *op,
                rhs: rhs.bind(schema)?,
            },
            Pred::And(ps) => BoundPred::And(
                ps.iter()
                    .map(|p| p.bind(schema))
                    .collect::<Result<_, _>>()?,
            ),
            Pred::Or(ps) => BoundPred::Or(
                ps.iter()
                    .map(|p| p.bind(schema))
                    .collect::<Result<_, _>>()?,
            ),
            Pred::Not(p) => BoundPred::Not(Box::new(p.bind(schema)?)),
            Pred::Contains { col: c, needle } => BoundPred::Contains {
                idx: schema.index_of(c).ok_or_else(|| BindError::UnknownColumn {
                    column: c.clone(),
                    schema: schema.clone(),
                })?,
                needle: needle.clone(),
            },
            Pred::InSet { expr, set } => BoundPred::InSet {
                expr: expr.bind(schema)?,
                set: set.clone(),
            },
        })
    }
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pred::Cmp { lhs, op, rhs } => write!(f, "{lhs} {op} {rhs}"),
            Pred::And(ps) => {
                write!(f, "(")?;
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        write!(f, " && ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            Pred::Or(ps) => {
                write!(f, "(")?;
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        write!(f, " || ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            Pred::Not(p) => write!(f, "!({p})"),
            Pred::Contains { col: c, needle } => {
                write!(f, "{c}.contains({:?})", String::from_utf8_lossy(needle))
            }
            Pred::InSet { expr, set } => write!(f, "{expr} in {{{} values}}", set.len()),
        }
    }
}

/// A predicate bound to a schema.
#[derive(Debug, Clone)]
pub enum BoundPred {
    /// Comparison.
    Cmp {
        /// Left operand.
        lhs: BoundExpr,
        /// Operator.
        op: CmpOp,
        /// Right operand.
        rhs: BoundExpr,
    },
    /// Conjunction.
    And(Vec<BoundPred>),
    /// Disjunction.
    Or(Vec<BoundPred>),
    /// Negation.
    Not(Box<BoundPred>),
    /// Substring search at a tuple index.
    Contains {
        /// The searched index.
        idx: usize,
        /// The needle.
        needle: Arc<[u8]>,
    },
    /// Set membership.
    InSet {
        /// The tested expression.
        expr: BoundExpr,
        /// The allowed values.
        set: Arc<BTreeSet<Value>>,
    },
}

impl BoundPred {
    /// Evaluate on a tuple.
    pub fn eval(&self, tuple: &Tuple) -> bool {
        match self {
            BoundPred::Cmp { lhs, op, rhs } => op.eval(&lhs.eval(tuple), &rhs.eval(tuple)),
            BoundPred::And(ps) => ps.iter().all(|p| p.eval(tuple)),
            BoundPred::Or(ps) => ps.iter().any(|p| p.eval(tuple)),
            BoundPred::Not(p) => !p.eval(tuple),
            BoundPred::Contains { idx, needle } => match tuple.get(*idx) {
                Value::Bytes(b) => contains_subslice(b, needle),
                Value::Text(s) => contains_subslice(s.as_bytes(), needle),
                Value::U64(_) => false,
            },
            BoundPred::InSet { expr, set } => set.contains(&expr.eval(tuple)),
        }
    }
}

/// Naive substring search; needles are short (attack signatures).
fn contains_subslice(haystack: &[u8], needle: &[u8]) -> bool {
    if needle.is_empty() {
        return true;
    }
    haystack
        .windows(needle.len())
        .any(|window| window == needle)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(["a", "b", "payload"])
    }

    fn tuple(a: u64, b: u64) -> Tuple {
        Tuple::new(vec![
            Value::U64(a),
            Value::U64(b),
            Value::Bytes(b"hello zorro world".to_vec().into()),
        ])
    }

    #[test]
    fn arithmetic_eval() {
        let s = schema();
        let e = col("a").add(col("b")).bind(&s).unwrap();
        assert_eq!(e.eval(&tuple(2, 3)), Value::U64(5));
        let e = col("a").sub(col("b")).bind(&s).unwrap();
        assert_eq!(e.eval(&tuple(2, 3)), Value::U64(0)); // saturating
        let e = col("a").mul(lit(4)).bind(&s).unwrap();
        assert_eq!(e.eval(&tuple(5, 0)), Value::U64(20));
        let e = col("a").div(lit(0)).bind(&s).unwrap();
        assert_eq!(e.eval(&tuple(5, 0)), Value::U64(0)); // div by zero -> 0
        let e = col("a").div(col("b")).bind(&s).unwrap();
        assert_eq!(e.eval(&tuple(7, 2)), Value::U64(3));
    }

    #[test]
    fn mask_eval() {
        let s = schema();
        let e = col("a").mask(8).bind(&s).unwrap();
        assert_eq!(e.eval(&tuple(0x0a0b0c0d, 0)), Value::U64(0x0a000000));
    }

    #[test]
    fn comparisons() {
        let s = schema();
        for (p, expect) in [
            (col("a").gt(lit(1)), true),
            (col("a").gt(lit(2)), false),
            (col("a").ge(lit(2)), true),
            (col("a").lt(col("b")), true),
            (col("a").le(lit(1)), false),
            (col("a").eq(lit(2)), true),
            (col("a").ne(lit(2)), false),
        ] {
            assert_eq!(p.bind(&s).unwrap().eval(&tuple(2, 3)), expect, "{p}");
        }
    }

    #[test]
    fn mixed_kind_comparisons_never_order() {
        assert!(!CmpOp::Gt.eval(&Value::U64(5), &Value::Text("a".into())));
        assert!(!CmpOp::Le.eval(&Value::U64(5), &Value::Text("a".into())));
        assert!(CmpOp::Ne.eval(&Value::U64(5), &Value::Text("a".into())));
    }

    #[test]
    fn boolean_combinators() {
        let s = schema();
        let p = col("a")
            .gt(lit(1))
            .and(col("b").gt(lit(1)))
            .bind(&s)
            .unwrap();
        assert!(p.eval(&tuple(2, 2)));
        assert!(!p.eval(&tuple(2, 1)));
        let p = col("a")
            .gt(lit(10))
            .or(col("b").gt(lit(1)))
            .bind(&s)
            .unwrap();
        assert!(p.eval(&tuple(0, 2)));
        let p = col("a").gt(lit(0)).not().bind(&s).unwrap();
        assert!(!p.eval(&tuple(1, 0)));
        // Empty conjunction is true; empty disjunction is false.
        assert!(Pred::And(vec![]).bind(&s).unwrap().eval(&tuple(0, 0)));
        assert!(!Pred::Or(vec![]).bind(&s).unwrap().eval(&tuple(0, 0)));
    }

    #[test]
    fn payload_contains() {
        let s = schema();
        let p = Pred::contains("payload", b"zorro").bind(&s).unwrap();
        assert!(p.eval(&tuple(0, 0)));
        let p = Pred::contains("payload", b"absent").bind(&s).unwrap();
        assert!(!p.eval(&tuple(0, 0)));
        // Empty needle matches anything.
        let p = Pred::contains("payload", b"").bind(&s).unwrap();
        assert!(p.eval(&tuple(0, 0)));
    }

    #[test]
    fn in_set() {
        let s = schema();
        let set: BTreeSet<Value> = [Value::U64(0x0a000000)].into_iter().collect();
        let p = Pred::in_set(col("a").mask(8), set).bind(&s).unwrap();
        assert!(p.eval(&tuple(0x0a141e28, 0)));
        assert!(!p.eval(&tuple(0x0b141e28, 0)));
    }

    #[test]
    fn unknown_column_bind_error() {
        let s = schema();
        assert!(col("missing").bind(&s).is_err());
        assert!(col("a").gt(col("missing")).bind(&s).is_err());
        assert!(Pred::contains("missing", b"x").bind(&s).is_err());
        let err = col("missing").bind(&s).unwrap_err();
        assert!(err.to_string().contains("missing"));
    }

    #[test]
    fn switch_computability() {
        assert!(col("a").mask(8).switch_computable());
        assert!(col("a").add(lit(1)).switch_computable());
        assert!(col("a").div(lit(16)).switch_computable()); // shift
        assert!(!col("a").div(lit(10)).switch_computable()); // real division
        assert!(!col("a").div(col("b")).switch_computable());
        assert!(col("a").mul(lit(8)).switch_computable()); // shift
        assert!(!col("a").mul(col("b")).switch_computable());
        assert!(col("a").gt(lit(1)).switch_computable());
        assert!(!Pred::contains("payload", b"z").switch_computable());
        assert!(Pred::in_set(col("a"), BTreeSet::new()).switch_computable());
    }

    #[test]
    fn referenced_cols_deduplicated() {
        let mut cols = Vec::new();
        col("a")
            .add(col("b"))
            .add(col("a"))
            .referenced_cols(&mut cols);
        assert_eq!(cols.len(), 2);
        let mut cols = Vec::new();
        col("a")
            .gt(lit(0))
            .and(Pred::contains("payload", b"x"))
            .referenced_cols(&mut cols);
        assert_eq!(cols.len(), 2);
    }

    #[test]
    fn display_forms() {
        let p = col("count").gt(lit(40));
        assert_eq!(p.to_string(), "count > 40");
        let e = col("dIP").mask(8);
        assert_eq!(e.to_string(), "dIP/8");
    }
}
