//! # sonata-query
//!
//! Sonata's declarative query language (Section 2 of the paper): a
//! small set of dataflow operators — `filter`, `map`, `reduce`,
//! `distinct`, `join` — applied to a stream of packet tuples, with
//! tumbling windows for stateful operators.
//!
//! The crate provides:
//!
//! * the **tuple model** ([`mod@tuple`]) — positional tuples with named
//!   column schemas; a packet enters a pipeline as a tuple over the
//!   packet schema (one column per [`sonata_packet::Field`]);
//! * **expressions and predicates** ([`expr`]) with a binding step
//!   that resolves column names to indices once per schema, keeping the
//!   per-tuple hot path allocation-free for scalar work;
//! * the **query AST and builder DSL** ([`query`]) mirroring the
//!   paper's syntax (`packetStream.filter(..).map(..).reduce(..)`),
//!   including joins of two sub-queries and per-query windows;
//! * a **reference interpreter** ([`interpret`]) that executes a query
//!   in memory over a window of packets — the ground truth that the
//!   partitioned switch + stream-processor execution must reproduce;
//! * the **catalog** ([`catalog`]) of the paper's eleven telemetry
//!   queries (Table 3), each parameterized by its thresholds.
//!
//! ```
//! use sonata_query::prelude::*;
//! use sonata_packet::Field;
//!
//! // Query 1 from the paper: detect newly opened TCP connections.
//! let q = Query::builder("new_tcp", 1)
//!     .filter(field(Field::TcpFlags).eq(lit(2)))
//!     .map([("dIP", field(Field::Ipv4Dst)), ("count", lit(1))])
//!     .reduce(&["dIP"], Agg::Sum, "count")
//!     .filter(col("count").gt(lit(40)))
//!     .build()
//!     .unwrap();
//! assert_eq!(q.pipeline.ops.len(), 4);
//! ```

pub mod bound;
pub mod catalog;
pub mod expr;
pub mod interpret;
pub mod ops;
pub mod query;
pub mod tuple;

pub use bound::{BoundError, BoundPipeline};
pub use expr::{col, field, lit, lit_text, CmpOp, Expr, Pred};
pub use ops::{Agg, Operator};
pub use query::{Join, Pipeline, Query, QueryBuilder, QueryError, QueryId, RefinementHint};
pub use tuple::{ColName, Schema, Tuple};

/// Convenient glob-import surface for writing queries.
pub mod prelude {
    pub use crate::expr::{col, field, lit, lit_text, CmpOp, Expr, Pred};
    pub use crate::ops::{Agg, Operator};
    pub use crate::query::{Query, QueryBuilder, QueryId};
    pub use crate::tuple::{ColName, Schema, Tuple};
}
