//! Bound pipelines: the stream-side compiled fast path.
//!
//! [`crate::interpret::run_operator`] re-binds expressions and
//! re-resolves column names every window, and materializes an
//! intermediate `Vec<Tuple>` after every operator. A [`BoundPipeline`]
//! does all of that work once at registration: expressions are bound,
//! `Schema::index_of` lookups are resolved to offsets, and runs of
//! stateless operators (`filter`/`map`) are *fused* — each tuple flows
//! through the whole run in one pass, feeding a stateful sink
//! (`reduce`/`distinct`) or the output directly, with no per-operator
//! batch allocation.
//!
//! ## Fusion rules
//!
//! The pipeline is split into segments `[i..sink]` where `ops[i..sink]`
//! are stateless and `ops[sink]` is stateful (or the pipeline end).
//! Tuples may enter at any operator index (collision shunts and window
//! dumps resume mid-pipeline); within a segment the sources are drained
//! in entry-index order — the previous sink's (sorted) output first,
//! then each entry batch — which reproduces the reference
//! interpreter's merge order exactly, because stateless operators map
//! each input tuple to at most one output tuple and preserve relative
//! order.
//!
//! Reductions aggregate into pre-sized hash tables: a compact
//! `u64`-keyed table when the group key is a single scalar column
//! (migrating to a wide `Tuple`-keyed table if a non-scalar key value
//! ever appears), sized from the previous window's observed
//! cardinality. Per-key fold order equals arrival order — the same
//! fold sequence the reference's `BTreeMap` performs — and emission
//! sorts by key, so the output is bit-identical to the reference
//! interpreter.

use crate::expr::{BindError, BoundExpr, BoundPred};
use crate::ops::{Agg, Operator};
use crate::tuple::{Schema, Tuple};
use sonata_packet::Value;
use std::collections::{BTreeMap, HashMap, HashSet};

/// Execution failure of a bound pipeline. Binding failures surface
/// earlier, from [`BoundPipeline::bind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundError {
    /// A batch entry index is past the end of the pipeline.
    BadEntry {
        /// The offending op index.
        op: usize,
        /// Ops in the pipeline.
        len: usize,
    },
}

impl std::fmt::Display for BoundError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BoundError::BadEntry { op, len } => {
                write!(f, "batch entry at op {op} but pipeline has {len} ops")
            }
        }
    }
}

impl std::error::Error for BoundError {}

/// One operator with every column reference resolved to an offset.
enum BoundOp {
    Filter(BoundPred),
    Map(Vec<BoundExpr>),
    Reduce {
        key_idx: Vec<usize>,
        val_idx: usize,
        agg: Agg,
    },
    Distinct,
}

impl BoundOp {
    fn is_stateful(&self) -> bool {
        matches!(self, BoundOp::Reduce { .. } | BoundOp::Distinct)
    }
}

/// Reduce aggregation state: compact scalar keys when possible.
enum ReduceState {
    /// Single-column `U64` group keys, stored raw.
    Fast(HashMap<u64, u64>),
    /// General tuple keys.
    Wide(HashMap<Tuple, u64>),
}

impl ReduceState {
    fn new(single_key: bool, capacity: usize) -> Self {
        if single_key {
            ReduceState::Fast(HashMap::with_capacity(capacity))
        } else {
            ReduceState::Wide(HashMap::with_capacity(capacity))
        }
    }

    fn fold(&mut self, t: &Tuple, key_idx: &[usize], val_idx: usize, agg: Agg) {
        let v = t.get(val_idx).as_u64().unwrap_or(0);
        if let ReduceState::Fast(map) = self {
            match t.get(key_idx[0]) {
                Value::U64(k) => {
                    map.entry(*k)
                        .and_modify(|acc| *acc = agg.fold(*acc, v))
                        .or_insert_with(|| agg.init(v));
                    return;
                }
                _ => {
                    // A non-scalar key appeared (e.g. a DNS-name
                    // refinement key): migrate the accumulated state
                    // to tuple keys. Per-key fold continuity is
                    // preserved — each key's accumulator moves intact.
                    let mut wide = HashMap::with_capacity(map.len().max(16));
                    for (k, acc) in map.drain() {
                        wide.insert(Tuple::new(vec![Value::U64(k)]), acc);
                    }
                    *self = ReduceState::Wide(wide);
                }
            }
        }
        let ReduceState::Wide(map) = self else {
            unreachable!("fast path returns above");
        };
        map.entry(t.project(key_idx))
            .and_modify(|acc| *acc = agg.fold(*acc, v))
            .or_insert_with(|| agg.init(v));
    }

    fn len(&self) -> usize {
        match self {
            ReduceState::Fast(m) => m.len(),
            ReduceState::Wide(m) => m.len(),
        }
    }

    /// Emit `(key…, acc)` tuples sorted by key — the order a
    /// `BTreeMap` would have produced.
    fn emit(self) -> Vec<Tuple> {
        match self {
            ReduceState::Fast(map) => {
                let mut pairs: Vec<(u64, u64)> = map.into_iter().collect();
                pairs.sort_unstable();
                pairs
                    .into_iter()
                    .map(|(k, acc)| Tuple::new(vec![Value::U64(k), Value::U64(acc)]))
                    .collect()
            }
            ReduceState::Wide(map) => {
                let mut pairs: Vec<(Tuple, u64)> = map.into_iter().collect();
                pairs.sort_unstable_by(|a, b| a.0.cmp(&b.0));
                pairs
                    .into_iter()
                    .map(|(key, acc)| key.concat(&Tuple::new(vec![Value::U64(acc)])))
                    .collect()
            }
        }
    }
}

/// A pipeline bound to its input schema once, executed many times.
pub struct BoundPipeline {
    ops: Vec<BoundOp>,
    /// Schema before each op; `schemas[ops.len()]` is the output.
    schemas: Vec<Schema>,
    /// Per-stateful-op capacity hints from the previous window's
    /// observed group cardinality.
    hints: Vec<usize>,
}

impl BoundPipeline {
    /// Bind a pipeline to its input schema, resolving every column
    /// reference to an offset.
    pub fn bind(ops: &[Operator], input: &Schema) -> Result<Self, BindError> {
        let mut schemas = Vec::with_capacity(ops.len() + 1);
        schemas.push(input.clone());
        let mut bops = Vec::with_capacity(ops.len());
        for op in ops {
            let schema = schemas.last().expect("seeded with input schema");
            let unknown = |column: &crate::tuple::ColName| BindError::UnknownColumn {
                column: column.clone(),
                schema: schema.clone(),
            };
            let bop = match op {
                Operator::Filter(p) => BoundOp::Filter(p.bind(schema)?),
                Operator::Map { exprs } => BoundOp::Map(
                    exprs
                        .iter()
                        .map(|(_, e)| e.bind(schema))
                        .collect::<Result<_, _>>()?,
                ),
                Operator::Reduce {
                    keys, agg, value, ..
                } => BoundOp::Reduce {
                    key_idx: keys
                        .iter()
                        .map(|k| schema.index_of(k).ok_or_else(|| unknown(k)))
                        .collect::<Result<_, _>>()?,
                    val_idx: schema.index_of(value).ok_or_else(|| unknown(value))?,
                    agg: *agg,
                },
                Operator::Distinct => BoundOp::Distinct,
            };
            let next = op.output_schema(schema).map_err(|c| unknown(&c))?;
            bops.push(bop);
            schemas.push(next);
        }
        Ok(BoundPipeline {
            hints: vec![0; bops.len()],
            ops: bops,
            schemas,
        })
    }

    /// The schema of the pipeline's output.
    pub fn output_schema(&self) -> &Schema {
        self.schemas.last().expect("schemas is never empty")
    }

    /// Run the whole pipeline over a batch entering at op 0.
    pub fn run(&mut self, tuples: Vec<Tuple>) -> Vec<Tuple> {
        self.run_from(tuples, BTreeMap::new(), 0)
    }

    /// Run with tuples injected at arbitrary operator indices,
    /// reproducing the reference `run_entries` merge semantics.
    pub fn run_entries(
        &mut self,
        entries: BTreeMap<usize, Vec<Tuple>>,
    ) -> Result<(Schema, Vec<Tuple>), BoundError> {
        let len = self.ops.len();
        for &op in entries.keys() {
            if op > len {
                return Err(BoundError::BadEntry { op, len });
            }
        }
        let first = entries.keys().next().copied().unwrap_or(len);
        let out = self.run_from(Vec::new(), entries, first);
        Ok((self.output_schema().clone(), out))
    }

    /// Fused segment-by-segment execution. `seed` enters at `start`
    /// (before any entry batch at the same index).
    fn run_from(
        &mut self,
        mut seed: Vec<Tuple>,
        mut entries: BTreeMap<usize, Vec<Tuple>>,
        start: usize,
    ) -> Vec<Tuple> {
        let len = self.ops.len();
        let mut i = start;
        loop {
            let sink = (i..len).find(|&j| self.ops[j].is_stateful()).unwrap_or(len);
            // Drain this segment's sources in entry order: the
            // previous sink's output, then each entry batch.
            let sources = std::iter::once((i, std::mem::take(&mut seed)))
                .chain((i..=sink).filter_map(|p| entries.remove(&p).map(|batch| (p, batch))));
            if sink == len {
                let mut out = Vec::new();
                for (p, batch) in sources {
                    for t in batch {
                        if let Some(t) = pipe(&self.ops[p..sink], t) {
                            out.push(t);
                        }
                    }
                }
                return out;
            }
            seed = match &self.ops[sink] {
                BoundOp::Reduce {
                    key_idx,
                    val_idx,
                    agg,
                } => {
                    let mut state = ReduceState::new(key_idx.len() == 1, self.hints[sink]);
                    for (p, batch) in sources {
                        for t in batch {
                            if let Some(t) = pipe(&self.ops[p..sink], t) {
                                state.fold(&t, key_idx, *val_idx, *agg);
                            }
                        }
                    }
                    self.hints[sink] = state.len();
                    state.emit()
                }
                BoundOp::Distinct => {
                    let mut set: HashSet<Tuple> = HashSet::with_capacity(self.hints[sink]);
                    for (p, batch) in sources {
                        for t in batch {
                            if let Some(t) = pipe(&self.ops[p..sink], t) {
                                set.insert(t);
                            }
                        }
                    }
                    self.hints[sink] = set.len();
                    let mut out: Vec<Tuple> = set.into_iter().collect();
                    out.sort_unstable();
                    out
                }
                _ => unreachable!("sink is stateful or the pipeline end"),
            };
            i = sink + 1;
        }
    }
}

/// Pipe one tuple through a run of stateless operators.
#[inline]
fn pipe(ops: &[BoundOp], mut t: Tuple) -> Option<Tuple> {
    for op in ops {
        match op {
            BoundOp::Filter(pred) => {
                if !pred.eval(&t) {
                    return None;
                }
            }
            BoundOp::Map(exprs) => {
                t = Tuple::new(exprs.iter().map(|e| e.eval(&t)).collect());
            }
            _ => unreachable!("stateful op inside a stateless segment"),
        }
    }
    Some(t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, field, lit};
    use crate::interpret::run_pipeline;
    use sonata_packet::{Field, PacketBuilder, TcpFlags};

    fn syn(src: u32, dst: u32) -> Tuple {
        Tuple::from_packet(
            &PacketBuilder::tcp_raw(src, 999, dst, 80)
                .flags(TcpFlags::SYN)
                .build(),
        )
    }

    fn q1_ops(th: u64) -> Vec<Operator> {
        crate::catalog::newly_opened_tcp_conns(&crate::catalog::Thresholds {
            new_tcp: th,
            ..crate::catalog::Thresholds::default()
        })
        .pipeline
        .ops
    }

    #[test]
    fn fused_run_matches_reference_pipeline() {
        let ops = q1_ops(2);
        let packet = Schema::packet();
        let mut bound = BoundPipeline::bind(&ops, &packet).unwrap();
        let tuples: Vec<Tuple> = (0..20).map(|i| syn(i % 6, 0xaa + (i % 3))).collect();
        let (ref_schema, mut reference) = run_pipeline(&ops, &packet, tuples.clone()).unwrap();
        let mut fused = bound.run(tuples);
        assert_eq!(bound.output_schema(), &ref_schema);
        reference.sort();
        fused.sort();
        assert_eq!(fused, reference);
    }

    #[test]
    fn entry_merge_order_matches_reference() {
        use crate::interpret::run_operator;
        // Mid-pipeline entries (shunts at the reduce, dumps at the
        // end) must merge exactly as the reference loop does.
        let ops = q1_ops(0);
        let packet = Schema::packet();
        let mut bound = BoundPipeline::bind(&ops, &packet).unwrap();
        let mut entries: BTreeMap<usize, Vec<Tuple>> = BTreeMap::new();
        entries.insert(0, (0..5).map(|i| syn(i, 0xcc)).collect());
        entries.insert(
            2,
            (0..3)
                .map(|_| Tuple::new(vec![Value::U64(0xcc), Value::U64(1)]))
                .collect(),
        );
        entries.insert(4, vec![Tuple::new(vec![Value::U64(0xdd), Value::U64(9)])]);
        // Reference: replicate run_entries_owned inline.
        let mut schema = packet;
        let mut tuples: Vec<Tuple> = Vec::new();
        let mut ref_entries = entries.clone();
        for i in 0..=ops.len() {
            if let Some(inc) = ref_entries.remove(&i) {
                tuples.extend(inc);
            }
            if i == ops.len() {
                break;
            }
            let (s, t) = run_operator(&ops[i], &schema, tuples).unwrap();
            schema = s;
            tuples = t;
        }
        let (bschema, bout) = bound.run_entries(entries).unwrap();
        assert_eq!(bschema, schema);
        assert_eq!(bout, tuples);
    }

    #[test]
    fn bad_entry_rejected() {
        let ops = q1_ops(1);
        let mut bound = BoundPipeline::bind(&ops, &Schema::packet()).unwrap();
        let mut entries = BTreeMap::new();
        entries.insert(99, vec![Tuple::new(vec![])]);
        assert_eq!(
            bound.run_entries(entries),
            Err(BoundError::BadEntry { op: 99, len: 4 })
        );
    }

    #[test]
    fn reduce_state_migrates_on_text_keys() {
        // Text group keys (DNS-name refinement) force the wide table;
        // mixing scalar and text keys must keep all accumulators.
        let ops = vec![Operator::Reduce {
            keys: vec!["k".into()],
            agg: Agg::Sum,
            value: "v".into(),
            out: "sum".into(),
        }];
        let schema = Schema::new(["k", "v"]);
        let mut bound = BoundPipeline::bind(&ops, &schema).unwrap();
        let tuples = vec![
            Tuple::new(vec![Value::U64(1), Value::U64(10)]),
            Tuple::new(vec![Value::Text("a".into()), Value::U64(5)]),
            Tuple::new(vec![Value::U64(1), Value::U64(7)]),
            Tuple::new(vec![Value::Text("a".into()), Value::U64(2)]),
        ];
        let (_, reference) = run_pipeline(&ops, &schema, tuples.clone()).unwrap();
        let fused = bound.run(tuples);
        assert_eq!(fused, reference);
    }

    #[test]
    fn capacity_hints_track_previous_cardinality() {
        let ops = q1_ops(0);
        let mut bound = BoundPipeline::bind(&ops, &Schema::packet()).unwrap();
        bound.run((0..10).map(|i| syn(i, 0xaa + i)).collect());
        // The reduce at op 2 saw 10 distinct destinations.
        assert_eq!(bound.hints[2], 10);
        bound.run(vec![]);
        assert_eq!(bound.hints[2], 0);
    }

    #[test]
    fn stateless_tail_after_reduce() {
        // map after reduce exercises a seed flowing into a
        // trailing stateless segment.
        let ops = vec![
            Operator::Map {
                exprs: vec![("dIP".into(), field(Field::Ipv4Dst)), ("c".into(), lit(1))],
            },
            Operator::Reduce {
                keys: vec!["dIP".into()],
                agg: Agg::Sum,
                value: "c".into(),
                out: "c".into(),
            },
            Operator::Map {
                exprs: vec![("double".into(), col("c").add(col("c")))],
            },
        ];
        let packet = Schema::packet();
        let mut bound = BoundPipeline::bind(&ops, &packet).unwrap();
        let tuples: Vec<Tuple> = (0..6).map(|i| syn(i, 0xaa + (i % 2))).collect();
        let (_, reference) = run_pipeline(&ops, &packet, tuples.clone()).unwrap();
        assert_eq!(bound.run(tuples), reference);
    }
}
