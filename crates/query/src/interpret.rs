//! The reference interpreter: executes a query entirely in memory over
//! one window of packets.
//!
//! This is the semantic ground truth for the rest of the system — the
//! partitioned switch + stream-processor execution and any refined
//! plan must report the same final results (up to refinement delay).
//! It is deliberately simple: per-window batch evaluation, BTree-based
//! state for deterministic output order.

use crate::expr::{BindError, BoundExpr, BoundPred};
use crate::ops::Operator;
use crate::query::{joined_schema, Query, QueryError};
use crate::tuple::{Schema, Tuple};
use sonata_packet::{Packet, Value};
use std::collections::BTreeMap;

/// Errors from interpretation (all are query-authoring bugs that
/// validation should have caught; surfaced rather than panicking).
#[derive(Debug)]
pub enum InterpretError {
    /// Expression binding failed.
    Bind(BindError),
    /// The query failed validation.
    Query(QueryError),
}

impl From<BindError> for InterpretError {
    fn from(e: BindError) -> Self {
        InterpretError::Bind(e)
    }
}

impl From<QueryError> for InterpretError {
    fn from(e: QueryError) -> Self {
        InterpretError::Query(e)
    }
}

impl std::fmt::Display for InterpretError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InterpretError::Bind(e) => write!(f, "bind error: {e}"),
            InterpretError::Query(e) => write!(f, "query error: {e}"),
        }
    }
}

impl std::error::Error for InterpretError {}

/// Execute one operator over a batch of tuples.
///
/// Returns the output schema and tuples. Stateful operators treat the
/// batch as one full window.
pub fn run_operator(
    op: &Operator,
    schema: &Schema,
    tuples: Vec<Tuple>,
) -> Result<(Schema, Vec<Tuple>), InterpretError> {
    match op {
        Operator::Filter(pred) => {
            let bound: BoundPred = pred.bind(schema)?;
            let out = tuples.into_iter().filter(|t| bound.eval(t)).collect();
            Ok((schema.clone(), out))
        }
        Operator::Map { exprs } => {
            let bound: Vec<BoundExpr> = exprs
                .iter()
                .map(|(_, e)| e.bind(schema))
                .collect::<Result<_, _>>()?;
            let out_schema = Schema::new(exprs.iter().map(|(n, _)| n.clone()));
            let out = tuples
                .into_iter()
                .map(|t| Tuple::new(bound.iter().map(|e| e.eval(&t)).collect()))
                .collect();
            Ok((out_schema, out))
        }
        Operator::Reduce {
            keys, agg, value, ..
        } => {
            let key_idx: Vec<usize> = keys
                .iter()
                .map(|k| {
                    schema.index_of(k).ok_or_else(|| {
                        InterpretError::Bind(BindError::UnknownColumn {
                            column: k.clone(),
                            schema: schema.clone(),
                        })
                    })
                })
                .collect::<Result<_, _>>()?;
            let val_idx = schema.index_of(value).ok_or_else(|| {
                InterpretError::Bind(BindError::UnknownColumn {
                    column: value.clone(),
                    schema: schema.clone(),
                })
            })?;
            let mut state: BTreeMap<Tuple, u64> = BTreeMap::new();
            for t in tuples {
                let key = t.project(&key_idx);
                let v = t.get(val_idx).as_u64().unwrap_or(0);
                state
                    .entry(key)
                    .and_modify(|acc| *acc = agg.fold(*acc, v))
                    .or_insert_with(|| agg.init(v));
            }
            let out_schema = op.output_schema(schema).map_err(|c| {
                InterpretError::Bind(BindError::UnknownColumn {
                    column: c,
                    schema: schema.clone(),
                })
            })?;
            let out = state
                .into_iter()
                .map(|(key, acc)| key.concat(&Tuple::new(vec![Value::U64(acc)])))
                .collect();
            Ok((out_schema, out))
        }
        Operator::Distinct => {
            let mut seen: BTreeMap<Tuple, ()> = BTreeMap::new();
            for t in tuples {
                seen.entry(t).or_insert(());
            }
            Ok((schema.clone(), seen.into_keys().collect()))
        }
    }
}

/// Execute a pipeline over a batch of tuples.
pub fn run_pipeline(
    ops: &[Operator],
    schema: &Schema,
    mut tuples: Vec<Tuple>,
) -> Result<(Schema, Vec<Tuple>), InterpretError> {
    let mut schema = schema.clone();
    for op in ops {
        let (s, t) = run_operator(op, &schema, tuples)?;
        schema = s;
        tuples = t;
    }
    Ok((schema, tuples))
}

/// Execute a whole query over one window of packets, returning the
/// final output tuples (sorted, deterministic).
pub fn run_query(query: &Query, packets: &[Packet]) -> Result<Vec<Tuple>, InterpretError> {
    let (_, out) = run_query_with_schema(query, packets)?;
    Ok(out)
}

/// Like [`run_query`] but also returns the output schema.
pub fn run_query_with_schema(
    query: &Query,
    packets: &[Packet],
) -> Result<(Schema, Vec<Tuple>), InterpretError> {
    let packet_schema = Schema::packet();
    let input: Vec<Tuple> = packets.iter().map(Tuple::from_packet).collect();
    let (left_schema, left) = run_pipeline(&query.pipeline.ops, &packet_schema, input.clone())?;
    let Some(join) = &query.join else {
        let mut out = left;
        out.sort();
        return Ok((left_schema, out));
    };
    let (right_schema, right) = run_pipeline(&join.right.ops, &packet_schema, input)?;

    // Hash join: index right tuples by key, probe with left tuples.
    let right_key_idx: Vec<usize> = join
        .keys
        .iter()
        .map(|k| {
            right_schema
                .index_of(k)
                .ok_or_else(|| InterpretError::Query(QueryError::JoinKeyMissing { key: k.clone() }))
        })
        .collect::<Result<_, _>>()?;
    let left_key_exprs: Vec<BoundExpr> = join
        .left_keys
        .iter()
        .map(|e| e.bind(&left_schema))
        .collect::<Result<_, _>>()?;
    let mut right_index: BTreeMap<Tuple, Vec<&Tuple>> = BTreeMap::new();
    for t in &right {
        right_index
            .entry(t.project(&right_key_idx))
            .or_default()
            .push(t);
    }
    // Columns of the right tuple to append: those not already in the
    // left schema (mirrors `joined_schema`).
    let append_idx: Vec<usize> = right_schema
        .columns()
        .iter()
        .enumerate()
        .filter(|(_, c)| !left_schema.contains(c))
        .map(|(i, _)| i)
        .collect();
    let joined_schema = joined_schema(&left_schema, &right_schema, &join.keys);
    let mut joined: Vec<Tuple> = Vec::new();
    for lt in &left {
        let key = Tuple::new(left_key_exprs.iter().map(|e| e.eval(lt)).collect());
        if let Some(matches) = right_index.get(&key) {
            for rt in matches {
                joined.push(lt.concat(&rt.project(&append_idx)));
            }
        }
    }
    let (post_schema, mut out) = run_pipeline(&join.post.ops, &joined_schema, joined)?;
    out.sort();
    Ok((post_schema, out))
}

/// Split packets into tumbling windows of `window_ms` by timestamp and
/// run the query on each; returns one result set per window, keyed by
/// window index.
pub fn run_query_windowed(
    query: &Query,
    packets: &[Packet],
) -> Result<Vec<(u64, Vec<Tuple>)>, InterpretError> {
    let window_ns = query.window_ms.max(1) * 1_000_000;
    let mut windows: BTreeMap<u64, Vec<Packet>> = BTreeMap::new();
    for p in packets {
        windows
            .entry(p.ts_nanos / window_ns)
            .or_default()
            .push(p.clone());
    }
    let mut out = Vec::new();
    for (w, pkts) in windows {
        out.push((w, run_query(query, &pkts)?));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, field, lit, Pred};
    use crate::ops::Agg;
    use crate::query::Query;
    use sonata_packet::{Field, PacketBuilder, TcpFlags};

    fn syn(src: &str, dst: &str) -> Packet {
        PacketBuilder::tcp(src, dst)
            .unwrap()
            .flags(TcpFlags::SYN)
            .build()
    }

    fn data(src: &str, dst: &str, len: usize) -> Packet {
        PacketBuilder::tcp(src, dst)
            .unwrap()
            .flags(TcpFlags::PSH_ACK)
            .payload(vec![0u8; len])
            .build()
    }

    fn query1(th: u64) -> Query {
        Query::builder("new_tcp", 1)
            .filter(field(Field::TcpFlags).eq(lit(2)))
            .map([("dIP", field(Field::Ipv4Dst)), ("count", lit(1))])
            .reduce(&["dIP"], Agg::Sum, "count")
            .filter(col("count").gt(lit(th)))
            .build()
            .unwrap()
    }

    #[test]
    fn query1_counts_syns_per_host() {
        let mut pkts = Vec::new();
        for i in 0..5 {
            pkts.push(syn(&format!("1.2.3.{i}:100"), "9.9.9.9:80"));
        }
        pkts.push(syn("1.1.1.1:5", "8.8.8.8:80"));
        pkts.push(data("1.1.1.1:5", "9.9.9.9:80", 100)); // not a SYN
        let out = run_query(&query1(2), &pkts).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].get(0), &Value::U64(0x09090909));
        assert_eq!(out[0].get(1), &Value::U64(5));
    }

    #[test]
    fn query1_threshold_is_strict() {
        let pkts: Vec<Packet> = (0..3)
            .map(|i| syn(&format!("1.2.3.{i}:100"), "9.9.9.9:80"))
            .collect();
        assert_eq!(run_query(&query1(3), &pkts).unwrap().len(), 0);
        assert_eq!(run_query(&query1(2), &pkts).unwrap().len(), 1);
    }

    #[test]
    fn distinct_dedups_within_window() {
        let q = Query::builder("superspreader", 2)
            .map([
                ("sIP", field(Field::Ipv4Src)),
                ("dIP", field(Field::Ipv4Dst)),
            ])
            .distinct()
            .map([("sIP", col("sIP")), ("count", lit(1))])
            .reduce(&["sIP"], Agg::Sum, "count")
            .filter(col("count").gt(lit(2)))
            .build()
            .unwrap();
        let mut pkts = Vec::new();
        // 3 distinct destinations for 7.7.7.7, with duplicates.
        for dst in ["1.0.0.1:80", "1.0.0.2:80", "1.0.0.3:80", "1.0.0.1:81"] {
            pkts.push(data("7.7.7.7:1", dst, 10));
            pkts.push(data("7.7.7.7:1", dst, 10));
        }
        // Only 1 destination for 6.6.6.6.
        pkts.push(data("6.6.6.6:1", "1.0.0.1:80", 10));
        let out = run_query(&q, &pkts).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].get(0), &Value::U64(0x07070707));
        assert_eq!(out[0].get(1), &Value::U64(3));
    }

    #[test]
    fn join_query_combines_branches() {
        // Slowloris-style: connections per host joined with bytes per host.
        let q = Query::builder("slowloris_mini", 3)
            .filter(field(Field::Ipv4Proto).eq(lit(6)))
            .map([
                ("dIP", field(Field::Ipv4Dst)),
                ("sIP", field(Field::Ipv4Src)),
                ("sPort", field(Field::TcpSrcPort)),
            ])
            .distinct()
            .map([("dIP", col("dIP")), ("conns", lit(1))])
            .reduce(&["dIP"], Agg::Sum, "conns")
            .join_with(&["dIP"], |b| {
                b.filter(field(Field::Ipv4Proto).eq(lit(6)))
                    .map([
                        ("dIP", field(Field::Ipv4Dst)),
                        ("bytes", field(Field::PktLen)),
                    ])
                    .reduce(&["dIP"], Agg::Sum, "bytes")
                    .filter(col("bytes").gt(lit(100)))
            })
            .map([
                ("dIP", col("dIP")),
                // connections per kilobyte, scaled to stay integral
                ("cpb", col("conns").mul(lit(1024)).div(col("bytes"))),
            ])
            .filter(col("cpb").gt(lit(10)))
            .build()
            .unwrap();
        let mut pkts = Vec::new();
        // Victim 9.9.9.9: 60 connections of 40 bytes each -> high conns/byte.
        for i in 0..60u32 {
            pkts.push(data(
                &format!("1.2.{}.{}:{}", i / 256, i % 256, 1000 + i),
                "9.9.9.9:80",
                0,
            ));
        }
        // Normal host 8.8.8.8: 2 connections, lots of bytes.
        pkts.push(data("2.2.2.2:5000", "8.8.8.8:80", 5000));
        pkts.push(data("2.2.2.3:5001", "8.8.8.8:80", 5000));
        let out = run_query(&q, &pkts).unwrap();
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].get(0), &Value::U64(0x09090909));
    }

    #[test]
    fn join_on_packet_left_side() {
        // Query-3 shape: left side is raw packets joined on dIP.
        let q = Query::builder("zorro_mini", 4)
            .filter(field(Field::TcpDstPort).eq(lit(23)))
            .join_with_keys(&["dIP"], vec![field(Field::Ipv4Dst)], |b| {
                b.filter(field(Field::TcpDstPort).eq(lit(23)))
                    .map([("dIP", field(Field::Ipv4Dst)), ("cnt1", lit(1))])
                    .reduce(&["dIP"], Agg::Sum, "cnt1")
                    .filter(col("cnt1").gt(lit(3)))
            })
            .filter(Pred::contains("pkt.payload", b"zorro"))
            .map([("dIP", field(Field::Ipv4Dst)), ("count2", lit(1))])
            .reduce(&["dIP"], Agg::Sum, "count2")
            .filter(col("count2").gt(lit(0)))
            .build()
            .unwrap();
        let mut pkts = Vec::new();
        // Victim gets 5 telnet packets, one with the keyword.
        for _ in 0..4 {
            pkts.push(data("1.1.1.1:999", "9.9.9.9:23", 8));
        }
        pkts.push(
            PacketBuilder::tcp("1.1.1.1:999", "9.9.9.9:23")
                .unwrap()
                .flags(TcpFlags::PSH_ACK)
                .payload(&b"run zorro now"[..])
                .build(),
        );
        // Background telnet host below threshold.
        pkts.push(data("1.1.1.1:999", "8.8.8.8:23", 8));
        let out = run_query(&q, &pkts).unwrap();
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].get(0), &Value::U64(0x09090909));
        assert_eq!(out[0].get(1), &Value::U64(1));
    }

    #[test]
    fn windowed_execution_resets_state() {
        let q = query1(1);
        let mut pkts = Vec::new();
        // Window 0: two SYNs; window 1: one SYN (below threshold).
        pkts.push(syn("1.1.1.1:1", "9.9.9.9:80"));
        pkts.push(syn("1.1.1.2:1", "9.9.9.9:80"));
        let mut late = syn("1.1.1.3:1", "9.9.9.9:80");
        late.ts_nanos = 4_000_000_000; // second window (W = 3 s)
        pkts.push(late);
        let windows = run_query_windowed(&q, &pkts).unwrap();
        assert_eq!(windows.len(), 2);
        assert_eq!(windows[0].1.len(), 1); // 2 > 1
        assert_eq!(windows[1].1.len(), 0); // 1 !> 1
    }

    #[test]
    fn empty_input_yields_empty_output() {
        assert!(run_query(&query1(0), &[]).unwrap().is_empty());
    }

    #[test]
    fn map_mask_groups_by_prefix() {
        let q = Query::builder("prefix_agg", 5)
            .filter(field(Field::TcpFlags).eq(lit(2)))
            .map([("b", field(Field::Ipv4Dst).mask(8)), ("count", lit(1))])
            .reduce(&["b"], Agg::Sum, "count")
            .build()
            .unwrap();
        let pkts = vec![
            syn("1.1.1.1:1", "9.1.2.3:80"),
            syn("1.1.1.2:1", "9.200.1.1:80"),
            syn("1.1.1.3:1", "10.0.0.1:80"),
        ];
        let out = run_query(&q, &pkts).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].get(0), &Value::U64(0x09000000));
        assert_eq!(out[0].get(1), &Value::U64(2));
        assert_eq!(out[1].get(0), &Value::U64(0x0a000000));
    }
}
