//! The query AST: pipelines, joins, whole queries, and the builder DSL.
//!
//! A [`Query`] is a linear [`Pipeline`] of operators over the packet
//! stream, optionally joined with a second pipeline ([`Join`]) and
//! followed by post-join operators — the exact shapes of the paper's
//! eleven queries. Validation propagates schemas through every
//! operator and rejects unknown columns up front.

use crate::expr::{Expr, Pred};
use crate::ops::{Agg, Operator};
use crate::tuple::{ColName, Schema};
use sonata_packet::Field;
use std::collections::HashMap;
use std::fmt;

/// A query identifier, carried in report packets as `qid`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryId(pub u32);

impl fmt::Display for QueryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// A linear sequence of dataflow operators.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Pipeline {
    /// Operators in execution order.
    pub ops: Vec<Operator>,
}

impl Pipeline {
    /// An empty pipeline (identity).
    pub fn new() -> Self {
        Pipeline { ops: Vec::new() }
    }

    /// Propagate a schema through every operator, or report the first
    /// unknown column and the index of the offending operator.
    pub fn output_schema(&self, input: &Schema) -> Result<Schema, (usize, ColName)> {
        let mut schema = input.clone();
        for (i, op) in self.ops.iter().enumerate() {
            schema = op.output_schema(&schema).map_err(|c| (i, c))?;
        }
        Ok(schema)
    }

    /// Whether any operator is stateful.
    pub fn has_stateful(&self) -> bool {
        self.ops.iter().any(Operator::is_stateful)
    }

    /// Whether the pipeline ends with a threshold filter
    /// (`col > lit` / `col >= lit`) — i.e. its output is already a
    /// thresholded aggregate. Dynamic refinement treats such a branch
    /// of a join query as a self-contained signal whose coarse output
    /// feeds the next level (the paper's Query 3: the first sub-query
    /// identifies the hosts; the payload predicate only confirms).
    pub fn ends_with_threshold_filter(&self) -> bool {
        matches!(
            self.ops.last(),
            Some(Operator::Filter(crate::expr::Pred::Cmp {
                lhs: Expr::Col(_),
                op: crate::expr::CmpOp::Gt | crate::expr::CmpOp::Ge,
                rhs: Expr::Lit(_),
            }))
        )
    }

    /// Whether any filter in the pipeline searches packet content
    /// (`payload.contains(..)`) — a rare-event *confirmation* predicate
    /// that coarse refinement levels cannot wait for.
    pub fn has_content_predicate(&self) -> bool {
        fn pred_has_contains(p: &Pred) -> bool {
            match p {
                Pred::Contains { .. } => true,
                Pred::And(ps) | Pred::Or(ps) => ps.iter().any(pred_has_contains),
                Pred::Not(inner) => pred_has_contains(inner),
                _ => false,
            }
        }
        self.ops.iter().any(|op| match op {
            Operator::Filter(p) => pred_has_contains(p),
            _ => false,
        })
    }

    /// Column origins after the pipeline: for each output column, the
    /// packet field it is an (optionally masked) copy of, if any.
    pub fn lineage(
        &self,
        input: &Schema,
        input_origins: &HashMap<ColName, Field>,
    ) -> (Schema, HashMap<ColName, Field>) {
        let mut schema = input.clone();
        let mut origins = input_origins.clone();
        for op in &self.ops {
            match op {
                Operator::Filter(_) | Operator::Distinct => {}
                Operator::Map { exprs } => {
                    let mut next = HashMap::new();
                    for (name, e) in exprs {
                        if let Some(f) = expr_origin(e, &origins) {
                            next.insert(name.clone(), f);
                        }
                    }
                    origins = next;
                }
                Operator::Reduce { keys, out, .. } => {
                    let mut next = HashMap::new();
                    for k in keys {
                        if let Some(f) = origins.get(k) {
                            next.insert(k.clone(), *f);
                        }
                    }
                    next.remove(out);
                    origins = next;
                }
            }
            // Schema errors are caught by validation; here we just stop
            // refining lineage if propagation fails.
            match op.output_schema(&schema) {
                Ok(s) => schema = s,
                Err(_) => break,
            }
        }
        (schema, origins)
    }
}

/// The packet field an expression is a plain or masked copy of.
fn expr_origin(e: &Expr, origins: &HashMap<ColName, Field>) -> Option<Field> {
    match e {
        Expr::Col(c) => origins.get(c).copied(),
        Expr::Mask(inner, _) => expr_origin(inner, origins),
        _ => None,
    }
}

/// Origins of the raw packet schema: every column is its own field.
pub fn packet_origins() -> HashMap<ColName, Field> {
    Field::ALL
        .iter()
        .map(|f| (ColName::from(f.name()), *f))
        .collect()
}

/// A join connecting the main pipeline with a second sub-query.
///
/// Tuples from the left (main) pipeline join tuples from `right` on
/// `keys`; the joined tuple is the left tuple extended with the right
/// tuple's non-key columns, then flows through `post`.
#[derive(Debug, Clone, PartialEq)]
pub struct Join {
    /// Join key column names, as found in the **right** output schema.
    pub keys: Vec<ColName>,
    /// Expressions computing the join key from a **left** tuple; by
    /// default `Col(key)` for each key, but Query 3 joins raw packets
    /// (left) with aggregated tuples (right) and needs `ipv4.dIP`
    /// mapped to the right's `dIP`.
    pub left_keys: Vec<Expr>,
    /// The second sub-query, also reading the packet stream.
    pub right: Pipeline,
    /// Operators applied to joined tuples.
    pub post: Pipeline,
}

/// Marks a query as refinable on a hierarchical key (Section 4.1).
#[derive(Debug, Clone, PartialEq)]
pub struct RefinementHint {
    /// The hierarchical packet field (e.g. [`Field::Ipv4Dst`]).
    pub field: Field,
    /// The column in the query's final output holding the key, so the
    /// runtime can feed level-`rᵢ` results into the level-`rᵢ₊₁` filter.
    pub out_col: ColName,
}

/// Identifies one of the up-to-three pipelines in a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PipelineRef {
    /// The main pipeline (before any join).
    Left,
    /// The join's right sub-query.
    Right,
    /// The post-join pipeline.
    Post,
}

/// A position of an operator inside a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OpRef {
    /// Which pipeline.
    pub pipeline: PipelineRef,
    /// Index within that pipeline.
    pub index: usize,
}

/// A complete telemetry query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Identifier carried through compilation and reports.
    pub id: QueryId,
    /// Human-readable name ("newly_opened_tcp_conns").
    pub name: String,
    /// Tumbling-window duration for stateful operators, in
    /// milliseconds. The paper's evaluation uses W = 3 s.
    pub window_ms: u64,
    /// The main operator pipeline.
    pub pipeline: Pipeline,
    /// Optional join with a second sub-query.
    pub join: Option<Join>,
    /// Refinement key, when the query supports dynamic refinement.
    pub refinement: Option<RefinementHint>,
    /// Maximum acceptable detection delay `D_q`, in windows; bounds the
    /// number of refinement levels the planner may use.
    pub delay_budget: Option<usize>,
}

/// Errors detected while validating a query.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// A pipeline is empty where operators are required.
    EmptyQuery,
    /// An operator references a column absent from its input schema.
    UnknownColumn {
        /// Where the operator sits.
        at: OpRef,
        /// The missing column.
        column: ColName,
    },
    /// A join key is missing from the right sub-query's output.
    JoinKeyMissing {
        /// The missing key.
        key: ColName,
    },
    /// `left_keys` length differs from `keys` length.
    JoinKeyArity {
        /// Number of `keys`.
        keys: usize,
        /// Number of `left_keys`.
        left_keys: usize,
    },
    /// A `left_keys` expression references a column absent from the
    /// left output schema.
    JoinLeftKeyUnknown {
        /// The missing column.
        column: ColName,
    },
    /// The refinement hint's output column is absent from the final
    /// schema.
    RefinementColMissing {
        /// The missing column.
        column: ColName,
    },
    /// The refinement hint names a non-hierarchical field.
    RefinementNotHierarchical {
        /// The offending field.
        field: Field,
    },
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::EmptyQuery => write!(f, "query has no operators"),
            QueryError::UnknownColumn { at, column } => write!(
                f,
                "operator {:?}[{}] references unknown column `{column}`",
                at.pipeline, at.index
            ),
            QueryError::JoinKeyMissing { key } => {
                write!(f, "join key `{key}` missing from right sub-query output")
            }
            QueryError::JoinKeyArity { keys, left_keys } => write!(
                f,
                "join has {keys} keys but {left_keys} left key expressions"
            ),
            QueryError::JoinLeftKeyUnknown { column } => {
                write!(f, "left join key references unknown column `{column}`")
            }
            QueryError::RefinementColMissing { column } => {
                write!(
                    f,
                    "refinement output column `{column}` missing from final schema"
                )
            }
            QueryError::RefinementNotHierarchical { field } => {
                write!(f, "refinement field `{field}` is not hierarchical")
            }
        }
    }
}

impl std::error::Error for QueryError {}

impl Query {
    /// Start building a query.
    pub fn builder(name: &str, id: u32) -> QueryBuilder {
        QueryBuilder {
            query: Query {
                id: QueryId(id),
                name: name.to_string(),
                window_ms: 3_000,
                pipeline: Pipeline::new(),
                join: None,
                refinement: None,
                delay_budget: None,
            },
            in_post: false,
        }
    }

    /// Access a pipeline by reference id.
    pub fn pipeline_ref(&self, r: PipelineRef) -> Option<&Pipeline> {
        match r {
            PipelineRef::Left => Some(&self.pipeline),
            PipelineRef::Right => self.join.as_ref().map(|j| &j.right),
            PipelineRef::Post => self.join.as_ref().map(|j| &j.post),
        }
    }

    /// Mutable access to a pipeline by reference id.
    pub fn pipeline_ref_mut(&mut self, r: PipelineRef) -> Option<&mut Pipeline> {
        match r {
            PipelineRef::Left => Some(&mut self.pipeline),
            PipelineRef::Right => self.join.as_mut().map(|j| &mut j.right),
            PipelineRef::Post => self.join.as_mut().map(|j| &mut j.post),
        }
    }

    /// The schema of the left pipeline's output (before any join).
    pub fn left_schema(&self) -> Result<Schema, QueryError> {
        self.pipeline
            .output_schema(&Schema::packet())
            .map_err(|(index, column)| QueryError::UnknownColumn {
                at: OpRef {
                    pipeline: PipelineRef::Left,
                    index,
                },
                column,
            })
    }

    /// The final output schema of the whole query.
    pub fn output_schema(&self) -> Result<Schema, QueryError> {
        let left = self.left_schema()?;
        let Some(join) = &self.join else {
            return Ok(left);
        };
        let right = join
            .right
            .output_schema(&Schema::packet())
            .map_err(|(index, column)| QueryError::UnknownColumn {
                at: OpRef {
                    pipeline: PipelineRef::Right,
                    index,
                },
                column,
            })?;
        for k in &join.keys {
            if !right.contains(k) {
                return Err(QueryError::JoinKeyMissing { key: k.clone() });
            }
        }
        let joined = joined_schema(&left, &right, &join.keys);
        join.post
            .output_schema(&joined)
            .map_err(|(index, column)| QueryError::UnknownColumn {
                at: OpRef {
                    pipeline: PipelineRef::Post,
                    index,
                },
                column,
            })
    }

    /// Validate the whole query: schema propagation, join key
    /// consistency, and the refinement hint.
    pub fn validate(&self) -> Result<(), QueryError> {
        if self.pipeline.ops.is_empty() && self.join.is_none() {
            return Err(QueryError::EmptyQuery);
        }
        let left = self.left_schema()?;
        if let Some(join) = &self.join {
            if join.keys.len() != join.left_keys.len() {
                return Err(QueryError::JoinKeyArity {
                    keys: join.keys.len(),
                    left_keys: join.left_keys.len(),
                });
            }
            for e in &join.left_keys {
                let mut cols = Vec::new();
                e.referenced_cols(&mut cols);
                for c in cols {
                    if !left.contains(&c) {
                        return Err(QueryError::JoinLeftKeyUnknown { column: c });
                    }
                }
            }
        }
        let out = self.output_schema()?;
        if let Some(hint) = &self.refinement {
            if !hint.field.is_hierarchical() {
                return Err(QueryError::RefinementNotHierarchical { field: hint.field });
            }
            if !out.contains(&hint.out_col) {
                return Err(QueryError::RefinementColMissing {
                    column: hint.out_col.clone(),
                });
            }
        }
        Ok(())
    }

    /// Every packet [`Field`] referenced anywhere in the query — the
    /// switch parser must extract exactly these (plus qid metadata).
    pub fn referenced_fields(&self) -> Vec<Field> {
        let mut cols: Vec<ColName> = Vec::new();
        let mut collect = |p: &Pipeline| {
            for op in &p.ops {
                match op {
                    Operator::Filter(pred) => pred.referenced_cols(&mut cols),
                    Operator::Map { exprs } => {
                        for (_, e) in exprs {
                            e.referenced_cols(&mut cols);
                        }
                    }
                    Operator::Reduce { keys, value, .. } => {
                        for k in keys {
                            if !cols.contains(k) {
                                cols.push(k.clone());
                            }
                        }
                        if !cols.contains(value) {
                            cols.push(value.clone());
                        }
                    }
                    Operator::Distinct => {}
                }
            }
        };
        collect(&self.pipeline);
        if let Some(join) = &self.join {
            collect(&join.right);
            collect(&join.post);
            for e in &join.left_keys {
                e.referenced_cols(&mut cols);
            }
        }
        let mut fields: Vec<Field> = Vec::new();
        for c in cols {
            if let Some(f) = Field::ALL.iter().find(|f| f.name() == c.as_ref()) {
                if !fields.contains(f) {
                    fields.push(*f);
                }
            }
        }
        fields
    }

    /// Candidate refinement keys: hierarchical packet fields used as a
    /// key of a stateful operator, whose value survives (possibly
    /// masked) into the query output. Returns `(field, output column)`
    /// pairs. For join queries the field must key stateful operators in
    /// *both* branches (both sub-queries share the refinement plan).
    pub fn refinement_candidates(&self) -> Vec<(Field, ColName)> {
        let left_keys = stateful_key_origins(&self.pipeline);
        let out = match self.output_schema() {
            Ok(s) => s,
            Err(_) => return Vec::new(),
        };
        let candidate_fields: Vec<Field> = match &self.join {
            None => left_keys,
            Some(join) => {
                let right_keys = stateful_key_origins(&join.right);
                // A post-pipeline stateful key also counts as a left
                // candidate when the left branch is raw packets.
                let post_keys = stateful_key_origins_from(
                    &join.post,
                    &joined_schema_for_lineage(self, join),
                    &joined_origins(self, join),
                );
                let mut left_all = left_keys;
                for f in post_keys {
                    if !left_all.contains(&f) {
                        left_all.push(f);
                    }
                }
                left_all
                    .into_iter()
                    .filter(|f| right_keys.contains(f))
                    .collect()
            }
        };
        // Keep only fields whose value reaches the output schema.
        let final_origins = self.output_origins();
        let mut result = Vec::new();
        for f in candidate_fields {
            if !f.is_hierarchical() {
                continue;
            }
            for col in out.columns() {
                if final_origins.get(col) == Some(&f) {
                    result.push((f, col.clone()));
                    break;
                }
            }
        }
        result
    }

    /// Column origins of the final output schema.
    pub fn output_origins(&self) -> HashMap<ColName, Field> {
        let (left_schema, left_origins) =
            self.pipeline.lineage(&Schema::packet(), &packet_origins());
        match &self.join {
            None => left_origins,
            Some(join) => {
                let (right_schema, right_origins) =
                    join.right.lineage(&Schema::packet(), &packet_origins());
                let joined = joined_schema(&left_schema, &right_schema, &join.keys);
                let mut origins = left_origins;
                for c in right_schema.columns() {
                    if !join.keys.contains(c) {
                        if let Some(f) = right_origins.get(c) {
                            origins.insert(c.clone(), *f);
                        }
                    }
                }
                // Right key columns land in the joined schema too when the
                // left lacks them (packet-schema left side).
                for k in &join.keys {
                    if joined.contains(k) && !origins.contains_key(k) {
                        if let Some(f) = right_origins.get(k) {
                            origins.insert(k.clone(), *f);
                        }
                    }
                }
                let (_, post_origins) = join.post.lineage(&joined, &origins);
                post_origins
            }
        }
    }

    /// Threshold filters: `Filter(col > lit)` / `Filter(col >= lit)`
    /// operators downstream of a stateful operator — the thresholds
    /// dynamic refinement relaxes at coarse levels (Section 4.1).
    pub fn threshold_filters(&self) -> Vec<(OpRef, ColName, u64)> {
        let mut found = Vec::new();
        let scan = |p: &Pipeline, which: PipelineRef, seen_stateful_before: bool| {
            let mut out = Vec::new();
            let mut stateful = seen_stateful_before;
            for (i, op) in p.ops.iter().enumerate() {
                if op.is_stateful() {
                    stateful = true;
                    continue;
                }
                if !stateful {
                    continue;
                }
                if let Operator::Filter(Pred::Cmp {
                    lhs: Expr::Col(c),
                    op: crate::expr::CmpOp::Gt | crate::expr::CmpOp::Ge,
                    rhs: Expr::Lit(sonata_packet::Value::U64(t)),
                }) = op
                {
                    out.push((
                        OpRef {
                            pipeline: which,
                            index: i,
                        },
                        c.clone(),
                        *t,
                    ));
                }
            }
            out
        };
        found.extend(scan(&self.pipeline, PipelineRef::Left, false));
        if let Some(join) = &self.join {
            found.extend(scan(&join.right, PipelineRef::Right, false));
            // Post-join filters follow the joined aggregates.
            found.extend(scan(&join.post, PipelineRef::Post, true));
        }
        found
    }

    /// Replace the literal threshold of the filter at `at` with `value`.
    /// Returns false if `at` does not address a threshold filter.
    pub fn set_threshold(&mut self, at: OpRef, value: u64) -> bool {
        let Some(p) = self.pipeline_ref_mut(at.pipeline) else {
            return false;
        };
        let Some(Operator::Filter(Pred::Cmp { rhs, .. })) = p.ops.get_mut(at.index) else {
            return false;
        };
        if let Expr::Lit(v) = rhs {
            *v = sonata_packet::Value::U64(value);
            true
        } else {
            false
        }
    }

    /// The paper's "lines of Sonata code" metric for Table 3: one line
    /// for `packetStream` plus one per operator (joins count one line
    /// plus one `packetStream` for the second sub-query).
    pub fn sonata_loc(&self) -> usize {
        let mut loc = 1 + self.pipeline.ops.len();
        if let Some(join) = &self.join {
            loc += 2 + join.right.ops.len() + join.post.ops.len();
        }
        loc
    }
}

/// The schema of a joined tuple: left columns, then right columns not
/// already present (join keys and any coincidentally shared names).
pub fn joined_schema(left: &Schema, right: &Schema, _keys: &[ColName]) -> Schema {
    let extra: Vec<ColName> = right
        .columns()
        .iter()
        .filter(|c| !left.contains(c))
        .cloned()
        .collect();
    left.extend(extra)
}

fn joined_schema_for_lineage(q: &Query, join: &Join) -> Schema {
    let left = q
        .pipeline
        .output_schema(&Schema::packet())
        .unwrap_or_else(|_| Schema::packet());
    let right = join
        .right
        .output_schema(&Schema::packet())
        .unwrap_or_else(|_| Schema::packet());
    joined_schema(&left, &right, &join.keys)
}

fn joined_origins(q: &Query, join: &Join) -> HashMap<ColName, Field> {
    let (_, left_origins) = q.pipeline.lineage(&Schema::packet(), &packet_origins());
    let (right_schema, right_origins) = join.right.lineage(&Schema::packet(), &packet_origins());
    let mut origins = left_origins;
    for c in right_schema.columns() {
        if let Some(f) = right_origins.get(c) {
            origins.entry(c.clone()).or_insert(*f);
        }
    }
    origins
}

/// Hierarchical fields that key stateful operators of a pipeline fed by
/// raw packets.
fn stateful_key_origins(p: &Pipeline) -> Vec<Field> {
    stateful_key_origins_from(p, &Schema::packet(), &packet_origins())
}

fn stateful_key_origins_from(
    p: &Pipeline,
    input: &Schema,
    input_origins: &HashMap<ColName, Field>,
) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut schema = input.clone();
    let mut origins = input_origins.clone();
    for op in &p.ops {
        match op {
            Operator::Reduce { keys, .. } => {
                for k in keys {
                    if let Some(f) = origins.get(k) {
                        if f.is_hierarchical() && !fields.contains(f) {
                            fields.push(*f);
                        }
                    }
                }
            }
            Operator::Distinct => {
                for c in schema.columns() {
                    if let Some(f) = origins.get(c) {
                        if f.is_hierarchical() && !fields.contains(f) {
                            fields.push(*f);
                        }
                    }
                }
            }
            _ => {}
        }
        let single = Pipeline {
            ops: vec![op.clone()],
        };
        let (s, o) = single.lineage(&schema, &origins);
        schema = s;
        origins = o;
    }
    fields
}

/// Fluent builder for [`Query`], mirroring the paper's notation.
///
/// Operators added before [`QueryBuilder::join_with`] go to the main
/// pipeline; operators added after it go to the post-join pipeline.
#[derive(Debug, Clone)]
pub struct QueryBuilder {
    query: Query,
    in_post: bool,
}

impl QueryBuilder {
    /// Set the window duration in milliseconds (default 3000).
    pub fn window_ms(mut self, ms: u64) -> Self {
        self.query.window_ms = ms;
        self
    }

    /// Append a filter.
    pub fn filter(mut self, pred: Pred) -> Self {
        self.push(Operator::Filter(pred));
        self
    }

    /// Append a map with named output columns.
    pub fn map<I, S>(mut self, exprs: I) -> Self
    where
        I: IntoIterator<Item = (S, Expr)>,
        S: Into<ColName>,
    {
        self.push(Operator::Map {
            exprs: exprs.into_iter().map(|(n, e)| (n.into(), e)).collect(),
        });
        self
    }

    /// Append a reduce; the output column keeps the value column name.
    pub fn reduce(self, keys: &[&str], agg: Agg, value: &str) -> Self {
        self.reduce_named(keys, agg, value, value)
    }

    /// Append a reduce with an explicit output column name.
    pub fn reduce_named(mut self, keys: &[&str], agg: Agg, value: &str, out: &str) -> Self {
        self.push(Operator::Reduce {
            keys: keys.iter().map(|k| ColName::from(*k)).collect(),
            agg,
            value: value.into(),
            out: out.into(),
        });
        self
    }

    /// Append a distinct.
    pub fn distinct(mut self) -> Self {
        self.push(Operator::Distinct);
        self
    }

    /// Join the pipeline built so far with a second sub-query on
    /// `keys`; subsequent operators apply to the joined stream. The
    /// sub-query is built by `f` from a fresh builder.
    pub fn join_with<F>(self, keys: &[&str], f: F) -> Self
    where
        F: FnOnce(QueryBuilder) -> QueryBuilder,
    {
        let left_keys = keys.iter().map(|k| crate::expr::col(k)).collect();
        self.join_with_keys(keys, left_keys, f)
    }

    /// Like [`QueryBuilder::join_with`] but with explicit expressions
    /// computing the join key from left tuples (Query 3 joins raw
    /// packets against aggregated tuples).
    pub fn join_with_keys<F>(mut self, keys: &[&str], left_keys: Vec<Expr>, f: F) -> Self
    where
        F: FnOnce(QueryBuilder) -> QueryBuilder,
    {
        assert!(self.query.join.is_none(), "query already has a join");
        let sub = f(Query::builder("__right", u32::MAX));
        self.query.join = Some(Join {
            keys: keys.iter().map(|k| ColName::from(*k)).collect(),
            left_keys,
            right: sub.query.pipeline,
            post: Pipeline::new(),
        });
        self.in_post = true;
        self
    }

    /// Mark the query refinable on `field`, with the key appearing in
    /// the output as `out_col`.
    pub fn refine_on(mut self, field: Field, out_col: &str) -> Self {
        self.query.refinement = Some(RefinementHint {
            field,
            out_col: out_col.into(),
        });
        self
    }

    /// Set the maximum detection delay in windows.
    pub fn delay_budget(mut self, windows: usize) -> Self {
        self.query.delay_budget = Some(windows);
        self
    }

    fn push(&mut self, op: Operator) {
        if self.in_post {
            self.query
                .join
                .as_mut()
                .expect("in_post implies join")
                .post
                .ops
                .push(op);
        } else {
            self.query.pipeline.ops.push(op);
        }
    }

    /// Validate and return the query.
    pub fn build(self) -> Result<Query, QueryError> {
        self.query.validate()?;
        Ok(self.query)
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "// {} ({})", self.name, self.id)?;
        writeln!(f, "packetStream(W={}ms)", self.window_ms)?;
        for op in &self.pipeline.ops {
            writeln!(f, "  {op}")?;
        }
        if let Some(join) = &self.join {
            write!(f, "  .join(keys=(")?;
            for (i, k) in join.keys.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{k}")?;
            }
            writeln!(f, "), packetStream")?;
            for op in &join.right.ops {
                writeln!(f, "    {op}")?;
            }
            writeln!(f, "  )")?;
            for op in &join.post.ops {
                writeln!(f, "  {op}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{self, Thresholds};

    #[test]
    fn ends_with_threshold_filter_detection() {
        let t = Thresholds::default();
        // Zorro's right branch ends with filter(cnt1 > Th1).
        let zorro = catalog::zorro(&t);
        assert!(zorro
            .join
            .as_ref()
            .unwrap()
            .right
            .ends_with_threshold_filter());
        // Zorro's left branch is a bare packet filter, not a threshold.
        assert!(!zorro.pipeline.ends_with_threshold_filter());
        // SYN flood branches end in reduce (no threshold filter).
        let flood = catalog::tcp_syn_flood(&t);
        assert!(!flood.pipeline.ends_with_threshold_filter());
        assert!(!flood
            .join
            .as_ref()
            .unwrap()
            .right
            .ends_with_threshold_filter());
        // Query 1's pipeline ends with its threshold filter.
        assert!(catalog::newly_opened_tcp_conns(&t)
            .pipeline
            .ends_with_threshold_filter());
    }

    #[test]
    fn content_predicate_detection() {
        let t = Thresholds::default();
        let zorro = catalog::zorro(&t);
        assert!(zorro.join.as_ref().unwrap().post.has_content_predicate());
        assert!(!zorro.pipeline.has_content_predicate());
        let flood = catalog::tcp_syn_flood(&t);
        assert!(!flood.join.as_ref().unwrap().post.has_content_predicate());
        let slow = catalog::slowloris(&t);
        assert!(!slow.join.as_ref().unwrap().post.has_content_predicate());
    }

    #[test]
    fn threshold_filters_found_in_all_pipelines() {
        let t = Thresholds::default();
        let slow = catalog::slowloris(&t);
        let filters = slow.threshold_filters();
        // bytes > Th1 (right branch) and cpkb > Th2 (post).
        assert_eq!(filters.len(), 2);
        let pipes: Vec<_> = filters.iter().map(|(at, _, _)| at.pipeline).collect();
        assert!(pipes.contains(&PipelineRef::Right));
        assert!(pipes.contains(&PipelineRef::Post));
    }

    #[test]
    fn set_threshold_round_trip() {
        let t = Thresholds::default();
        let mut q = catalog::newly_opened_tcp_conns(&t);
        let (at, col, orig) = q.threshold_filters()[0].clone();
        assert_eq!(col.as_ref(), "count");
        assert_eq!(orig, t.new_tcp);
        assert!(q.set_threshold(at, 999));
        assert_eq!(q.threshold_filters()[0].2, 999);
        // Addressing a non-filter op fails gracefully.
        let bad = OpRef {
            pipeline: PipelineRef::Left,
            index: 1,
        }; // the map
        assert!(!q.set_threshold(bad, 1));
        // A right-branch address on a join-free query fails too.
        let no_branch = OpRef {
            pipeline: PipelineRef::Right,
            index: 0,
        };
        assert!(!q.set_threshold(no_branch, 1));
    }

    #[test]
    fn sonata_loc_counts_join_lines() {
        let t = Thresholds::default();
        let q1 = catalog::newly_opened_tcp_conns(&t);
        assert_eq!(q1.sonata_loc(), 1 + 4);
        let flood = catalog::tcp_syn_flood(&t);
        // packetStream + 3 left ops + join line + packetStream + 3 right + 2 post
        assert_eq!(flood.sonata_loc(), 1 + 3 + 2 + 3 + 2);
    }

    #[test]
    fn builder_rejects_bad_queries() {
        use crate::expr::{col, lit};
        // Unknown column in map.
        let err = Query::builder("bad", 1)
            .map([("x", col("nope"))])
            .build()
            .unwrap_err();
        assert!(matches!(err, QueryError::UnknownColumn { .. }));
        // Join key absent from right output.
        let err = Query::builder("bad2", 2)
            .map([("a", lit(1))])
            .join_with(&["missing"], |b| b.map([("b", lit(2))]))
            .build()
            .unwrap_err();
        // The key is missing from both sides; left-key validation
        // fires first.
        assert!(matches!(
            err,
            QueryError::JoinKeyMissing { .. } | QueryError::JoinLeftKeyUnknown { .. }
        ));
        // Refinement hint column not in output.
        let err = Query::builder("bad3", 3)
            .map([("a", lit(1))])
            .refine_on(sonata_packet::Field::Ipv4Dst, "gone")
            .build()
            .unwrap_err();
        assert!(matches!(err, QueryError::RefinementColMissing { .. }));
        // Refinement on a flat field.
        let err = Query::builder("bad4", 4)
            .map([("a", crate::expr::field(sonata_packet::Field::TcpFlags))])
            .refine_on(sonata_packet::Field::TcpFlags, "a")
            .build()
            .unwrap_err();
        assert!(matches!(err, QueryError::RefinementNotHierarchical { .. }));
        // Empty query.
        let err = Query::builder("bad5", 5).build().unwrap_err();
        assert!(matches!(err, QueryError::EmptyQuery));
    }
}
