//! The eleven telemetry queries of Table 3, each parameterized by its
//! detection thresholds.
//!
//! The first eight process only layer-3/4 header fields (the subset
//! the paper's Figure 7 evaluates); the last three need DNS fields or
//! payload inspection and exercise partitioned execution. Query
//! numbers match Table 3 of the paper.

use crate::expr::{col, field, lit, Pred};
use crate::ops::Agg;
use crate::query::Query;
use sonata_packet::{Field, TcpFlags};

/// Detection thresholds for the catalog queries. Defaults are tuned so
/// that the synthetic workloads in `sonata-traffic` produce a small
/// number of "needles" per window, as in the paper's traces.
#[derive(Debug, Clone)]
pub struct Thresholds {
    /// Query 1: SYNs per host per window.
    pub new_tcp: u64,
    /// Query 2: distinct same-sized SSH packets per host.
    pub ssh_brute: u64,
    /// Query 3: distinct destinations per source.
    pub superspreader: u64,
    /// Query 4: distinct destination ports per source.
    pub port_scan: u64,
    /// Query 5: distinct sources per destination.
    pub ddos: u64,
    /// Query 6: SYN − ACK difference per host.
    pub syn_flood: u64,
    /// Query 7: SYN − FIN difference per host.
    pub incomplete_flows: u64,
    /// Query 8: minimum bytes for the Slowloris byte-count branch.
    pub slowloris_bytes: u64,
    /// Query 8: connections-per-kilobyte threshold.
    pub slowloris_cpkb: u64,
    /// Query 9: distinct DNS query names per source.
    pub dns_tunneling: u64,
    /// Query 10: similar-sized telnet packets per host.
    pub zorro_pkts: u64,
    /// Query 10: "zorro" payload packets per host.
    pub zorro_payloads: u64,
    /// Query 11: DNS responses per victim.
    pub dns_reflection: u64,
    /// Extension query: distinct resolved IPs per domain (fast flux).
    pub malicious_domains: u64,
    /// Window size in milliseconds for every query.
    pub window_ms: u64,
}

impl Default for Thresholds {
    fn default() -> Self {
        Thresholds {
            new_tcp: 40,
            ssh_brute: 40,
            superspreader: 40,
            port_scan: 40,
            ddos: 40,
            syn_flood: 30,
            incomplete_flows: 30,
            slowloris_bytes: 500,
            slowloris_cpkb: 5,
            dns_tunneling: 30,
            zorro_pkts: 6,
            zorro_payloads: 0,
            dns_reflection: 50,
            malicious_domains: 20,
            window_ms: 3_000,
        }
    }
}

/// Query 1 — detect newly opened TCP connections (SYN floods) \[58\].
pub fn newly_opened_tcp_conns(t: &Thresholds) -> Query {
    Query::builder("newly_opened_tcp_conns", 1)
        .window_ms(t.window_ms)
        .filter(field(Field::TcpFlags).eq(lit(TcpFlags::SYN.0 as u64)))
        .map([("dIP", field(Field::Ipv4Dst)), ("count", lit(1))])
        .reduce(&["dIP"], Agg::Sum, "count")
        .filter(col("count").gt(lit(t.new_tcp)))
        .refine_on(Field::Ipv4Dst, "dIP")
        .build()
        .expect("catalog query 1 is valid")
}

/// Query 2 — detect SSH brute-force attacks: hosts receiving many
/// distinct same-sized SSH packets \[21\].
pub fn ssh_brute_force(t: &Thresholds) -> Query {
    Query::builder("ssh_brute_force", 2)
        .window_ms(t.window_ms)
        .filter(
            field(Field::Ipv4Proto)
                .eq(lit(6))
                .and(field(Field::TcpDstPort).eq(lit(22))),
        )
        .map([
            ("dIP", field(Field::Ipv4Dst)),
            ("sIP", field(Field::Ipv4Src)),
            ("len", field(Field::PktLen)),
        ])
        .distinct()
        .map([("dIP", col("dIP")), ("len", col("len")), ("count", lit(1))])
        .reduce(&["dIP", "len"], Agg::Sum, "count")
        .filter(col("count").gt(lit(t.ssh_brute)))
        .refine_on(Field::Ipv4Dst, "dIP")
        .build()
        .expect("catalog query 2 is valid")
}

/// Query 3 — detect superspreaders: sources contacting many distinct
/// destinations \[56\].
pub fn superspreader(t: &Thresholds) -> Query {
    Query::builder("superspreader", 3)
        .window_ms(t.window_ms)
        .map([
            ("sIP", field(Field::Ipv4Src)),
            ("dIP", field(Field::Ipv4Dst)),
        ])
        .distinct()
        .map([("sIP", col("sIP")), ("count", lit(1))])
        .reduce(&["sIP"], Agg::Sum, "count")
        .filter(col("count").gt(lit(t.superspreader)))
        .refine_on(Field::Ipv4Src, "sIP")
        .build()
        .expect("catalog query 3 is valid")
}

/// Query 4 — detect port scans: sources probing many distinct
/// destination ports \[24\].
pub fn port_scan(t: &Thresholds) -> Query {
    Query::builder("port_scan", 4)
        .window_ms(t.window_ms)
        .filter(field(Field::Ipv4Proto).eq(lit(6)))
        .map([
            ("sIP", field(Field::Ipv4Src)),
            ("dPort", field(Field::TcpDstPort)),
        ])
        .distinct()
        .map([("sIP", col("sIP")), ("count", lit(1))])
        .reduce(&["sIP"], Agg::Sum, "count")
        .filter(col("count").gt(lit(t.port_scan)))
        .refine_on(Field::Ipv4Src, "sIP")
        .build()
        .expect("catalog query 4 is valid")
}

/// Query 5 — detect volumetric DDoS: destinations contacted by many
/// distinct sources \[56\].
pub fn ddos(t: &Thresholds) -> Query {
    Query::builder("ddos", 5)
        .window_ms(t.window_ms)
        .map([
            ("dIP", field(Field::Ipv4Dst)),
            ("sIP", field(Field::Ipv4Src)),
        ])
        .distinct()
        .map([("dIP", col("dIP")), ("count", lit(1))])
        .reduce(&["dIP"], Agg::Sum, "count")
        .filter(col("count").gt(lit(t.ddos)))
        .refine_on(Field::Ipv4Dst, "dIP")
        .build()
        .expect("catalog query 5 is valid")
}

/// Query 6 — detect TCP SYN floods as an imbalance between SYNs
/// received and ACKs completed, via a join of two sub-queries \[58\].
pub fn tcp_syn_flood(t: &Thresholds) -> Query {
    Query::builder("tcp_syn_flood", 6)
        .window_ms(t.window_ms)
        .filter(field(Field::TcpFlags).eq(lit(TcpFlags::SYN.0 as u64)))
        .map([("host", field(Field::Ipv4Dst)), ("syns", lit(1))])
        .reduce(&["host"], Agg::Sum, "syns")
        .join_with(&["host"], |b| {
            b.filter(field(Field::TcpFlags).eq(lit(TcpFlags::ACK.0 as u64)))
                .map([("host", field(Field::Ipv4Dst)), ("acks", lit(1))])
                .reduce(&["host"], Agg::Sum, "acks")
        })
        .map([
            ("host", col("host")),
            ("diff", col("syns").sub(col("acks"))),
        ])
        .filter(col("diff").gt(lit(t.syn_flood)))
        .refine_on(Field::Ipv4Dst, "host")
        .build()
        .expect("catalog query 6 is valid")
}

/// Query 7 — detect incomplete TCP flows: many more connections opened
/// than closed per host \[58\].
pub fn tcp_incomplete_flows(t: &Thresholds) -> Query {
    Query::builder("tcp_incomplete_flows", 7)
        .window_ms(t.window_ms)
        .filter(field(Field::TcpFlags).eq(lit(TcpFlags::SYN.0 as u64)))
        .map([("host", field(Field::Ipv4Dst)), ("syns", lit(1))])
        .reduce(&["host"], Agg::Sum, "syns")
        .join_with(&["host"], |b| {
            b.filter(field(Field::TcpFlags).eq(lit(TcpFlags::FIN.union(TcpFlags::ACK).0 as u64)))
                .map([("host", field(Field::Ipv4Dst)), ("fins", lit(1))])
                .reduce(&["host"], Agg::Sum, "fins")
        })
        .map([
            ("host", col("host")),
            ("diff", col("syns").sub(col("fins"))),
        ])
        .filter(col("diff").gt(lit(t.incomplete_flows)))
        .refine_on(Field::Ipv4Dst, "host")
        .build()
        .expect("catalog query 7 is valid")
}

/// Query 8 — detect Slowloris attacks: hosts with many connections but
/// little traffic (the paper's Query 2) \[58, 45\].
///
/// The post-join map computes connections per kilobyte (scaled ×1024 to
/// stay in integer arithmetic); the threshold is expressed as "greater
/// than" so the query benefits from iterative refinement (Section 2.2).
pub fn slowloris(t: &Thresholds) -> Query {
    Query::builder("slowloris", 8)
        .window_ms(t.window_ms)
        .filter(field(Field::Ipv4Proto).eq(lit(6)))
        .map([
            ("dIP", field(Field::Ipv4Dst)),
            ("sIP", field(Field::Ipv4Src)),
            ("sPort", field(Field::TcpSrcPort)),
        ])
        .distinct()
        .map([("dIP", col("dIP")), ("conns", lit(1))])
        .reduce(&["dIP"], Agg::Sum, "conns")
        .join_with(&["dIP"], |b| {
            b.filter(field(Field::Ipv4Proto).eq(lit(6)))
                .map([
                    ("dIP", field(Field::Ipv4Dst)),
                    ("bytes", field(Field::PktLen)),
                ])
                .reduce(&["dIP"], Agg::Sum, "bytes")
                .filter(col("bytes").gt(lit(t.slowloris_bytes)))
        })
        .map([
            ("dIP", col("dIP")),
            ("cpkb", col("conns").mul(lit(1024)).div(col("bytes"))),
        ])
        .filter(col("cpkb").gt(lit(t.slowloris_cpkb)))
        .refine_on(Field::Ipv4Dst, "dIP")
        .build()
        .expect("catalog query 8 is valid")
}

/// Query 9 — detect DNS tunneling: sources issuing many distinct DNS
/// query names \[7\]. Requires the stream processor for name parsing.
pub fn dns_tunneling(t: &Thresholds) -> Query {
    Query::builder("dns_tunneling", 9)
        .window_ms(t.window_ms)
        .filter(
            field(Field::UdpDstPort)
                .eq(lit(53))
                .and(field(Field::DnsQr).eq(lit(0))),
        )
        .map([
            ("sIP", field(Field::Ipv4Src)),
            ("qname", field(Field::DnsRrName)),
        ])
        .distinct()
        .map([("sIP", col("sIP")), ("count", lit(1))])
        .reduce(&["sIP"], Agg::Sum, "count")
        .filter(col("count").gt(lit(t.dns_tunneling)))
        .refine_on(Field::Ipv4Src, "sIP")
        .build()
        .expect("catalog query 9 is valid")
}

/// Query 10 — detect Zorro (IoT telnet malware) attacks: hosts that
/// receive many similar-sized telnet packets and then a payload
/// containing "zorro" (the paper's Query 3) \[35\].
pub fn zorro(t: &Thresholds) -> Query {
    Query::builder("zorro", 10)
        .window_ms(t.window_ms)
        .filter(field(Field::TcpDstPort).eq(lit(23)))
        .join_with_keys(&["dIP"], vec![field(Field::Ipv4Dst)], |b| {
            b.filter(field(Field::TcpDstPort).eq(lit(23)))
                .map([
                    ("dIP", field(Field::Ipv4Dst)),
                    // Bucket packet sizes by 16 bytes: a power-of-two
                    // division the switch can do with a shift.
                    ("nBytes", field(Field::PktLen).div(lit(16))),
                    ("cnt1", lit(1)),
                ])
                .reduce(&["dIP", "nBytes"], Agg::Sum, "cnt1")
                .filter(col("cnt1").gt(lit(t.zorro_pkts)))
        })
        .filter(Pred::contains("pkt.payload", b"zorro"))
        .map([("dIP", field(Field::Ipv4Dst)), ("count2", lit(1))])
        .reduce(&["dIP"], Agg::Sum, "count2")
        .filter(col("count2").gt(lit(t.zorro_payloads)))
        .refine_on(Field::Ipv4Dst, "dIP")
        .build()
        .expect("catalog query 10 is valid")
}

/// Query 11 — detect DNS reflection/amplification attacks: victims
/// receiving many DNS responses they did not solicit \[25\].
pub fn dns_reflection(t: &Thresholds) -> Query {
    Query::builder("dns_reflection", 11)
        .window_ms(t.window_ms)
        .filter(
            field(Field::UdpSrcPort)
                .eq(lit(53))
                .and(field(Field::DnsQr).eq(lit(1))),
        )
        .map([("dIP", field(Field::Ipv4Dst)), ("resp", lit(1))])
        .reduce(&["dIP"], Agg::Sum, "resp")
        .filter(col("resp").gt(lit(t.dns_reflection)))
        .refine_on(Field::Ipv4Dst, "dIP")
        .build()
        .expect("catalog query 11 is valid")
}

/// Extension (beyond Table 3): detect malicious "fast flux" domains —
/// domains resolving to many distinct IP addresses — the example
/// Section 4.1 gives for using `dns.rr.name` as a refinement key
/// (levels run from the root domain down to the full name) \[6\].
///
/// Counting distinct resolved addresses needs the answer section,
/// which the data plane cannot parse, so the partition point sits
/// right after the DNS-header filter and refinement steers which
/// domains' responses are mirrored at all.
pub fn malicious_domains(t: &Thresholds) -> Query {
    Query::builder("malicious_domains", 12)
        .window_ms(t.window_ms)
        .filter(
            field(Field::UdpSrcPort)
                .eq(lit(53))
                .and(field(Field::DnsQr).eq(lit(1))),
        )
        .map([
            ("qname", field(Field::DnsRrName)),
            ("rip", field(Field::DnsAnswerIp)),
        ])
        .distinct()
        .map([("qname", col("qname")), ("count", lit(1))])
        .reduce(&["qname"], Agg::Sum, "count")
        .filter(col("count").gt(lit(t.malicious_domains)))
        .refine_on(Field::DnsRrName, "qname")
        .build()
        .expect("extension query 12 is valid")
}

/// All eleven queries, in Table 3 order.
pub fn all(t: &Thresholds) -> Vec<Query> {
    vec![
        newly_opened_tcp_conns(t),
        ssh_brute_force(t),
        superspreader(t),
        port_scan(t),
        ddos(t),
        tcp_syn_flood(t),
        tcp_incomplete_flows(t),
        slowloris(t),
        dns_tunneling(t),
        zorro(t),
        dns_reflection(t),
    ]
}

/// The top eight queries (layer-3/4 only), the set Figure 7 evaluates.
pub fn top8(t: &Thresholds) -> Vec<Query> {
    all(t).into_iter().take(8).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interpret::run_query;
    use sonata_packet::{PacketBuilder, Value};

    #[test]
    fn all_catalog_queries_validate() {
        let t = Thresholds::default();
        let queries = all(&t);
        assert_eq!(queries.len(), 11);
        for q in &queries {
            q.validate().unwrap_or_else(|e| panic!("{}: {e}", q.name));
        }
        // Distinct ids and names.
        let mut ids: Vec<u32> = queries.iter().map(|q| q.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 11);
    }

    #[test]
    fn loc_is_under_twenty_lines() {
        // The paper: "a wide range of telemetry tasks in fewer than 20
        // lines of Sonata code" (Table 3 max is 17).
        for q in all(&Thresholds::default()) {
            assert!(
                q.sonata_loc() <= 20,
                "{} has {} lines",
                q.name,
                q.sonata_loc()
            );
            assert!(q.sonata_loc() >= 4, "{} suspiciously short", q.name);
        }
    }

    #[test]
    fn top8_use_only_l34_fields() {
        use sonata_packet::Field;
        for q in top8(&Thresholds::default()) {
            for f in q.referenced_fields() {
                assert!(
                    !matches!(
                        f,
                        Field::DnsQr
                            | Field::DnsQType
                            | Field::DnsAnCount
                            | Field::DnsRrName
                            | Field::Payload
                    ),
                    "{} references {f}",
                    q.name
                );
            }
        }
    }

    #[test]
    fn refinement_hints_are_detected_as_candidates() {
        for q in all(&Thresholds::default()) {
            let hint = q.refinement.clone().expect("all catalog queries refine");
            let candidates = q.refinement_candidates();
            assert!(
                candidates
                    .iter()
                    .any(|(f, c)| *f == hint.field && *c == hint.out_col),
                "{}: hint {:?} not among candidates {:?}",
                q.name,
                hint,
                candidates
            );
        }
    }

    #[test]
    fn every_query_has_a_threshold_filter() {
        for q in all(&Thresholds::default()) {
            assert!(
                !q.threshold_filters().is_empty(),
                "{} has no threshold filter",
                q.name
            );
        }
    }

    #[test]
    fn dns_reflection_detects_flood() {
        let t = Thresholds {
            dns_reflection: 3,
            ..Thresholds::default()
        };
        let q = dns_reflection(&t);
        let mut pkts = Vec::new();
        for i in 0..5u32 {
            let msg = sonata_packet::DnsHeader::response(
                i as u16,
                "amp.example.com",
                sonata_packet::dns::DnsQType::Any,
                vec![],
            );
            pkts.push(PacketBuilder::dns(0x01010100 + i, 0x63000001, msg).build());
        }
        let out = run_query(&q, &pkts).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].get(0), &Value::U64(0x63000001));
        assert_eq!(out[0].get(1), &Value::U64(5));
    }

    #[test]
    fn malicious_domains_extension_query() {
        let t = Thresholds {
            malicious_domains: 2,
            ..Thresholds::default()
        };
        let q = malicious_domains(&t);
        q.validate().unwrap();
        // Refinement candidate detected on the DNS name.
        assert!(q
            .refinement_candidates()
            .iter()
            .any(|(f, c)| *f == sonata_packet::Field::DnsRrName && c.as_ref() == "qname"));
        // Fast-flux behavior: one domain, many resolved addresses.
        let mut pkts = Vec::new();
        for i in 0..5u32 {
            let msg = sonata_packet::DnsHeader::response(
                i as u16,
                "flux.evil.example",
                sonata_packet::dns::DnsQType::A,
                vec![sonata_packet::DnsRecord {
                    name: "flux.evil.example".into(),
                    rtype: sonata_packet::dns::DnsQType::A,
                    ttl: 5,
                    rdata: (0x05000000u32 + i).to_be_bytes().to_vec(),
                }],
            );
            pkts.push(PacketBuilder::dns(0x08080808, 0xc0000201 + i, msg).build());
        }
        // A stable domain (same address every time) stays quiet.
        for i in 0..5u32 {
            let msg = sonata_packet::DnsHeader::response(
                100 + i as u16,
                "www.example.com",
                sonata_packet::dns::DnsQType::A,
                vec![sonata_packet::DnsRecord {
                    name: "www.example.com".into(),
                    rtype: sonata_packet::dns::DnsQType::A,
                    ttl: 300,
                    rdata: vec![93, 184, 216, 34],
                }],
            );
            pkts.push(PacketBuilder::dns(0x08080808, 0xc0000301 + i, msg).build());
        }
        let out = run_query(&q, &pkts).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].get(0).as_text(), Some("flux.evil.example"));
        assert_eq!(out[0].get(1), &Value::U64(5));
    }

    #[test]
    fn port_scan_detects_scanner() {
        let t = Thresholds {
            port_scan: 10,
            ..Thresholds::default()
        };
        let q = port_scan(&t);
        let mut pkts = Vec::new();
        for port in 1..=20u16 {
            pkts.push(
                PacketBuilder::tcp_raw(0x0badbeef, 4000, 0x0a000001, port)
                    .flags(sonata_packet::TcpFlags::SYN)
                    .build(),
            );
        }
        let out = run_query(&q, &pkts).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].get(0), &Value::U64(0x0badbeef));
        assert_eq!(out[0].get(1), &Value::U64(20));
    }
}
