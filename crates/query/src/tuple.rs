//! Tuples and schemas.
//!
//! A [`Tuple`] is a positional vector of [`Value`]s; its column names
//! live in a shared [`Schema`]. Schemas are immutable and cheap to
//! clone (`Arc` inside); operators derive new schemas during query
//! validation, and the interpreter/stream engine bind expressions to a
//! schema once, not per tuple.

use sonata_packet::{Field, Packet, Value};
use std::fmt;
use std::sync::Arc;

/// A column name. Cheap to clone, compared by string value.
pub type ColName = Arc<str>;

/// An ordered set of column names describing tuple layout.
#[derive(Clone, PartialEq, Eq)]
pub struct Schema {
    cols: Arc<[ColName]>,
}

impl Schema {
    /// Build a schema from column names. Duplicate names are a caller
    /// bug surfaced during query validation, not here.
    pub fn new<I, S>(cols: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<ColName>,
    {
        Schema {
            cols: cols.into_iter().map(Into::into).collect(),
        }
    }

    /// The schema a raw packet stream carries: one column per packet
    /// field, named by [`Field::name`].
    pub fn packet() -> Self {
        Schema::new(Field::ALL.iter().map(|f| f.name()))
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.cols.len()
    }

    /// Whether the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.cols.is_empty()
    }

    /// Index of a column by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.cols.iter().position(|c| c.as_ref() == name)
    }

    /// Whether the schema contains a column.
    pub fn contains(&self, name: &str) -> bool {
        self.index_of(name).is_some()
    }

    /// The column names in order.
    pub fn columns(&self) -> &[ColName] {
        &self.cols
    }

    /// Whether this is the raw packet schema.
    pub fn is_packet(&self) -> bool {
        self.len() == Field::ALL.len()
            && self
                .cols
                .iter()
                .zip(Field::ALL)
                .all(|(c, f)| c.as_ref() == f.name())
    }

    /// A new schema with the given columns appended.
    pub fn extend<I, S>(&self, extra: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<ColName>,
    {
        let mut cols: Vec<ColName> = self.cols.to_vec();
        cols.extend(extra.into_iter().map(Into::into));
        Schema { cols: cols.into() }
    }
}

impl fmt::Debug for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Schema(")?;
        for (i, c) in self.cols.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

/// A positional tuple of values.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tuple {
    values: Vec<Value>,
}

impl Tuple {
    /// Build a tuple from values.
    pub fn new(values: Vec<Value>) -> Self {
        Tuple { values }
    }

    /// Materialize a packet into a tuple over [`Schema::packet`].
    ///
    /// Fields the packet lacks (e.g. TCP fields of a UDP packet) become
    /// `U64(0)` — the same behavior as a PISA parser leaving invalid
    /// PHV containers zeroed. Queries guard with protocol filters.
    pub fn from_packet(pkt: &Packet) -> Self {
        let values = Field::ALL
            .iter()
            .map(|f| pkt.get(*f).unwrap_or(Value::U64(0)))
            .collect();
        Tuple { values }
    }

    /// The values in order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Value at an index.
    pub fn get(&self, idx: usize) -> &Value {
        &self.values[idx]
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the tuple is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Project the tuple onto the given indices.
    pub fn project(&self, indices: &[usize]) -> Tuple {
        Tuple {
            values: indices.iter().map(|&i| self.values[i].clone()).collect(),
        }
    }

    /// Append values from another tuple.
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut values = self.values.clone();
        values.extend(other.values.iter().cloned());
        Tuple { values }
    }

    /// Total width in bits when carried as switch metadata or in a
    /// report packet.
    pub fn width_bits(&self) -> u32 {
        self.values.iter().map(Value::width_bits).sum()
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sonata_packet::{PacketBuilder, TcpFlags};

    #[test]
    fn schema_lookup() {
        let s = Schema::new(["dIP", "count"]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.index_of("dIP"), Some(0));
        assert_eq!(s.index_of("count"), Some(1));
        assert_eq!(s.index_of("missing"), None);
        assert!(s.contains("count"));
        assert!(!s.is_empty());
    }

    #[test]
    fn packet_schema_covers_all_fields() {
        let s = Schema::packet();
        assert!(s.is_packet());
        for f in Field::ALL {
            assert!(s.contains(f.name()), "missing {f}");
        }
        assert!(!Schema::new(["a"]).is_packet());
    }

    #[test]
    fn packet_tuple_resolves_fields() {
        let pkt = PacketBuilder::tcp("10.0.0.1:5555", "10.0.0.2:80")
            .unwrap()
            .flags(TcpFlags::SYN)
            .build();
        let t = Tuple::from_packet(&pkt);
        let s = Schema::packet();
        assert_eq!(
            t.get(s.index_of("ipv4.dIP").unwrap()),
            &Value::U64(0x0a000002)
        );
        assert_eq!(t.get(s.index_of("tcp.flags").unwrap()), &Value::U64(2));
        // UDP fields of a TCP packet read as zero, like zeroed PHV containers.
        assert_eq!(t.get(s.index_of("udp.dPort").unwrap()), &Value::U64(0));
    }

    #[test]
    fn project_and_concat() {
        let t = Tuple::new(vec![Value::U64(1), Value::U64(2), Value::U64(3)]);
        let p = t.project(&[2, 0]);
        assert_eq!(p.values(), &[Value::U64(3), Value::U64(1)]);
        let c = p.concat(&Tuple::new(vec![Value::U64(9)]));
        assert_eq!(c.len(), 3);
        assert_eq!(c.get(2), &Value::U64(9));
    }

    #[test]
    fn schema_extend() {
        let s = Schema::new(["a"]).extend(["b", "c"]);
        assert_eq!(s.columns().len(), 3);
        assert_eq!(s.index_of("c"), Some(2));
    }

    #[test]
    fn tuple_width_bits() {
        let t = Tuple::new(vec![Value::U64(1), Value::Text("abcd".into())]);
        assert_eq!(t.width_bits(), 64 + 32);
    }
}
