//! The dataflow operators of a Sonata pipeline.

use crate::expr::{Expr, Pred};
use crate::tuple::{ColName, Schema};
use std::fmt;

/// Aggregation functions for `reduce`.
///
/// `Sum` and `Count` compile to register `add` actions on a PISA
/// switch; `BitOr` backs `distinct`; `Max`/`Min` compile to a
/// compare-and-store register action.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Agg {
    /// Sum of the value column.
    Sum,
    /// Count of tuples per key (ignores the value column).
    Count,
    /// Maximum of the value column.
    Max,
    /// Minimum of the value column.
    Min,
    /// Bitwise OR of the value column (the `distinct` primitive).
    BitOr,
}

impl Agg {
    /// Fold a new value into the accumulator.
    pub fn fold(self, acc: u64, v: u64) -> u64 {
        match self {
            Agg::Sum => acc.wrapping_add(v),
            Agg::Count => acc.wrapping_add(1),
            Agg::Max => acc.max(v),
            Agg::Min => acc.min(v),
            Agg::BitOr => acc | v,
        }
    }

    /// The accumulator's initial value for the *first* tuple of a key.
    pub fn init(self, v: u64) -> u64 {
        match self {
            Agg::Sum => v,
            Agg::Count => 1,
            Agg::Max => v,
            Agg::Min => v,
            Agg::BitOr => v,
        }
    }

    /// Whether the aggregation is supported by switch register ALUs.
    pub fn switch_computable(self) -> bool {
        // All of these map to a single read-modify-write register
        // action on PISA hardware.
        true
    }

    /// Name used in generated code.
    pub fn name(self) -> &'static str {
        match self {
            Agg::Sum => "sum",
            Agg::Count => "count",
            Agg::Max => "max",
            Agg::Min => "min",
            Agg::BitOr => "bit_or",
        }
    }
}

impl fmt::Display for Agg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One dataflow operator in a pipeline. Joins are not an `Operator`;
/// they connect two pipelines at the [`crate::query::Query`] level
/// (the switch cannot execute them, Section 3.1.2).
#[derive(Debug, Clone, PartialEq)]
pub enum Operator {
    /// Keep tuples satisfying a predicate.
    Filter(Pred),
    /// Project/transform each tuple into a new tuple of named columns.
    Map {
        /// Output columns: `(name, expression)` pairs, in order.
        exprs: Vec<(ColName, Expr)>,
    },
    /// Aggregate tuples sharing `keys` with `agg` over `value`; emits
    /// one `(keys…, out)` tuple per key at window end.
    Reduce {
        /// Grouping columns.
        keys: Vec<ColName>,
        /// Aggregation function.
        agg: Agg,
        /// The aggregated column (ignored by `Count`).
        value: ColName,
        /// Name of the output column.
        out: ColName,
    },
    /// Emit each distinct tuple once per window.
    Distinct,
}

impl Operator {
    /// Short name for diagnostics and generated code.
    pub fn kind(&self) -> &'static str {
        match self {
            Operator::Filter(_) => "filter",
            Operator::Map { .. } => "map",
            Operator::Reduce { .. } => "reduce",
            Operator::Distinct => "distinct",
        }
    }

    /// Whether the operator holds cross-packet state (needs registers
    /// on a switch).
    pub fn is_stateful(&self) -> bool {
        matches!(self, Operator::Reduce { .. } | Operator::Distinct)
    }

    /// The schema produced when this operator consumes `input`, or an
    /// error naming the missing column.
    pub fn output_schema(&self, input: &Schema) -> Result<Schema, ColName> {
        match self {
            Operator::Filter(p) => {
                let mut cols = Vec::new();
                p.referenced_cols(&mut cols);
                for c in cols {
                    if !input.contains(&c) {
                        return Err(c);
                    }
                }
                Ok(input.clone())
            }
            Operator::Map { exprs } => {
                for (_, e) in exprs {
                    let mut cols = Vec::new();
                    e.referenced_cols(&mut cols);
                    for c in cols {
                        if !input.contains(&c) {
                            return Err(c);
                        }
                    }
                }
                Ok(Schema::new(exprs.iter().map(|(n, _)| n.clone())))
            }
            Operator::Reduce {
                keys, value, out, ..
            } => {
                for k in keys {
                    if !input.contains(k) {
                        return Err(k.clone());
                    }
                }
                if !input.contains(value) {
                    return Err(value.clone());
                }
                let mut cols: Vec<ColName> = keys.clone();
                cols.push(out.clone());
                Ok(Schema::new(cols))
            }
            Operator::Distinct => Ok(input.clone()),
        }
    }

    /// Whether the switch can execute this operator (given its
    /// expressions; resource availability is the planner's concern).
    pub fn switch_computable(&self) -> bool {
        match self {
            Operator::Filter(p) => p.switch_computable(),
            Operator::Map { exprs } => exprs.iter().all(|(_, e)| e.switch_computable()),
            Operator::Reduce { agg, .. } => agg.switch_computable(),
            Operator::Distinct => true,
        }
    }
}

impl fmt::Display for Operator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operator::Filter(p) => write!(f, ".filter({p})"),
            Operator::Map { exprs } => {
                write!(f, ".map(")?;
                for (i, (n, e)) in exprs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{n}={e}")?;
                }
                write!(f, ")")
            }
            Operator::Reduce {
                keys, agg, value, ..
            } => {
                write!(f, ".reduce(keys=(")?;
                for (i, k) in keys.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k}")?;
                }
                write!(f, "), f={agg}({value}))")
            }
            Operator::Distinct => write!(f, ".distinct()"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};

    #[test]
    fn agg_fold_semantics() {
        assert_eq!(Agg::Sum.fold(10, 5), 15);
        assert_eq!(Agg::Count.fold(10, 999), 11);
        assert_eq!(Agg::Max.fold(10, 5), 10);
        assert_eq!(Agg::Max.fold(10, 50), 50);
        assert_eq!(Agg::Min.fold(10, 5), 5);
        assert_eq!(Agg::BitOr.fold(0b01, 0b10), 0b11);
        assert_eq!(Agg::Count.init(999), 1);
        assert_eq!(Agg::Sum.init(7), 7);
    }

    #[test]
    fn schema_propagation() {
        let input = Schema::new(["dIP", "len"]);
        let m = Operator::Map {
            exprs: vec![("dIP".into(), col("dIP")), ("count".into(), lit(1))],
        };
        let after_map = m.output_schema(&input).unwrap();
        assert_eq!(after_map.columns().len(), 2);
        assert!(after_map.contains("count"));

        let r = Operator::Reduce {
            keys: vec!["dIP".into()],
            agg: Agg::Sum,
            value: "count".into(),
            out: "count".into(),
        };
        let after_reduce = r.output_schema(&after_map).unwrap();
        assert_eq!(after_reduce.columns().len(), 2);
        assert!(after_reduce.contains("dIP"));
        assert!(after_reduce.contains("count"));
    }

    #[test]
    fn schema_propagation_errors_name_missing_column() {
        let input = Schema::new(["a"]);
        let m = Operator::Map {
            exprs: vec![("x".into(), col("nope"))],
        };
        assert_eq!(m.output_schema(&input).unwrap_err().as_ref(), "nope");
        let f = Operator::Filter(col("gone").gt(lit(0)));
        assert_eq!(f.output_schema(&input).unwrap_err().as_ref(), "gone");
        let r = Operator::Reduce {
            keys: vec!["a".into()],
            agg: Agg::Sum,
            value: "v".into(),
            out: "s".into(),
        };
        assert_eq!(r.output_schema(&input).unwrap_err().as_ref(), "v");
    }

    #[test]
    fn statefulness() {
        assert!(Operator::Distinct.is_stateful());
        assert!(Operator::Reduce {
            keys: vec!["k".into()],
            agg: Agg::Sum,
            value: "v".into(),
            out: "v".into(),
        }
        .is_stateful());
        assert!(!Operator::Filter(col("a").gt(lit(0))).is_stateful());
        assert!(!Operator::Map { exprs: vec![] }.is_stateful());
    }
}
