//! Property tests for the fused [`BoundPipeline`] fast path: for
//! arbitrary pipelines drawn from the operator grammar and arbitrary
//! tuple batches, the fused filter→map→reduce execution must produce
//! exactly the tuples the op-by-op reference interpreter produces —
//! same values, same order, same schema — including when tuples are
//! injected at mid-pipeline entry points and when the pipeline is
//! reused across windows (capacity hints carry over, state must not).

use proptest::prelude::*;
use sonata_packet::Value;
use sonata_query::expr::{col, lit, CmpOp, Expr, Pred};
use sonata_query::interpret::{run_operator, run_pipeline};
use sonata_query::{Agg, BoundPipeline, ColName, Operator, Schema, Tuple};
use std::collections::BTreeMap;

const HOSTS: [&str; 3] = ["a.example", "b.example", "tunnel.evil"];

fn input_schema() -> Schema {
    Schema::new(["sip", "dip", "len", "host"])
}

/// Small value domains so reduce keys actually collide and filters
/// actually cut.
fn arb_tuple() -> impl Strategy<Value = Tuple> {
    (0u64..6, 0u64..6, 0u64..16, 0usize..3).prop_map(|(s, d, l, h)| {
        Tuple::new(vec![
            Value::U64(s),
            Value::U64(d),
            Value::U64(l),
            Value::Text(HOSTS[h].into()),
        ])
    })
}

/// A pipeline shape: optional pre-filter, a map producing two key
/// columns (possibly text-valued, which pushes the reduce off its
/// scalar fast representation) and a value column, a reduce, then an
/// optional post-filter and an optional stateful tail.
#[derive(Debug, Clone)]
struct Shape {
    pre_filter: Option<(usize, u8, u64)>,
    key1: usize,
    key2: usize,
    val: usize,
    keys: u8,
    agg: usize,
    post_filter: Option<(u8, u64)>,
    tail: u8,
}

fn arb_shape() -> impl Strategy<Value = Shape> {
    (
        prop_oneof![Just(None), (0usize..3, 0u8..6, 0u64..8).prop_map(Some)],
        0usize..3,
        0usize..3,
        0usize..4,
        0u8..3,
        0usize..5,
        prop_oneof![Just(None), (0u8..6, 0u64..12).prop_map(Some)],
        0u8..3,
    )
        .prop_map(
            |(pre_filter, key1, key2, val, keys, agg, post_filter, tail)| Shape {
                pre_filter,
                key1,
                key2,
                val,
                keys,
                agg,
                post_filter,
                tail,
            },
        )
}

fn cmp_pred(c: u8, lhs: Expr, n: u64) -> Pred {
    let op = [
        CmpOp::Eq,
        CmpOp::Ne,
        CmpOp::Gt,
        CmpOp::Ge,
        CmpOp::Lt,
        CmpOp::Le,
    ][c as usize % 6];
    Pred::Cmp {
        lhs,
        op,
        rhs: lit(n),
    }
}

fn build_ops(sh: &Shape) -> Vec<Operator> {
    let mut ops = Vec::new();
    if let Some((ci, c, n)) = sh.pre_filter {
        ops.push(Operator::Filter(cmp_pred(
            c,
            col(["sip", "dip", "len"][ci % 3]),
            n,
        )));
    }
    let key_src = ["sip", "dip", "host"];
    let val = match sh.val % 4 {
        0 => col("len"),
        1 => lit(1),
        2 => col("len").add(lit(3)),
        _ => col("sip").mul(lit(2)),
    };
    ops.push(Operator::Map {
        exprs: vec![
            ("k1".into(), col(key_src[sh.key1 % 3])),
            ("k2".into(), col(key_src[sh.key2 % 3])),
            ("v".into(), val),
        ],
    });
    let keys: Vec<ColName> = match sh.keys % 3 {
        0 => vec!["k1".into()],
        1 => vec!["k2".into()],
        _ => vec!["k1".into(), "k2".into()],
    };
    let aggs = [Agg::Sum, Agg::Count, Agg::Max, Agg::Min, Agg::BitOr];
    ops.push(Operator::Reduce {
        keys: keys.clone(),
        agg: aggs[sh.agg % 5],
        value: "v".into(),
        out: "v".into(),
    });
    if let Some((c, n)) = sh.post_filter {
        ops.push(Operator::Filter(cmp_pred(c, col("v"), n)));
    }
    match sh.tail % 3 {
        1 => ops.push(Operator::Distinct),
        2 => ops.push(Operator::Reduce {
            keys: vec![keys[0].clone()],
            agg: Agg::Sum,
            value: "v".into(),
            out: "v".into(),
        }),
        _ => {}
    }
    ops
}

/// The reference entry-merge: walk every operator index, splicing in
/// that index's injected tuples *after* the stream arriving from
/// upstream, exactly as the engine's `run_entries_owned` does.
fn reference_entries(
    ops: &[Operator],
    input: &Schema,
    mut entries: BTreeMap<usize, Vec<Tuple>>,
) -> (Schema, Vec<Tuple>) {
    let mut schema = input.clone();
    let mut tuples: Vec<Tuple> = Vec::new();
    for i in 0..=ops.len() {
        if let Some(extra) = entries.remove(&i) {
            tuples.extend(extra);
        }
        if i < ops.len() {
            let (s, t) = run_operator(&ops[i], &schema, tuples).unwrap();
            schema = s;
            tuples = t;
        }
    }
    (schema, tuples)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fused_chain_matches_op_by_op(
        shape in arb_shape(),
        tuples in proptest::collection::vec(arb_tuple(), 0..120),
    ) {
        let schema = input_schema();
        let ops = build_ops(&shape);
        let (ref_schema, reference) = run_pipeline(&ops, &schema, tuples.clone()).unwrap();
        let mut bound = BoundPipeline::bind(&ops, &schema).unwrap();
        let fused = bound.run(tuples);
        prop_assert_eq!(bound.output_schema(), &ref_schema);
        prop_assert_eq!(fused, reference);
    }

    #[test]
    fn fused_entry_merge_matches_reference(
        shape in arb_shape(),
        tuples in proptest::collection::vec(arb_tuple(), 0..60),
        raw in proptest::collection::vec(
            (0usize..8, proptest::collection::vec(proptest::collection::vec(0u64..32, 8), 0..6)),
            0..4,
        ),
    ) {
        let schema = input_schema();
        let ops = build_ops(&shape);
        let mut bound = BoundPipeline::bind(&ops, &schema).unwrap();
        // Schema at each entry index, for shaping injected tuples.
        let mut schemas = vec![schema.clone()];
        for op in &ops {
            schemas.push(op.output_schema(schemas.last().unwrap()).unwrap());
        }
        let mut entries: BTreeMap<usize, Vec<Tuple>> = BTreeMap::new();
        entries.insert(0, tuples);
        for (i, rows) in raw {
            let idx = i % (ops.len() + 1);
            let width = schemas[idx].columns().len();
            entries.entry(idx).or_default().extend(rows.iter().map(|r| {
                Tuple::new(r[..width].iter().map(|&v| Value::U64(v)).collect())
            }));
        }
        let (ref_schema, reference) = reference_entries(&ops, &schema, entries.clone());
        let (got_schema, got) = bound.run_entries(entries).unwrap();
        prop_assert_eq!(got_schema, ref_schema);
        prop_assert_eq!(got, reference);
    }

    #[test]
    fn repeated_windows_reuse_the_pipeline_cleanly(
        shape in arb_shape(),
        w1 in proptest::collection::vec(arb_tuple(), 0..80),
        w2 in proptest::collection::vec(arb_tuple(), 0..80),
    ) {
        // A bound pipeline carries capacity hints (and pre-sized
        // tables) from window to window; it must never carry *state*.
        let schema = input_schema();
        let ops = build_ops(&shape);
        let mut reused = BoundPipeline::bind(&ops, &schema).unwrap();
        let _ = reused.run(w1);
        let mut fresh = BoundPipeline::bind(&ops, &schema).unwrap();
        prop_assert_eq!(reused.run(w2.clone()), fresh.run(w2));
    }
}
