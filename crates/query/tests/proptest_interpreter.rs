//! Algebraic properties of the reference interpreter — the semantic
//! bedrock the partitioned system is checked against, so it had better
//! obey the dataflow laws the planner's transformations assume.

use proptest::prelude::*;
use sonata_packet::{Packet, PacketBuilder, TcpFlags, Value};
use sonata_query::interpret::{run_operator, run_query};
use sonata_query::prelude::*;
use sonata_query::Operator;
use std::collections::BTreeMap;

fn arb_packet() -> impl Strategy<Value = Packet> {
    (
        0u32..16,
        0u32..16,
        prop_oneof![
            Just(TcpFlags::SYN),
            Just(TcpFlags::ACK),
            Just(TcpFlags::PSH_ACK)
        ],
        0u16..4,
    )
        .prop_map(|(s, d, flags, port)| {
            PacketBuilder::tcp_raw(0x0a000000 + s, 1000 + port, 0x14000000 + d, 80)
                .flags(flags)
                .build()
        })
}

fn packets() -> impl Strategy<Value = Vec<Packet>> {
    proptest::collection::vec(arb_packet(), 0..80)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn adjacent_filters_commute(pkts in packets()) {
        use sonata_packet::Field;
        let build = |first: Pred, second: Pred| {
            Query::builder("q", 1)
                .filter(first)
                .filter(second)
                .map([("dIP", field(Field::Ipv4Dst)), ("c", lit(1))])
                .reduce(&["dIP"], Agg::Sum, "c")
                .build()
                .unwrap()
        };
        let a = field(Field::TcpFlags).eq(lit(2));
        let b = field(Field::Ipv4Src).gt(lit(0x0a000004));
        let ab = run_query(&build(a.clone(), b.clone()), &pkts).unwrap();
        let ba = run_query(&build(b, a), &pkts).unwrap();
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn sum_reduce_is_additive_across_batches(pkts in packets(), split in 0usize..80) {
        // reduce(sum) over A ∪ B == per-key merge of reduce over A and
        // reduce over B — the property the emitter's shunt/dump merge
        // relies on.
        use sonata_packet::Field;
        let q = Query::builder("q", 1)
            .map([("dIP", field(Field::Ipv4Dst)), ("c", lit(1))])
            .reduce(&["dIP"], Agg::Sum, "c")
            .build()
            .unwrap();
        let cut = split.min(pkts.len());
        let whole = run_query(&q, &pkts).unwrap();
        let left = run_query(&q, &pkts[..cut]).unwrap();
        let right = run_query(&q, &pkts[cut..]).unwrap();
        let mut merged: BTreeMap<Value, u64> = BTreeMap::new();
        for t in left.iter().chain(&right) {
            *merged.entry(t.get(0).clone()).or_default() +=
                t.get(1).as_u64().unwrap();
        }
        let whole_map: BTreeMap<Value, u64> = whole
            .iter()
            .map(|t| (t.get(0).clone(), t.get(1).as_u64().unwrap()))
            .collect();
        prop_assert_eq!(merged, whole_map);
    }

    #[test]
    fn distinct_is_idempotent(pkts in packets()) {
        use sonata_packet::Field;
        let once = Query::builder("q", 1)
            .map([("s", field(Field::Ipv4Src)), ("d", field(Field::Ipv4Dst))])
            .distinct()
            .build()
            .unwrap();
        let twice = Query::builder("q", 1)
            .map([("s", field(Field::Ipv4Src)), ("d", field(Field::Ipv4Dst))])
            .distinct()
            .distinct()
            .build()
            .unwrap();
        prop_assert_eq!(run_query(&once, &pkts).unwrap(), run_query(&twice, &pkts).unwrap());
    }

    #[test]
    fn filter_pushdown_through_map_of_kept_columns(pkts in packets()) {
        // filter(dIP cond) after map(dIP, len) == filter on the raw
        // field before the map — the rewriting partitioning depends on.
        use sonata_packet::Field;
        let after = Query::builder("q", 1)
            .map([("dIP", field(Field::Ipv4Dst)), ("len", field(Field::PktLen))])
            .filter(col("dIP").gt(lit(0x14000007)))
            .build()
            .unwrap();
        let before = Query::builder("q", 1)
            .filter(field(Field::Ipv4Dst).gt(lit(0x14000007)))
            .map([("dIP", field(Field::Ipv4Dst)), ("len", field(Field::PktLen))])
            .build()
            .unwrap();
        prop_assert_eq!(run_query(&after, &pkts).unwrap(), run_query(&before, &pkts).unwrap());
    }

    #[test]
    fn reduce_then_threshold_equals_merged_unit_semantics(
        pkts in packets(),
        th in 0u64..6,
    ) {
        // filter(count > th) after reduce == dropping keys below the
        // threshold from the reduce output (the switch's merged
        // threshold semantics).
        use sonata_packet::Field;
        let q = Query::builder("q", 1)
            .map([("dIP", field(Field::Ipv4Dst)), ("c", lit(1))])
            .reduce(&["dIP"], Agg::Sum, "c")
            .filter(col("c").gt(lit(th)))
            .build()
            .unwrap();
        let base = Query::builder("q", 1)
            .map([("dIP", field(Field::Ipv4Dst)), ("c", lit(1))])
            .reduce(&["dIP"], Agg::Sum, "c")
            .build()
            .unwrap();
        let filtered = run_query(&q, &pkts).unwrap();
        let manual: Vec<_> = run_query(&base, &pkts)
            .unwrap()
            .into_iter()
            .filter(|t| t.get(1).as_u64().unwrap() > th)
            .collect();
        prop_assert_eq!(filtered, manual);
    }

    #[test]
    fn operator_outputs_respect_their_schemas(pkts in packets()) {
        // Every operator's output tuples have exactly the arity of the
        // schema it declares.
        use sonata_packet::Field;
        let ops = vec![
            Operator::Filter(field(Field::TcpFlags).eq(lit(2))),
            Operator::Map {
                exprs: vec![
                    ("dIP".into(), field(Field::Ipv4Dst)),
                    ("c".into(), lit(1)),
                ],
            },
            Operator::Distinct,
            Operator::Reduce {
                keys: vec!["dIP".into()],
                agg: Agg::Sum,
                value: "c".into(),
                out: "c".into(),
            },
        ];
        let mut schema = Schema::packet();
        let mut tuples: Vec<Tuple> = pkts.iter().map(Tuple::from_packet).collect();
        for op in &ops {
            let (s, t) = run_operator(op, &schema, tuples).unwrap();
            let expected = op.output_schema(&schema).unwrap();
            prop_assert_eq!(s.columns(), expected.columns());
            for tup in &t {
                prop_assert_eq!(tup.len(), expected.len());
            }
            schema = s;
            tuples = t;
        }
    }
}
