//! Plan explorer: compare the five planning strategies of Table 4 on
//! one query and inspect the code Sonata generates for each target —
//! the P4-style data-plane program and the Spark-style stream plan.
//!
//! ```sh
//! cargo run --release --example plan_explorer [query-number 1..=11]
//! ```

use sonata::pisa::codegen;
use sonata::prelude::*;
use sonata::stream::codegen_stream_plan;
use sonata::traffic::trace::EvaluationTrace;

fn main() {
    let which: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let thresholds = Thresholds::default();
    let all = catalog::all(&thresholds);
    let query = all.get(which.saturating_sub(1)).unwrap_or(&all[0]).clone();
    println!("=== {} (Table 3 #{which}) ===\n{query}", query.name);

    let ev = EvaluationTrace::generate(3, 2, 3_000, 0.2);
    let training: Vec<&[sonata::packet::Packet]> =
        ev.trace.windows(3_000).map(|(_, p)| p).collect();

    println!("plan       | predicted tuples/window | switch units | delay (windows)");
    println!("-----------+-------------------------+--------------+----------------");
    let mut best: Option<(PlanMode, f64)> = None;
    for &mode in PlanMode::ALL {
        let cfg = PlannerConfig {
            mode,
            cost: sonata::planner::costs::CostConfig {
                levels: Some(vec![8, 16, 24, 32]),
                ..Default::default()
            },
            ..PlannerConfig::default()
        };
        let plan = plan_queries(std::slice::from_ref(&query), &training, &cfg).expect("plannable");
        println!(
            "{:<10} | {:>23.0} | {:>12} | {:>15}",
            mode.label(),
            plan.predicted_tuples,
            plan.units_on_switch(),
            plan.max_delay_windows()
        );
        if best.map(|(_, n)| plan.predicted_tuples < n).unwrap_or(true) {
            best = Some((mode, plan.predicted_tuples));
        }
    }
    let (best_mode, _) = best.unwrap();
    println!("\nbest plan: {best_mode}");

    // Generated code for the Sonata plan.
    let cfg = PlannerConfig {
        cost: sonata::planner::costs::CostConfig {
            levels: Some(vec![8, 16, 24, 32]),
            ..Default::default()
        },
        ..PlannerConfig::default()
    };
    let plan = plan_queries(std::slice::from_ref(&query), &training, &cfg).expect("plannable");
    let deployed = sonata::core::driver::deploy(&plan).expect("deployable");
    let p4 = codegen::to_p4(&deployed.program);
    let spark = codegen_stream_plan(&query);
    println!(
        "\n--- generated P4 ({} lines) -------------------------------",
        p4.lines().filter(|l| !l.trim().is_empty()).count()
    );
    for line in p4.lines().take(30) {
        println!("{line}");
    }
    println!("… (truncated)");
    println!(
        "\n--- generated stream plan ({} lines) ----------------------",
        spark.lines().count()
    );
    println!("{spark}");
    println!(
        "Sonata source: {} lines — vs {} P4 + {} stream lines generated",
        query.sonata_loc(),
        p4.lines().filter(|l| !l.trim().is_empty()).count(),
        spark.lines().count()
    );
}
