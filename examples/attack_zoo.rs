//! Attack zoo: run the paper's eight layer-3/4 telemetry queries
//! concurrently over a trace carrying one needle per query, and check
//! each query finds its attacker/victim.
//!
//! ```sh
//! cargo run --release --example attack_zoo
//! ```

use sonata::packet::format_ipv4;
use sonata::prelude::*;
use sonata::traffic::trace::{actors, EvaluationTrace};

fn main() {
    let thresholds = Thresholds::default();
    let queries = catalog::top8(&thresholds);

    // The standard evaluation workload: background + 8 needles.
    println!("generating evaluation trace…");
    let ev = EvaluationTrace::generate(1, 3, 3_000, 0.3);
    let stats = ev.trace.stats();
    println!(
        "{} packets over {:.1}s ({} sources, {} destinations)\n",
        stats.packets,
        stats.duration_ns as f64 / 1e9,
        stats.distinct_sources,
        stats.distinct_destinations,
    );

    let training: Vec<&[sonata::packet::Packet]> =
        ev.trace.windows(3_000).map(|(_, p)| p).collect();
    let cfg = PlannerConfig {
        cost: sonata::planner::costs::CostConfig {
            levels: Some(vec![8, 16, 24, 32]),
            ..Default::default()
        },
        ..PlannerConfig::default()
    };
    println!("planning {} queries…", queries.len());
    let plan = plan_queries(&queries, &training, &cfg).expect("plannable");
    println!("{plan}");

    let mut runtime = Runtime::new(&plan, RuntimeConfig::default()).expect("deployable");
    let report = runtime.process_trace(&ev.trace).expect("clean run");

    // Expected actor per query (the key its output column carries).
    let expected: &[(&str, u32)] = &[
        ("newly_opened_tcp_conns", actors::SYN_FLOOD_VICTIM),
        ("ssh_brute_force", actors::SSH_VICTIM),
        ("superspreader", actors::SPREADER),
        ("port_scan", actors::SCANNER),
        ("ddos", actors::DDOS_VICTIM),
        ("tcp_syn_flood", actors::SYN_FLOOD_VICTIM),
        ("tcp_incomplete_flows", actors::SYN_FLOOD_VICTIM),
        ("slowloris", actors::SLOWLORIS_VICTIM),
    ];

    println!("query                  | alerts | needle            | found");
    println!("-----------------------+--------+-------------------+------");
    let mut found_all = true;
    for (q, (name, actor)) in queries.iter().zip(expected) {
        assert_eq!(q.name, *name);
        let alerts = report.alerts_for(q.id);
        let found = alerts
            .iter()
            .any(|(_, t)| t.values().iter().any(|v| v.as_u64() == Some(*actor as u64)));
        found_all &= found;
        println!(
            "{:<22} | {:>6} | {:<17} | {}",
            q.name,
            alerts.len(),
            format_ipv4(*actor as u64),
            if found { "yes" } else { "NO" }
        );
    }

    println!(
        "\n{} packets → {} tuples at the stream processor ({:.0}× reduction)",
        report.total_packets(),
        report.total_tuples(),
        report.total_packets() as f64 / report.total_tuples().max(1) as f64
    );
    println!(
        "refinement updates: {} entries, {:?} total control latency",
        report
            .windows
            .iter()
            .map(|w| w.filter_entries_written)
            .sum::<usize>(),
        report.total_update_latency()
    );
    if !found_all {
        eprintln!("warning: some needles were missed — try a larger scale factor");
        std::process::exit(1);
    }
}
