//! The paper's Tofino case study (Section 6.3, Figure 9): detecting a
//! Zorro IoT-telnet attack with a join over a payload predicate.
//!
//! An attacker brute-forces telnet logins on 99.7.0.25 starting at
//! t = 10 s with similar-sized packets; at t = 20 s it gains shell
//! access and issues commands containing the keyword "zorro". The
//! query joins "hosts receiving many similar-sized telnet packets"
//! with a payload search that only the stream processor can run —
//! Sonata forwards just the telnet traffic of suspected victims.
//!
//! ```sh
//! cargo run --release --example zorro_case_study
//! ```

use sonata::packet::format_ipv4;
use sonata::prelude::*;
use sonata::traffic::trace::actors;

fn main() {
    let thresholds = Thresholds {
        zorro_pkts: 6,
        zorro_payloads: 0,
        window_ms: 3_000,
        ..Thresholds::default()
    };
    let query = catalog::zorro(&thresholds);
    println!("Query:\n{query}");

    // 24 seconds of background traffic; brute force from t=10s,
    // keyword packets at t=20s (the paper's timeline).
    let mut trace = Trace::background(
        &BackgroundConfig {
            duration_ms: 24_000,
            packets: 120_000,
            ..BackgroundConfig::default()
        },
        99,
    );
    trace.inject(
        &Attack::Zorro {
            victim: actors::ZORRO_VICTIM,
            attacker: actors::ZORRO_ATTACKER,
            telnet_packets: 400,
            packet_len: 32,
            start_ms: 10_000,
            shell_ms: 20_000,
            shell_packets: 5,
        },
        99,
    );

    let training: Vec<&[sonata::packet::Packet]> = trace.windows(3_000).map(|(_, p)| p).collect();
    let plan = plan_queries(
        std::slice::from_ref(&query),
        &training,
        &PlannerConfig::default(),
    )
    .expect("plannable");
    println!("{plan}");

    let mut runtime = Runtime::new(&plan, RuntimeConfig::default()).expect("deployable");
    let report = runtime.process_trace(&trace).expect("clean run");

    println!("  time | received by switch | reported to SP | events");
    let mut victim_identified: Option<u64> = None;
    let mut attack_confirmed: Option<u64> = None;
    for w in &report.windows {
        let t_end = (w.window + 1) * 3;
        let mut events = Vec::new();
        for (_, tuples) in &w.alerts {
            for t in tuples {
                attack_confirmed.get_or_insert(t_end);
                events.push(format!(
                    "ATTACK CONFIRMED on {} ({} zorro pkts)",
                    format_ipv4(t.get(0).as_u64().unwrap_or(0)),
                    t.get(1)
                ));
            }
        }
        if w.filter_entries_written > 0 && victim_identified.is_none() {
            victim_identified = Some(t_end);
            events.push("victim prefix identified (filter updated)".to_string());
        }
        println!(
            "{:>4}s | {:>18} | {:>14} | {}",
            t_end,
            w.packets,
            w.tuples_to_sp,
            events.join("; ")
        );
    }

    match (victim_identified, attack_confirmed) {
        (vi, Some(ac)) => {
            if let Some(vi) = vi {
                println!("\nvictim identified by t={vi}s (refinement feedback)");
            }
            println!("attack confirmed at t={ac}s (keyword seen after shell access at t=20s)");
            assert!(ac >= 21, "cannot confirm before the keyword is sent");
        }
        _ => {
            eprintln!("attack not detected — increase telnet_packets or lower thresholds");
            std::process::exit(1);
        }
    }
    println!(
        "{} packets → {} tuples at the stream processor",
        report.total_packets(),
        report.total_tuples()
    );
}
