//! Quickstart: detect a SYN flood with the paper's Query 1.
//!
//! Builds a synthetic backbone trace, injects a SYN flood, plans the
//! query against a training window, and runs the full switch +
//! stream-processor system — printing the victims it finds and the
//! load reduction the data plane bought.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Set `SONATA_OBS_DIR=<dir>` to also run with observability enabled
//! and export the collected metrics and traces there:
//! `metrics.prom` (Prometheus text), `metrics.json`, `events.jsonl`
//! (structured event log), and `trace.json` (load in chrome://tracing
//! or Perfetto). Fabric runs additionally write `fabric.json`, the
//! fabric-wide snapshot with one part per component
//! (`switch-N` / `shard-N` / `collector`).
//!
//! Pass `--net` to run the deployment topology instead of the
//! in-process default: the switch and the stream processor live on
//! separate OS threads and talk only through the `sonata-net` wire
//! protocol over a localhost TCP socket. The outputs are bit-identical
//! — the run additionally prints the transport counters:
//!
//! ```sh
//! cargo run --release --example quickstart -- --net
//! ```
//!
//! Pass `--fabric NxM` to run the multi-switch fabric instead of a
//! single runtime: the trace is flow-hash partitioned over N switch
//! instances feeding M collector shards, and the partial per-switch
//! window states are merged at the collector. The detections are the
//! same as the 1×1 run:
//!
//! ```sh
//! cargo run --release --example quickstart -- --fabric 2x2
//! ```

use sonata::packet::format_ipv4;
use sonata::prelude::*;

/// Parse `--fabric NxM` from the command line, if present.
fn fabric_arg() -> Option<TopologyConfig> {
    let mut args = std::env::args();
    args.find(|a| a == "--fabric")?;
    let spec = args.next().unwrap_or_else(|| "2x2".into());
    let (n, m) = spec.split_once('x').unwrap_or((spec.as_str(), "1"));
    Some(TopologyConfig::new(
        n.parse().expect("--fabric NxM: N must be a number"),
        m.parse().expect("--fabric NxM: M must be a number"),
    ))
}

fn main() {
    let net = std::env::args().any(|a| a == "--net");
    let fabric = fabric_arg();

    // --- 1. The query -------------------------------------------------
    // packetStream.filter(tcp.flags == SYN)
    //             .map(p => (p.dIP, 1))
    //             .reduce(keys=(dIP,), sum)
    //             .filter(count > 40)
    let thresholds = Thresholds::default();
    let query = catalog::newly_opened_tcp_conns(&thresholds);
    println!("Query:\n{query}");

    // --- 2. The traffic -----------------------------------------------
    let victim = sonata::traffic::trace::actors::SYN_FLOOD_VICTIM;
    let mut trace = Trace::background(
        &BackgroundConfig {
            duration_ms: 9_000,
            packets: 60_000,
            ..BackgroundConfig::default()
        },
        42,
    );
    trace.inject(
        &Attack::SynFlood {
            victim,
            port: 80,
            packets: 3_000,
            sources: 1_500,
            ack_fraction: 0.04,
            fin_fraction: 0.02,
            start_ms: 0,
            duration_ms: 8_500,
        },
        42,
    );
    let stats = trace.stats();
    println!(
        "Trace: {} packets, {} distinct destinations, {:.1} MB",
        stats.packets,
        stats.distinct_destinations,
        stats.bytes as f64 / 1e6
    );

    // --- 3. Planning ---------------------------------------------------
    let training: Vec<&[sonata::packet::Packet]> = trace.windows(3_000).map(|(_, p)| p).collect();
    let plan = plan_queries(
        std::slice::from_ref(&query),
        &training,
        &PlannerConfig::default(),
    )
    .expect("planning succeeds");
    println!("\n{plan}");

    // --- 4. Execution --------------------------------------------------
    // With SONATA_OBS_DIR set, collect metrics + events for export.
    // `--net` forces observability on so the transport counters below
    // have something to read.
    let obs_dir = std::env::var_os("SONATA_OBS_DIR").map(std::path::PathBuf::from);
    let obs = if obs_dir.is_some() || net {
        ObsHandle::enabled()
    } else {
        ObsHandle::disabled()
    };
    let transport = if net {
        TransportKind::Tcp
    } else {
        TransportKind::Loopback
    };
    let config = RuntimeConfig {
        obs: obs.clone(),
        transport,
        topology: fabric.clone(),
        ..RuntimeConfig::default()
    };
    let mut fabric_snapshot = None;
    let report = if let Some(topo) = &fabric {
        // Multi-switch fabric: N flow-sticky partitions, M shards,
        // partial window states merged at the collector.
        println!(
            "\ntopology: {} switches x {} collector shards",
            topo.switches, topo.shards
        );
        let mut fab = Fabric::new(&plan, config).expect("deployable plan");
        let report = fab.process_trace(&trace).expect("clean run");
        // One fabric-wide snapshot: the shared registry routed into
        // per-component parts (switch-N / shard-N / collector).
        fabric_snapshot = Some(fab.fabric_snapshot());
        report
    } else {
        let mut runtime = Runtime::new(&plan, config).expect("deployable plan");
        if net {
            // Deployment topology: switch thread ↔ TCP ↔ collector thread.
            println!("\ntransport: tcp (switch and stream processor on separate threads)");
            runtime.process_trace_threaded(&trace).expect("clean run")
        } else {
            runtime.process_trace(&trace).expect("clean run")
        }
    };

    println!("window | packets | tuples→SP | alerts");
    for w in &report.windows {
        let hosts: Vec<String> = w
            .alerts
            .iter()
            .flat_map(|(_, tuples)| tuples)
            .map(|t| {
                format!(
                    "{} ({} SYNs)",
                    format_ipv4(t.get(0).as_u64().unwrap_or(0)),
                    t.get(1)
                )
            })
            .collect();
        println!(
            "{:>6} | {:>7} | {:>9} | {}",
            w.window,
            w.packets,
            w.tuples_to_sp,
            if hosts.is_empty() {
                "-".to_string()
            } else {
                hosts.join(", ")
            }
        );
    }
    let reduction = report.total_packets() as f64 / report.total_tuples().max(1) as f64;
    println!(
        "\n{} packets → {} tuples at the stream processor ({reduction:.0}× reduction)",
        report.total_packets(),
        report.total_tuples()
    );
    let detected = report
        .alerts_for(query.id)
        .iter()
        .any(|(_, t)| t.get(0).as_u64() == Some(victim as u64));
    println!(
        "victim {} {}",
        format_ipv4(victim as u64),
        if detected { "DETECTED" } else { "missed" }
    );

    if obs.is_enabled() {
        // The window latency waterfall: every number below is the
        // same one the sonata_stage_ns histograms observed, and the
        // same spans land in trace.json for chrome://tracing.
        let lat = report.window_latency();
        println!("\nlatency waterfall (run totals):");
        for (stage, ns) in [
            ("packet_loop", lat.packet_loop_ns),
            ("window_dump", lat.dump_encode_ns),
            ("transport", lat.transport_ns),
            ("collector_drain", lat.collector_drain_ns),
            ("shard_execute", lat.shard_execute_ns),
            ("merge", lat.merge_ns),
        ] {
            println!("  {stage:>15} {:>10.3} ms", ns as f64 / 1e6);
        }
        if let Some(last) = report.windows.last() {
            if let Some(straggler) = last.latency.straggler() {
                println!(
                    "  window {} straggler: switch-{}",
                    last.window, straggler.switch
                );
            }
        }
    }

    if net {
        println!("\ntransport counters:");
        for (key, value) in report
            .metrics
            .counters
            .iter()
            .chain(&report.metrics.gauges)
            .filter(|(key, _)| key.starts_with("sonata_net_"))
        {
            println!("  {key} = {value}");
        }
    }

    // --- 5. Observability export ---------------------------------------
    if let Some(dir) = obs_dir {
        std::fs::create_dir_all(&dir).expect("create obs dir");
        let snapshot = &report.metrics;
        // Validate with the in-tree schema checkers before writing,
        // so a CI artifact is a checked artifact.
        sonata::obs::validate_snapshot_json(&snapshot.to_json()).expect("snapshot JSON schema");
        std::fs::write(dir.join("metrics.prom"), snapshot.to_prometheus()).unwrap();
        std::fs::write(dir.join("metrics.json"), snapshot.to_json()).unwrap();
        std::fs::write(dir.join("events.jsonl"), obs.events_jsonl()).unwrap();
        std::fs::write(dir.join("trace.json"), obs.chrome_trace()).unwrap();
        if let Some(fab) = &fabric_snapshot {
            sonata::obs::validate_fabric_snapshot_json(&fab.to_json()).expect("fabric JSON schema");
            std::fs::write(dir.join("fabric.json"), fab.to_json()).unwrap();
        }
        println!(
            "\nobservability: {} counters, {} events → {}",
            snapshot.counters.len(),
            obs.events().len(),
            dir.display()
        );
    }
}
