//! Quickstart: detect a SYN flood with the paper's Query 1.
//!
//! Builds a synthetic backbone trace, injects a SYN flood, plans the
//! query against a training window, and runs the full switch +
//! stream-processor system — printing the victims it finds and the
//! load reduction the data plane bought.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Set `SONATA_OBS_DIR=<dir>` to also run with observability enabled
//! and export the collected metrics and traces there:
//! `metrics.prom` (Prometheus text), `metrics.json`, `events.jsonl`
//! (structured event log), and `trace.json` (load in chrome://tracing
//! or Perfetto). Fabric runs additionally write `fabric.json`, the
//! fabric-wide snapshot with one part per component
//! (`switch-N` / `shard-N` / `collector`).
//!
//! Pass `--net` to run the deployment topology instead of the
//! in-process default: the switch and the stream processor live on
//! separate OS threads and talk only through the `sonata-net` wire
//! protocol over a localhost TCP socket. The outputs are bit-identical
//! — the run additionally prints the transport counters:
//!
//! ```sh
//! cargo run --release --example quickstart -- --net
//! ```
//!
//! Pass `--fabric NxM` to run the multi-switch fabric instead of a
//! single runtime: the trace is flow-hash partitioned over N switch
//! instances feeding M collector shards, and the partial per-switch
//! window states are merged at the collector. The detections are the
//! same as the 1×1 run:
//!
//! ```sh
//! cargo run --release --example quickstart -- --fabric 2x2
//! ```
//!
//! Pass `--sketch [layout]` to swap the stateful registers for the
//! approximate layouts from `sonata-sketch` (`count-min` — the
//! default, `bloom`, `hll`; `exact` is the no-op reference knob).
//! Each window's report then carries the per-query `(ε, δ)` error
//! bound actually incurred, printed next to the detections. Composes
//! with `--fabric`, where the per-switch bounds are folded at the
//! collector:
//!
//! ```sh
//! cargo run --release --example quickstart -- --sketch count-min --fabric 2x2
//! ```
//!
//! Pass `--drift <scenario>` to watch the closed replanning loop
//! instead of a static run: the system plans on quiet traffic, then
//! runs a [`DriftWorkload`] whose distribution shifts mid-run
//! (`diurnal` ramp, `flash` crowd, `attack` onset; `quiet` arms the
//! loop on undrifted traffic to show it stays inert). The drift
//! monitor fires a trigger, a warm-started re-solve runs off the hot
//! path, and the epoch-bumped plan swaps in at a window boundary —
//! the run prints the trigger, the swap, the per-window epoch, and
//! the recovered divergence. Composes with `--fabric`:
//!
//! ```sh
//! cargo run --release --example quickstart -- --fabric 2x2 --drift attack
//! ```

use sonata::obs::EventKind;
use sonata::packet::format_ipv4;
use sonata::prelude::*;

/// Parse `--fabric NxM` from the command line, if present.
fn fabric_arg() -> Option<TopologyConfig> {
    let mut args = std::env::args();
    args.find(|a| a == "--fabric")?;
    let spec = args.next().unwrap_or_else(|| "2x2".into());
    let (n, m) = spec.split_once('x').unwrap_or((spec.as_str(), "1"));
    Some(TopologyConfig::new(
        n.parse().expect("--fabric NxM: N must be a number"),
        m.parse().expect("--fabric NxM: M must be a number"),
    ))
}

/// Parse `--sketch [layout]` from the command line, if present. The
/// layout operand is optional (bare `--sketch` means `count-min`), so
/// `--sketch --fabric 2x2` keeps working.
fn sketch_arg() -> Option<StateLayout> {
    let mut args = std::env::args();
    args.find(|a| a == "--sketch")?;
    match args.next() {
        Some(s) if !s.starts_with("--") => Some(StateLayout::parse(&s).unwrap_or_else(|| {
            panic!("--sketch: unknown layout {s:?} (exact|count-min|bloom|hll)")
        })),
        _ => Some(StateLayout::CountMin),
    }
}

/// Parse `--drift <scenario>` from the command line, if present.
/// `Some(None)` is the `quiet` control: loop armed, traffic undrifted.
fn drift_arg() -> Option<Option<DriftScenario>> {
    let mut args = std::env::args();
    args.find(|a| a == "--drift")?;
    let name = args.next().unwrap_or_else(|| "attack".into());
    if name == "quiet" {
        return Some(None);
    }
    Some(Some(DriftScenario::from_name(&name).unwrap_or_else(|| {
        panic!("--drift: unknown scenario {name:?} (quiet|diurnal|flash|attack)")
    })))
}

fn main() {
    let net = std::env::args().any(|a| a == "--net");
    let fabric = fabric_arg();
    let drift = drift_arg();
    let sketch = sketch_arg();

    // --- 1. The query -------------------------------------------------
    // packetStream.filter(tcp.flags == SYN)
    //             .map(p => (p.dIP, 1))
    //             .reduce(keys=(dIP,), sum)
    //             .filter(count > 40)
    let thresholds = Thresholds::default();
    let query = catalog::newly_opened_tcp_conns(&thresholds);
    println!("Query:\n{query}");
    // Drift runs add the convergence suite's companions so the monitor
    // watches a multi-query channel-load vector, as in the paper's
    // multi-query deployments.
    let queries = if drift.is_some() {
        vec![
            query.clone(),
            catalog::superspreader(&thresholds),
            catalog::ddos(&thresholds),
        ]
    } else {
        vec![query.clone()]
    };

    // --- 2. The traffic -----------------------------------------------
    let victim = sonata::traffic::trace::actors::SYN_FLOOD_VICTIM;
    let workload = drift.as_ref().map(|scenario| DriftWorkload {
        onset_window: 2,
        packets_per_window: 4_000,
        ..DriftWorkload::new(
            scenario.clone().unwrap_or_else(DriftScenario::attack_onset),
            8,
            3_000,
        )
    });
    let trace = if let (Some(wl), Some(scenario)) = (&workload, &drift) {
        println!(
            "\ndrift: {} from window {} ({} windows total)",
            scenario.as_ref().map_or("quiet", |s| s.name()),
            wl.onset_window,
            wl.windows
        );
        if scenario.is_some() {
            wl.generate(42)
        } else {
            wl.training(42)
        }
    } else {
        let mut trace = Trace::background(
            &BackgroundConfig {
                duration_ms: 9_000,
                packets: 60_000,
                ..BackgroundConfig::default()
            },
            42,
        );
        trace.inject(
            &Attack::SynFlood {
                victim,
                port: 80,
                packets: 3_000,
                sources: 1_500,
                ack_fraction: 0.04,
                fin_fraction: 0.02,
                start_ms: 0,
                duration_ms: 8_500,
            },
            42,
        );
        trace
    };
    let stats = trace.stats();
    println!(
        "Trace: {} packets, {} distinct destinations, {:.1} MB",
        stats.packets,
        stats.distinct_destinations,
        stats.bytes as f64 / 1e6
    );

    // --- 3. Planning ---------------------------------------------------
    // Drift runs plan on the workload's quiet trace — the whole point
    // is that the traffic the plan meets is not the traffic it was
    // built for.
    let quiet = workload.as_ref().map(|wl| wl.training(42));
    let training: Vec<&[sonata::packet::Packet]> = quiet
        .as_ref()
        .unwrap_or(&trace)
        .windows(3_000)
        .map(|(_, p)| p)
        .collect();
    let plan =
        plan_queries(&queries, &training, &PlannerConfig::default()).expect("planning succeeds");
    println!("\n{plan}");
    // Arm the replanning loop: same training windows, so the observed
    // drift is measured against exactly what the plan predicted.
    let replan = if drift.is_some() {
        ReplanConfig {
            replanner: Some(
                Replanner::from_training(&queries, &training, PlannerConfig::default(), 4)
                    .expect("replanner from training"),
            ),
            swap_delay: 2,
            ..ReplanConfig::default()
        }
    } else {
        ReplanConfig::default()
    };

    // --- 4. Execution --------------------------------------------------
    // With SONATA_OBS_DIR set, collect metrics + events for export.
    // `--net` forces observability on so the transport counters below
    // have something to read.
    let obs_dir = std::env::var_os("SONATA_OBS_DIR").map(std::path::PathBuf::from);
    // `--drift` forces observability on too: the replan narration
    // below reads the trigger and swap events.
    let obs = if obs_dir.is_some() || net || drift.is_some() {
        ObsHandle::enabled()
    } else {
        ObsHandle::disabled()
    };
    let transport = if net {
        TransportKind::Tcp
    } else {
        TransportKind::Loopback
    };
    if let Some(layout) = sketch {
        println!("\nstate layout: {layout} (approximate registers, planner-visible bounds)");
    }
    let config = RuntimeConfig {
        obs: obs.clone(),
        transport,
        topology: fabric.clone(),
        replan,
        sketch: sketch
            .map(|layout| SketchConfig {
                layout,
                ..SketchConfig::default()
            })
            .unwrap_or_default(),
        ..RuntimeConfig::default()
    };
    let mut fabric_snapshot = None;
    let report = if let Some(topo) = &fabric {
        // Multi-switch fabric: N flow-sticky partitions, M shards,
        // partial window states merged at the collector.
        println!(
            "\ntopology: {} switches x {} collector shards",
            topo.switches, topo.shards
        );
        let mut fab = Fabric::new(&plan, config).expect("deployable plan");
        let report = fab.process_trace(&trace).expect("clean run");
        // One fabric-wide snapshot: the shared registry routed into
        // per-component parts (switch-N / shard-N / collector).
        fabric_snapshot = Some(fab.fabric_snapshot());
        report
    } else {
        let mut runtime = Runtime::new(&plan, config).expect("deployable plan");
        if net {
            // Deployment topology: switch thread ↔ TCP ↔ collector thread.
            println!("\ntransport: tcp (switch and stream processor on separate threads)");
            runtime.process_trace_threaded(&trace).expect("clean run")
        } else {
            runtime.process_trace(&trace).expect("clean run")
        }
    };

    if drift.is_some() {
        println!("window | epoch | packets | tuples→SP | alerts");
    } else {
        println!("window | packets | tuples→SP | alerts");
    }
    for w in &report.windows {
        let hosts: Vec<String> = w
            .alerts
            .iter()
            .flat_map(|(_, tuples)| tuples)
            .map(|t| {
                format!(
                    "{} ({} SYNs)",
                    format_ipv4(t.get(0).as_u64().unwrap_or(0)),
                    t.get(1)
                )
            })
            .collect();
        let hosts = if hosts.is_empty() {
            "-".to_string()
        } else {
            hosts.join(", ")
        };
        if drift.is_some() {
            println!(
                "{:>6} | {:>5} | {:>7} | {:>9} | {}",
                w.window, w.epoch, w.packets, w.tuples_to_sp, hosts
            );
        } else {
            println!(
                "{:>6} | {:>7} | {:>9} | {}",
                w.window, w.packets, w.tuples_to_sp, hosts
            );
        }
    }
    let reduction = report.total_packets() as f64 / report.total_tuples().max(1) as f64;
    println!(
        "\n{} packets → {} tuples at the stream processor ({reduction:.0}× reduction)",
        report.total_packets(),
        report.total_tuples()
    );
    // With approximate registers on, every detection above comes with
    // the error contract it was made under: the loosest `(ε, δ)` of
    // the query's registers plus the stream mass the bound scales
    // with. Fabric runs fold the per-switch bounds at the collector.
    if sketch.is_some() {
        println!("\nerror bounds (per query, loosest contributing register):");
        println!("window | query | layout | epsilon | delta | mass | saturated");
        for w in &report.windows {
            for b in &w.error_bounds {
                let name = queries
                    .iter()
                    .find(|q| q.id == b.query)
                    .map_or("?", |q| q.name.as_str());
                println!(
                    "{:>6} | {name} ({}) | {:>9} | {:>7.4} | {:>5.3} | {:>8} | {}",
                    w.window,
                    b.query,
                    b.layout.name(),
                    b.epsilon,
                    b.delta,
                    b.mass,
                    if b.saturated { "SATURATED" } else { "ok" }
                );
            }
        }
        if report.windows.iter().all(|w| w.error_bounds.is_empty()) {
            println!("  (none: exact layout incurs no approximation)");
        }
    }
    // The SYN-flood victim is only in the traffic for the static run
    // and the attack-onset drift.
    let has_flood = match &drift {
        None => true,
        Some(Some(DriftScenario::AttackOnset { .. })) => true,
        Some(_) => false,
    };
    if has_flood {
        let detected = report
            .alerts_for(query.id)
            .iter()
            .any(|(_, t)| t.get(0).as_u64() == Some(victim as u64));
        println!(
            "victim {} {}",
            format_ipv4(victim as u64),
            if detected { "DETECTED" } else { "missed" }
        );
    }

    // --- Watching the replan -------------------------------------------
    if drift.is_some() {
        println!("\nreplanning loop:");
        for e in obs.events().iter() {
            match &e.kind {
                EventKind::ReplanTrigger { window, divergence } => {
                    println!("  trigger at window {window} (divergence {divergence:.2})");
                }
                EventKind::PlanSwap { window, epoch, .. } => {
                    println!("  swap at window {window} → epoch {epoch}");
                }
                _ => {}
            }
        }
        let divergence = report.metrics.gauge("sonata_plan_divergence").unwrap_or(0);
        let threshold_mille = (DriftConfig::default().threshold * 1000.0) as u64;
        if report.windows.iter().any(|w| w.epoch > 0) {
            println!(
                "  recovered divergence {divergence}\u{2030} (threshold {threshold_mille}\u{2030})"
            );
        } else {
            println!(
                "  no swap: divergence stayed at {divergence}\u{2030} (threshold {threshold_mille}\u{2030})"
            );
        }
    }

    if obs.is_enabled() {
        // The window latency waterfall: every number below is the
        // same one the sonata_stage_ns histograms observed, and the
        // same spans land in trace.json for chrome://tracing.
        let lat = report.window_latency();
        println!("\nlatency waterfall (run totals):");
        for (stage, ns) in [
            ("packet_loop", lat.packet_loop_ns),
            ("window_dump", lat.dump_encode_ns),
            ("transport", lat.transport_ns),
            ("collector_drain", lat.collector_drain_ns),
            ("shard_execute", lat.shard_execute_ns),
            ("merge", lat.merge_ns),
        ] {
            println!("  {stage:>15} {:>10.3} ms", ns as f64 / 1e6);
        }
        if let Some(last) = report.windows.last() {
            if let Some(straggler) = last.latency.straggler() {
                println!(
                    "  window {} straggler: switch-{}",
                    last.window, straggler.switch
                );
            }
        }
    }

    if net {
        println!("\ntransport counters:");
        for (key, value) in report
            .metrics
            .counters
            .iter()
            .chain(&report.metrics.gauges)
            .filter(|(key, _)| key.starts_with("sonata_net_"))
        {
            println!("  {key} = {value}");
        }
    }

    // --- 5. Observability export ---------------------------------------
    if let Some(dir) = obs_dir {
        std::fs::create_dir_all(&dir).expect("create obs dir");
        let snapshot = &report.metrics;
        // Validate with the in-tree schema checkers before writing,
        // so a CI artifact is a checked artifact.
        sonata::obs::validate_snapshot_json(&snapshot.to_json()).expect("snapshot JSON schema");
        std::fs::write(dir.join("metrics.prom"), snapshot.to_prometheus()).unwrap();
        std::fs::write(dir.join("metrics.json"), snapshot.to_json()).unwrap();
        std::fs::write(dir.join("events.jsonl"), obs.events_jsonl()).unwrap();
        std::fs::write(dir.join("trace.json"), obs.chrome_trace()).unwrap();
        if let Some(fab) = &fabric_snapshot {
            sonata::obs::validate_fabric_snapshot_json(&fab.to_json()).expect("fabric JSON schema");
            std::fs::write(dir.join("fabric.json"), fab.to_json()).unwrap();
        }
        println!(
            "\nobservability: {} counters, {} events → {}",
            snapshot.counters.len(),
            obs.events().len(),
            dir.display()
        );
    }
}
