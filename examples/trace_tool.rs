//! Trace tool: generate, inspect, and convert Sonata trace files — the
//! workflow for preparing training/evaluation workloads offline.
//!
//! ```sh
//! cargo run --release --example trace_tool -- generate out.sntrace \
//!     --packets 50000 --seed 7 --attack syn_flood
//! cargo run --release --example trace_tool -- info out.sntrace
//! cargo run --release --example trace_tool -- top out.sntrace 5
//! ```

use sonata::packet::format_ipv4;
use sonata::traffic::trace::actors;
use sonata::traffic::{Attack, BackgroundConfig, Trace};
use std::collections::HashMap;

fn usage() -> ! {
    eprintln!(
        "usage:\n  trace_tool generate <file> [--packets N] [--seed S] [--duration-ms D] [--attack NAME]\n  trace_tool info <file>\n  trace_tool top <file> [N]\n\nattacks: syn_flood port_scan superspreader ddos ssh_brute slowloris dns_tunnel zorro dns_reflection"
    );
    std::process::exit(2);
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn attack_by_name(name: &str, duration_ms: u64) -> Attack {
    let span = duration_ms.saturating_sub(200).max(1);
    match name {
        "syn_flood" => Attack::SynFlood {
            victim: actors::SYN_FLOOD_VICTIM,
            port: 80,
            packets: 3_000,
            sources: 1_000,
            ack_fraction: 0.04,
            fin_fraction: 0.02,
            start_ms: 0,
            duration_ms: span,
        },
        "port_scan" => Attack::PortScan {
            scanner: actors::SCANNER,
            targets: vec![0x63070519, 0x6307051a],
            ports: 200,
            start_ms: 0,
            duration_ms: span,
        },
        "superspreader" => Attack::Superspreader {
            source: actors::SPREADER,
            destinations: (0..300u32).map(|i| 0x17000000 + i * 7).collect(),
            packets_per_dest: 2,
            start_ms: 0,
            duration_ms: span,
        },
        "ddos" => Attack::Ddos {
            victim: actors::DDOS_VICTIM,
            sources: (0..400u32).map(|i| 0x2d000000 + i * 13).collect(),
            packets_per_source: 3,
            start_ms: 0,
            duration_ms: span,
        },
        "ssh_brute" => Attack::SshBruteForce {
            victim: actors::SSH_VICTIM,
            attackers: (0..80u32).map(|i| 0xc0a80a01 + i).collect(),
            attempts: 10,
            attempt_len: 48,
            start_ms: 0,
            duration_ms: span,
        },
        "slowloris" => Attack::Slowloris {
            victim: actors::SLOWLORIS_VICTIM,
            attacker: actors::SLOWLORIS_ATTACKER,
            connections: 400,
            bytes_per_conn: 6,
            start_ms: 0,
            duration_ms: span,
        },
        "dns_tunnel" => Attack::DnsTunneling {
            client: actors::TUNNEL_CLIENT,
            resolver: actors::TUNNEL_RESOLVER,
            queries: 300,
            domain: "upd.evil-cdn.example".to_string(),
            start_ms: 0,
            duration_ms: span,
        },
        "zorro" => Attack::Zorro {
            victim: actors::ZORRO_VICTIM,
            attacker: actors::ZORRO_ATTACKER,
            telnet_packets: 300,
            packet_len: 32,
            start_ms: 0,
            shell_ms: span * 3 / 4,
            shell_packets: 5,
        },
        "dns_reflection" => Attack::DnsReflection {
            victim: actors::REFLECTION_VICTIM,
            resolvers: (0..60u32).map(|i| 0x08080000 + i).collect(),
            responses_per_resolver: 8,
            answers: 6,
            start_ms: 0,
            duration_ms: span,
        },
        other => {
            eprintln!("unknown attack `{other}`");
            usage();
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, file) = match (args.first(), args.get(1)) {
        (Some(c), Some(f)) => (c.as_str(), f.clone()),
        _ => usage(),
    };
    match cmd {
        "generate" => {
            let packets: usize = arg_value(&args, "--packets")
                .and_then(|v| v.parse().ok())
                .unwrap_or(50_000);
            let seed: u64 = arg_value(&args, "--seed")
                .and_then(|v| v.parse().ok())
                .unwrap_or(1);
            let duration_ms: u64 = arg_value(&args, "--duration-ms")
                .and_then(|v| v.parse().ok())
                .unwrap_or(9_000);
            let mut trace = Trace::background(
                &BackgroundConfig {
                    duration_ms,
                    packets,
                    ..BackgroundConfig::default()
                },
                seed,
            );
            if let Some(attack) = arg_value(&args, "--attack") {
                let a = attack_by_name(&attack, duration_ms);
                trace.inject(&a, seed.wrapping_add(100));
                println!("injected {}", a.label());
            }
            trace.save(&file).expect("write trace");
            println!(
                "wrote {} packets ({:.1} MB wire) to {file}",
                trace.len(),
                trace.total_bytes() as f64 / 1e6
            );
        }
        "info" => {
            let trace = Trace::load(&file).expect("read trace");
            let s = trace.stats();
            println!("packets             {}", s.packets);
            println!("wire bytes          {}", s.bytes);
            println!("duration            {:.3} s", s.duration_ns as f64 / 1e9);
            println!(
                "protocols           tcp {} / udp {} / icmp {} / other {}",
                s.tcp, s.udp, s.icmp, s.other
            );
            println!("bare SYNs           {}", s.syns);
            println!("distinct sources    {}", s.distinct_sources);
            println!("distinct dests      {}", s.distinct_destinations);
            println!("windows (W=3s)      {}", trace.windows(3_000).count());
        }
        "top" => {
            let n: usize = args.get(2).and_then(|v| v.parse().ok()).unwrap_or(10);
            let trace = Trace::load(&file).expect("read trace");
            let mut by_dst: HashMap<u32, (u64, u64)> = HashMap::new();
            for p in trace.packets() {
                let e = by_dst.entry(p.ipv4.dst).or_default();
                e.0 += 1;
                e.1 += p.wire_len() as u64;
            }
            let mut rows: Vec<_> = by_dst.into_iter().collect();
            rows.sort_by_key(|(_, (pkts, _))| std::cmp::Reverse(*pkts));
            println!("{:<18} {:>10} {:>12}", "destination", "packets", "bytes");
            for (dst, (pkts, bytes)) in rows.into_iter().take(n) {
                println!("{:<18} {:>10} {:>12}", format_ipv4(dst as u64), pkts, bytes);
            }
            // Protocol mix footer.
            let s = trace.stats();
            let pct = |x: usize| 100.0 * x as f64 / s.packets.max(1) as f64;
            println!(
                "\nmix: tcp {:.1}% udp {:.1}% icmp {:.1}%",
                pct(s.tcp),
                pct(s.udp),
                pct(s.icmp)
            );
        }
        _ => usage(),
    }
}
