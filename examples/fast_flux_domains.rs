//! Fast-flux domain detection: dynamic refinement over **DNS names**.
//!
//! Section 4.1 of the paper: "a query for detecting malicious domains
//! that requires counting the number of unique resolved IP addresses
//! for each domain can use the field dns.rr.name as a refinement key.
//! Here, a fully-qualified domain name is the finest refinement level
//! and the root domain is the coarsest."
//!
//! The resolved address lives in the DNS answer section, which no PISA
//! parser can walk — so the query pins to the stream processor past
//! the DNS-header filter, and the refinement filter itself runs at the
//! stream processor over textual keys: level 2 keeps second-level
//! domains ("evil-flux.example"), level 8 the full name.
//!
//! ```sh
//! cargo run --release --example fast_flux_domains
//! ```

use sonata::prelude::*;
use sonata::traffic::trace::actors;

fn main() {
    let thresholds = Thresholds {
        malicious_domains: 15,
        ..Thresholds::default()
    };
    let query = catalog::malicious_domains(&thresholds);
    println!("Query:\n{query}");

    // Background (with its benign DNS chatter) plus the fast-flux
    // needle: one domain resolving to 400 distinct addresses.
    let flux_domain = "cdn.evil-flux.example";
    let mut trace = Trace::background(
        &BackgroundConfig {
            duration_ms: 9_000,
            packets: 40_000,
            dns_fraction: 0.15,
            ..BackgroundConfig::default()
        },
        21,
    );
    trace.inject(
        &Attack::FastFlux {
            domain: flux_domain.to_string(),
            resolver: actors::TUNNEL_RESOLVER,
            clients: (0..40u32).map(|i| 0xc6336500 + i).collect(),
            resolved_ips: 400,
            responses: 900,
            start_ms: 0,
            duration_ms: 8_500,
        },
        21,
    );

    // Refine over name depth: second-level domains first, then FQDNs.
    let windows: Vec<&[sonata::packet::Packet]> = trace.windows(3_000).map(|(_, p)| p).collect();
    let cfg = PlannerConfig {
        mode: PlanMode::FixRef, // force the 2-level name chain
        cost: sonata::planner::costs::CostConfig {
            levels: Some(vec![2, 8]),
            ..Default::default()
        },
        ..PlannerConfig::default()
    };
    let plan = plan_queries(std::slice::from_ref(&query), &windows, &cfg).expect("plannable");
    println!("{plan}");

    let mut rt = Runtime::new(&plan, RuntimeConfig::default()).expect("deployable");
    let report = rt.process_trace(&trace).expect("clean run");

    println!("window | packets | tuples→SP | flagged domains");
    let mut found = false;
    for w in &report.windows {
        let domains: Vec<String> = w
            .alerts
            .iter()
            .flat_map(|(_, tuples)| tuples)
            .map(|t| format!("{} ({} IPs)", t.get(0), t.get(1)))
            .collect();
        found |= domains.iter().any(|d| d.contains(flux_domain));
        println!(
            "{:>6} | {:>7} | {:>9} | {}",
            w.window,
            w.packets,
            w.tuples_to_sp,
            if domains.is_empty() {
                "-".to_string()
            } else {
                domains.join(", ")
            }
        );
    }
    println!(
        "\n{} packets → {} tuples at the stream processor",
        report.total_packets(),
        report.total_tuples()
    );
    if found {
        println!("fast-flux domain {flux_domain} DETECTED via dns.rr.name refinement");
    } else {
        eprintln!("fast-flux domain missed");
        std::process::exit(1);
    }
}
